//===- shmem/ShmRing.cpp - Shared-memory ring transport -------*- C++ -*-===//

#include "shmem/ShmRing.h"

#include "support/Binary.h"
#include "support/Support.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <climits>
#include <cstring>
#include <mutex>
#include <random>
#include <thread>
#include <type_traits>
#include <vector>

#include <dirent.h>
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#ifdef __linux__
#include <linux/futex.h>
#include <sys/syscall.h>
#endif

using ars::profserve::IoResult;
using ars::profserve::IoStatus;
using ars::support::formatString;

namespace ars {
namespace shmem {

namespace {

IoResult makeError(IoStatus S, std::string Msg) {
  IoResult R;
  R.Status = S;
  R.Message = std::move(Msg);
  return R;
}

using Clock = std::chrono::steady_clock;

/// A commit word with this bit set marks a cell whose writer died between
/// publishing the cell and finishing the commit: a torn write.
constexpr uint64_t CommitPoison = 1ull << 63;

/// Longest single sleep while blocked: close flags and deadlines are
/// re-checked at least this often even if a wakeup is lost.
constexpr int MaxWaitSliceMs = 100;

/// writeAll's per-progress-step backstop, mirroring the loopback pipes:
/// a consumer that stops draining for this long is treated as dead.
constexpr int WriteStallTimeoutMs = 10000;

/// Bounded sched_yield budget before falling back to the futex/bell
/// sleep.  A sync push's reply normally lands within a couple of
/// scheduler handoffs; while either side is still yielding its waiting
/// flag stays clear, so the peer skips the wake syscall and the steady
/// state exchanges frames with no kernel calls at all.  The budget caps
/// the cost of guessing wrong (an idle edge) at one short yield burst.
constexpr int SpinYields = 48;

/// One direction of the segment.  Head/Tail are free-running sequence
/// numbers (cell index = seq % CellCount); DataSeq/SpaceSeq are 32-bit
/// futex words bumped on every commit / tail advance, and the waiting
/// flags gate the corresponding wake syscalls so the pipelined steady
/// state stays syscall-free.
struct alignas(64) RingSide {
  std::atomic<uint64_t> Head; // producer cursor (diagnostic only)
  char Pad0[56];
  std::atomic<uint64_t> Tail; // consumer cursor
  char Pad1[56];
  std::atomic<uint32_t> DataSeq;
  std::atomic<uint32_t> SpaceSeq;
  std::atomic<uint32_t> ConsumerWaiting;
  std::atomic<uint32_t> ProducerWaiting;
  char Pad2[48];
};

struct SegmentHeader {
  char Magic[4]; // "ARSM"
  uint32_t Version;
  uint32_t Cells;
  uint32_t CellBytes;
  uint32_t HeaderBytes;
  uint32_t GeometryCrc; // crc32 of the 20 bytes above
  std::atomic<uint32_t> ClientClosed;
  std::atomic<uint32_t> ServerClosed;
  /// Set by the server end just before it goes to sleep in poll(2);
  /// tells the client a bell ring is needed (see the Dekker handshake in
  /// readNow/notifyPeer).
  std::atomic<uint32_t> ServerSleeping;
  uint32_t Reserved;
  RingSide C2S;
  RingSide S2C;
};

static_assert(std::is_standard_layout_v<SegmentHeader>,
              "segment header is shared across processes");
static_assert(std::atomic<uint64_t>::is_always_lock_free &&
                  std::atomic<uint32_t>::is_always_lock_free,
              "ring atomics must be lock-free to live in shared memory");
static_assert(sizeof(SegmentHeader) <= 4096, "header must fit one page");

constexpr uint32_t HeaderPage = 4096;
constexpr size_t GeometryBytes = 20;

uint32_t geometryCrc(const SegmentHeader &H) {
  return support::crc32(&H, GeometryBytes);
}

#ifdef __linux__
void futexWait(std::atomic<uint32_t> *Word, uint32_t Expected,
               int TimeoutMs) {
  timespec Ts;
  timespec *TsP = nullptr;
  if (TimeoutMs > 0) {
    Ts.tv_sec = TimeoutMs / 1000;
    Ts.tv_nsec = static_cast<long>(TimeoutMs % 1000) * 1000000L;
    TsP = &Ts;
  }
  ::syscall(SYS_futex, reinterpret_cast<uint32_t *>(Word), FUTEX_WAIT,
            Expected, TsP, nullptr, 0);
}

void futexWake(std::atomic<uint32_t> *Word) {
  ::syscall(SYS_futex, reinterpret_cast<uint32_t *>(Word), FUTEX_WAKE,
            INT_MAX, nullptr, nullptr, 0);
}
#else
void futexWait(std::atomic<uint32_t> *Word, uint32_t Expected,
               int TimeoutMs) {
  // No futex: sleep-poll.  The word is re-checked by the caller's loop.
  (void)Word;
  (void)Expected;
  int SliceUs = TimeoutMs > 0 ? std::min(TimeoutMs * 1000, 200) : 200;
  std::this_thread::sleep_for(std::chrono::microseconds(SliceUs));
}

void futexWake(std::atomic<uint32_t> *Word) { (void)Word; }
#endif

/// Process-unique nonce for segment file names.
std::string freshSegmentName() {
  static std::atomic<uint64_t> Counter{0};
  static const uint64_t Salt = [] {
    std::random_device Rd;
    return (static_cast<uint64_t>(Rd()) << 32) ^ Rd() ^
           (static_cast<uint64_t>(::getpid()) << 16);
  }();
  uint64_t N = Counter.fetch_add(1);
  return formatString("c%016llx-%llu.arsm",
                      static_cast<unsigned long long>(Salt),
                      static_cast<unsigned long long>(N));
}

bool endsWith(const std::string &S, const char *Suffix) {
  size_t N = std::strlen(Suffix);
  return S.size() >= N && S.compare(S.size() - N, N, Suffix) == 0;
}

std::string bellPathFor(const std::string &SegPath) {
  return SegPath + ".bell";
}

bool makeDirs(const std::string &Path) {
  // mkdir -p, POSIX-style: create each prefix in turn.
  std::string Partial;
  for (size_t I = 0; I <= Path.size(); ++I) {
    if (I < Path.size() && Path[I] != '/') {
      Partial += Path[I];
      continue;
    }
    if (I < Path.size())
      Partial += '/';
    if (Partial.empty() || Partial == "/")
      continue;
    if (::mkdir(Partial.c_str(), 0777) != 0 && errno != EEXIST)
      return false;
  }
  return true;
}

} // namespace

size_t segmentBytes() {
  return static_cast<size_t>(HeaderPage) +
         2 * static_cast<size_t>(CellCount) * CellSize;
}

//===----------------------------------------------------------------------===//
// Transport impl
//===----------------------------------------------------------------------===//

struct ShmRingTransport::Impl {
  bool IsClient = false;
  int SegFd = -1;
  int BellFd = -1;     // client: O_RDWR ring end; server: O_RDWR holder
  int BellPollFd = -1; // server only: O_RDONLY end handed to poll(2)
  void *Map = nullptr;
  SegmentHeader *H = nullptr;
  char *CellBase = nullptr;
  std::string SegPath; // client end keeps paths for unlink-on-destroy
  std::string BellPath;
  std::string Label;

  std::atomic<bool> LocalClosed{false};
  std::atomic<bool> Abandoned{false};
  std::atomic<bool> TearNext{false};

  /// Server only: the client rings the bell exclusively after observing
  /// ServerSleeping == 1, so while the flag has stayed 0 since the last
  /// drain the FIFO is provably empty and the drain syscall can be
  /// skipped.  Set before every ServerSleeping raise (under RdMu or
  /// WrMu, hence atomic); cleared only after a drain that observed the
  /// flag still 0.
  std::atomic<bool> MaybeBellPending{true};

  // The rings are SPSC per direction, but each *end* may see concurrent
  // calls (close vs. a blocked read, tests hammering both ops), so the
  // local cursors are guarded per direction.
  std::mutex RdMu, WrMu;
  size_t ReadCellOff = 0; // bytes already consumed from the Tail cell
  bool SpinArmed = false; // last readNow delivered data (guarded by RdMu)

  RingSide *writeRing() { return IsClient ? &H->C2S : &H->S2C; }
  RingSide *readRing() { return IsClient ? &H->S2C : &H->C2S; }
  char *writeCells() {
    return CellBase + (IsClient ? 0 : CellCount * CellSize);
  }
  char *readCells() {
    return CellBase + (IsClient ? CellCount * CellSize : 0);
  }
  std::atomic<uint32_t> *peerClosedFlag() {
    return IsClient ? &H->ServerClosed : &H->ClientClosed;
  }
  std::atomic<uint32_t> *ownClosedFlag() {
    return IsClient ? &H->ClientClosed : &H->ServerClosed;
  }

  static std::atomic<uint64_t> *commitWord(char *Cells, uint64_t Seq) {
    return reinterpret_cast<std::atomic<uint64_t> *>(
        Cells + (Seq % CellCount) * CellSize);
  }

  void ringBell() {
    if (BellFd < 0)
      return;
    char B = 1;
    // EAGAIN means the bell already holds unread rings: wakeup pending.
    (void)!::write(BellFd, &B, 1);
  }

  void drainBell() {
    int Fd = IsClient ? -1 : BellPollFd;
    if (Fd < 0)
      return;
    if (!MaybeBellPending.load(std::memory_order_acquire))
      return;
    char Buf[256];
    while (::read(Fd, Buf, sizeof(Buf)) > 0) {
    }
    // Only a flag observed at 0 proves no ring can still be in flight:
    // a client that already saw 1 may ring after this drain.
    if (H->ServerSleeping.load(std::memory_order_seq_cst) == 0)
      MaybeBellPending.store(false, std::memory_order_release);
  }

  /// Producer-side post-commit notification.  The DataSeq bump is always
  /// done by the committer; this only decides which (if any) wake
  /// syscall is owed.  The seq_cst fence pairs with the consumer's
  /// flag-store / recheck fence: either we see its waiting flag, or it
  /// sees our commit.
  void notifyDataWritten() {
    RingSide *R = writeRing();
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (R->ConsumerWaiting.load(std::memory_order_relaxed))
      futexWake(&R->DataSeq);
    if (IsClient && H->ServerSleeping.load(std::memory_order_relaxed))
      ringBell();
  }

  /// Consumer-side post-tail-advance notification (space freed).
  void notifySpaceFreed() {
    RingSide *R = readRing();
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (R->ProducerWaiting.load(std::memory_order_relaxed))
      futexWake(&R->SpaceSeq);
    if (IsClient && H->ServerSleeping.load(std::memory_order_relaxed))
      ringBell();
  }

  /// Tries to append one cell of at most CellPayload bytes.  Returns the
  /// byte count written (0 when the ring is full).
  size_t tryWriteCell(const char *Data, size_t Size, bool Poison) {
    RingSide *R = writeRing();
    uint64_t S = R->Head.load(std::memory_order_relaxed);
    if (S - R->Tail.load(std::memory_order_acquire) >= CellCount)
      return 0;
    char *Cell = writeCells() + (S % CellCount) * CellSize;
    uint32_t Len = static_cast<uint32_t>(
        Size < CellPayload ? Size : CellPayload);
    std::memcpy(Cell + 8, &Len, sizeof(Len));
    std::memcpy(Cell + 16, Data, Len);
    uint64_t Commit = S + 1;
    if (Poison)
      Commit |= CommitPoison;
    commitWord(writeCells(), S)->store(Commit, std::memory_order_release);
    R->Head.store(S + 1, std::memory_order_relaxed);
    R->DataSeq.fetch_add(1, std::memory_order_release);
    return Len;
  }

  enum class CellState { Ready, Empty, Torn, Corrupt };

  CellState peekCell(uint32_t *LenOut, const char **PayloadOut) {
    RingSide *R = readRing();
    uint64_t S = R->Tail.load(std::memory_order_relaxed);
    uint64_t C =
        commitWord(readCells(), S)->load(std::memory_order_acquire);
    if (C == ((S + 1) | CommitPoison))
      return CellState::Torn;
    if (C != S + 1)
      return CellState::Empty;
    char *Cell = readCells() + (S % CellCount) * CellSize;
    uint32_t Len;
    std::memcpy(&Len, Cell + 8, sizeof(Len));
    if (Len > CellPayload)
      return CellState::Corrupt;
    *LenOut = Len;
    *PayloadOut = Cell + 16;
    return CellState::Ready;
  }

  /// Copies immediately-available bytes into [Data, Data+Max).  Caller
  /// holds RdMu.  Returns bytes copied; *Torn set on a poisoned cell.
  size_t copyAvailable(char *Data, size_t Max, bool *Torn,
                       bool *Corrupt) {
    *Torn = false;
    *Corrupt = false;
    size_t Got = 0;
    RingSide *R = readRing();
    while (Got < Max) {
      uint32_t Len;
      const char *Payload;
      CellState St = peekCell(&Len, &Payload);
      if (St == CellState::Torn) {
        *Torn = true;
        break;
      }
      if (St == CellState::Corrupt) {
        *Corrupt = true;
        break;
      }
      if (St == CellState::Empty)
        break;
      size_t Left = Len - ReadCellOff;
      size_t Take = std::min(Left, Max - Got);
      std::memcpy(Data + Got, Payload + ReadCellOff, Take);
      Got += Take;
      ReadCellOff += Take;
      if (ReadCellOff == Len) {
        ReadCellOff = 0;
        R->Tail.fetch_add(1, std::memory_order_release);
        R->SpaceSeq.fetch_add(1, std::memory_order_release);
        notifySpaceFreed();
      }
    }
    return Got;
  }

  /// True when the next unread cell is committed (no mutex; used only as
  /// a hint by the blocking/Dekker rechecks — a stale answer just costs
  /// one spurious loop iteration).
  bool dataLooksReady() {
    RingSide *R = readRing();
    uint64_t S = R->Tail.load(std::memory_order_acquire);
    uint64_t C =
        commitWord(readCells(), S)->load(std::memory_order_acquire);
    return C == S + 1 || C == ((S + 1) | CommitPoison);
  }

  bool spaceLooksFree() {
    RingSide *R = writeRing();
    return R->Head.load(std::memory_order_relaxed) -
               R->Tail.load(std::memory_order_acquire) <
           CellCount;
  }
};

ShmRingTransport::ShmRingTransport(std::unique_ptr<Impl> I)
    : I(std::move(I)) {}

ShmRingTransport::~ShmRingTransport() {
  close();
  if (I->Map)
    ::munmap(I->Map, segmentBytes());
  if (I->SegFd >= 0)
    ::close(I->SegFd);
  if (I->BellFd >= 0)
    ::close(I->BellFd);
  if (I->BellPollFd >= 0)
    ::close(I->BellPollFd);
  if (I->IsClient) {
    // Normally the listener unlinked these on adoption; if no server
    // ever came, clean up after ourselves.
    ::unlink(I->SegPath.c_str());
    ::unlink(I->BellPath.c_str());
  }
}

int ShmRingTransport::pollFd() const {
  return I->IsClient ? -1 : I->BellPollFd;
}

std::string ShmRingTransport::peer() const { return I->Label; }

void ShmRingTransport::tearNextWrite() { I->TearNext.store(true); }

void ShmRingTransport::abandon() {
  // A crashed writer leaves no trace in the segment: no close flag, no
  // wakeup.  Only local state changes so the peer must detect the death
  // by timeout.
  I->Abandoned.store(true);
  I->LocalClosed.store(true);
}

void ShmRingTransport::close() {
  if (I->LocalClosed.exchange(true))
    return;
  if (I->Abandoned.load())
    return;
  I->ownClosedFlag()->store(1, std::memory_order_release);
  // Unconditional wakes: close is rare, lost wakeups here are deadlocks.
  I->H->C2S.DataSeq.fetch_add(1, std::memory_order_release);
  I->H->C2S.SpaceSeq.fetch_add(1, std::memory_order_release);
  I->H->S2C.DataSeq.fetch_add(1, std::memory_order_release);
  I->H->S2C.SpaceSeq.fetch_add(1, std::memory_order_release);
  futexWake(&I->H->C2S.DataSeq);
  futexWake(&I->H->C2S.SpaceSeq);
  futexWake(&I->H->S2C.DataSeq);
  futexWake(&I->H->S2C.SpaceSeq);
  if (I->IsClient)
    I->ringBell();
}

IoResult ShmRingTransport::readNow(char *Data, size_t Max, size_t *Read) {
  *Read = 0;
  if (Max == 0)
    return IoResult();
  std::lock_guard<std::mutex> Lock(I->RdMu);
  if (I->Abandoned.load())
    return makeError(IoStatus::Error, "abandoned (simulated crash)");
  if (I->LocalClosed.load())
    return makeError(IoStatus::Closed, "transport closed");
  if (!I->IsClient) {
    I->drainBell();
    I->H->ServerSleeping.store(0, std::memory_order_relaxed);
  }
  bool Torn, Corrupt;
  size_t Got = I->copyAvailable(Data, Max, &Torn, &Corrupt);
  if (Got) {
    I->SpinArmed = true;
    *Read = Got;
    return IoResult();
  }
  if (Torn)
    return makeError(IoStatus::Error, "torn ring cell");
  if (Corrupt)
    return makeError(IoStatus::Error, "corrupt ring cell length");
  if (I->peerClosedFlag()->load(std::memory_order_acquire))
    return makeError(IoStatus::Eof, "");
  if (!I->IsClient && I->SpinArmed) {
    // The previous call delivered data, so the client is mid-exchange
    // and its next frame is likely a scheduler handoff away.  Yield for
    // it instead of paying the poll-sleep + bell round trip; while we
    // spin ServerSleeping stays 0, so the client skips the bell write.
    for (int S = 0; S != SpinYields; ++S) {
      std::this_thread::yield();
      if (I->LocalClosed.load())
        return makeError(IoStatus::Closed, "transport closed");
      if (I->dataLooksReady()) {
        Got = I->copyAvailable(Data, Max, &Torn, &Corrupt);
        if (Got) {
          *Read = Got;
          return IoResult();
        }
        if (Torn)
          return makeError(IoStatus::Error, "torn ring cell");
        if (Corrupt)
          return makeError(IoStatus::Error, "corrupt ring cell length");
      }
      if (I->peerClosedFlag()->load(std::memory_order_acquire))
        return makeError(IoStatus::Eof, "");
    }
    I->SpinArmed = false;
  }
  if (!I->IsClient) {
    // About to report "nothing to read" to the reactor, which will go to
    // sleep in poll(2).  Declare that first, then re-check: either the
    // client sees the flag and rings the bell, or we see its commit.
    I->MaybeBellPending.store(true, std::memory_order_release);
    I->H->ServerSleeping.store(1, std::memory_order_seq_cst);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    Got = I->copyAvailable(Data, Max, &Torn, &Corrupt);
    if (Got) {
      *Read = Got;
      return IoResult();
    }
    if (Torn)
      return makeError(IoStatus::Error, "torn ring cell");
    if (I->peerClosedFlag()->load(std::memory_order_acquire))
      return makeError(IoStatus::Eof, "");
  }
  return makeError(IoStatus::WouldBlock, "");
}

IoResult ShmRingTransport::writeNow(const char *Data, size_t Size,
                                    size_t *Written) {
  *Written = 0;
  if (Size == 0)
    return IoResult();
  std::lock_guard<std::mutex> Lock(I->WrMu);
  if (I->Abandoned.load())
    return makeError(IoStatus::Error, "abandoned (simulated crash)");
  if (I->LocalClosed.load())
    return makeError(IoStatus::Closed, "transport closed");
  if (I->peerClosedFlag()->load(std::memory_order_acquire))
    return makeError(IoStatus::Error, "peer closed");
  size_t Off = 0;
  while (Off < Size) {
    size_t N = I->tryWriteCell(Data + Off, Size - Off, false);
    if (!N)
      break;
    Off += N;
  }
  if (Off) {
    I->notifyDataWritten();
    *Written = Off;
    return IoResult();
  }
  if (!I->IsClient) {
    // Same Dekker dance as readNow, for the "reply ring full" case: the
    // client rings the bell after freeing space if it sees the flag.
    I->MaybeBellPending.store(true, std::memory_order_release);
    I->H->ServerSleeping.store(1, std::memory_order_seq_cst);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (I->spaceLooksFree()) {
      size_t N = I->tryWriteCell(Data, Size, false);
      if (N) {
        I->notifyDataWritten();
        *Written = N;
        return IoResult();
      }
    }
  }
  return makeError(IoStatus::WouldBlock, "");
}

IoResult ShmRingTransport::readSome(char *Data, size_t Max, int TimeoutMs,
                                    size_t *Read) {
  *Read = 0;
  if (Max == 0)
    return IoResult();
  bool HasDeadline = TimeoutMs > 0;
  Clock::time_point Deadline =
      Clock::now() + std::chrono::milliseconds(TimeoutMs);
  RingSide *R = I->readRing();
  bool SpunOnce = false;
  for (;;) {
    {
      std::lock_guard<std::mutex> Lock(I->RdMu);
      if (I->Abandoned.load())
        return makeError(IoStatus::Error, "abandoned (simulated crash)");
      if (I->LocalClosed.load())
        return makeError(IoStatus::Closed, "transport closed");
      if (!I->IsClient)
        I->drainBell();
      bool Torn, Corrupt;
      size_t Got = I->copyAvailable(Data, Max, &Torn, &Corrupt);
      if (Got) {
        *Read = Got;
        return IoResult();
      }
      if (Torn)
        return makeError(IoStatus::Error, "torn ring cell");
      if (Corrupt)
        return makeError(IoStatus::Error, "corrupt ring cell length");
      if (I->peerClosedFlag()->load(std::memory_order_acquire))
        return makeError(IoStatus::Eof, "");
    }

    // First miss: the reply to a just-sent frame usually lands within a
    // few scheduler handoffs, so yield for it before sleeping.  While we
    // spin ConsumerWaiting stays 0 and the producer skips its wake
    // syscall; the dataLooksReady hint needs no lock.
    if (!SpunOnce) {
      SpunOnce = true;
      bool Ready = false;
      for (int S = 0; S != SpinYields && !Ready; ++S) {
        std::this_thread::yield();
        Ready = I->dataLooksReady() || I->LocalClosed.load() ||
                I->peerClosedFlag()->load(std::memory_order_acquire);
      }
      if (Ready)
        continue;
    }

    // Sleep until the producer commits.  Snapshot DataSeq, re-check,
    // then wait on the snapshot: any commit in between bumps the word
    // and turns the wait into an immediate EAGAIN.
    R->ConsumerWaiting.store(1, std::memory_order_seq_cst);
    uint32_t V = R->DataSeq.load(std::memory_order_seq_cst);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    bool Skip = I->dataLooksReady() || I->LocalClosed.load() ||
                I->peerClosedFlag()->load(std::memory_order_acquire);
    if (!Skip) {
      int Slice = MaxWaitSliceMs;
      if (HasDeadline) {
        auto Left = std::chrono::duration_cast<std::chrono::milliseconds>(
                        Deadline - Clock::now())
                        .count();
        if (Left <= 0) {
          R->ConsumerWaiting.store(0, std::memory_order_relaxed);
          return makeError(IoStatus::Timeout, "");
        }
        Slice = std::min<int>(Slice, static_cast<int>(Left) + 1);
      }
      futexWait(&R->DataSeq, V, Slice);
    }
    R->ConsumerWaiting.store(0, std::memory_order_relaxed);
    if (HasDeadline && Clock::now() >= Deadline && !I->dataLooksReady() &&
        !I->peerClosedFlag()->load(std::memory_order_acquire) &&
        !I->LocalClosed.load())
      return makeError(IoStatus::Timeout, "");
  }
}

IoResult ShmRingTransport::writeAll(const char *Data, size_t Size) {
  size_t Off = 0;
  RingSide *R = I->writeRing();
  Clock::time_point StallDeadline =
      Clock::now() + std::chrono::milliseconds(WriteStallTimeoutMs);
  while (Off < Size) {
    bool Progress = false;
    {
      std::lock_guard<std::mutex> Lock(I->WrMu);
      if (I->Abandoned.load())
        return makeError(IoStatus::Error, "abandoned (simulated crash)");
      if (I->LocalClosed.load())
        return makeError(IoStatus::Closed, "transport closed");
      if (I->peerClosedFlag()->load(std::memory_order_acquire))
        return makeError(IoStatus::Error, "peer closed");
      if (I->TearNext.exchange(false)) {
        // Simulated mid-commit death: poison one cell, drop the rest of
        // the buffer on the floor, and report success — exactly what a
        // writer that crashed after the syscall-free fast path would
        // leave behind.
        while (!I->tryWriteCell(Data + Off, Size - Off, true)) {
          // Ring full: wait briefly for space so the poison lands.
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
          if (I->peerClosedFlag()->load(std::memory_order_acquire) ||
              I->LocalClosed.load())
            break;
        }
        I->notifyDataWritten();
        return IoResult();
      }
      while (Off < Size) {
        size_t N = I->tryWriteCell(Data + Off, Size - Off, false);
        if (!N)
          break;
        Off += N;
        Progress = true;
      }
      if (Progress)
        I->notifyDataWritten();
    }
    if (Off == Size)
      break;
    if (Progress) {
      StallDeadline =
          Clock::now() + std::chrono::milliseconds(WriteStallTimeoutMs);
      continue;
    }
    // Ring full: sleep until the consumer frees a cell.
    R->ProducerWaiting.store(1, std::memory_order_seq_cst);
    uint32_t V = R->SpaceSeq.load(std::memory_order_seq_cst);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    bool Skip = I->spaceLooksFree() || I->LocalClosed.load() ||
                I->peerClosedFlag()->load(std::memory_order_acquire);
    if (!Skip)
      futexWait(&R->SpaceSeq, V, MaxWaitSliceMs);
    R->ProducerWaiting.store(0, std::memory_order_relaxed);
    if (Clock::now() >= StallDeadline)
      return makeError(IoStatus::Error,
                       "write stalled: peer stopped reading");
  }
  return IoResult();
}

//===----------------------------------------------------------------------===//
// Segment creation / adoption
//===----------------------------------------------------------------------===//

namespace {

struct MappedSegment {
  int Fd = -1;
  void *Map = nullptr;
  SegmentHeader *H = nullptr;

  ~MappedSegment() {
    if (Map)
      ::munmap(Map, segmentBytes());
    if (Fd >= 0)
      ::close(Fd);
  }
  void release() {
    Fd = -1;
    Map = nullptr;
    H = nullptr;
  }
};

bool mapSegmentFile(const std::string &Path, bool MustValidate,
                    MappedSegment *Out, std::string *Error) {
  Out->Fd = ::open(Path.c_str(), O_RDWR | O_CLOEXEC);
  if (Out->Fd < 0) {
    *Error = formatString("open %s: %s", Path.c_str(),
                          std::strerror(errno));
    return false;
  }
  struct stat St;
  if (::fstat(Out->Fd, &St) != 0 ||
      static_cast<size_t>(St.st_size) != segmentBytes()) {
    *Error = formatString("%s: bad segment size", Path.c_str());
    return false;
  }
  Out->Map = ::mmap(nullptr, segmentBytes(), PROT_READ | PROT_WRITE,
                    MAP_SHARED, Out->Fd, 0);
  if (Out->Map == MAP_FAILED) {
    Out->Map = nullptr;
    *Error = formatString("mmap %s: %s", Path.c_str(),
                          std::strerror(errno));
    return false;
  }
  Out->H = static_cast<SegmentHeader *>(Out->Map);
  if (!MustValidate)
    return true;
  SegmentHeader *H = Out->H;
  if (std::memcmp(H->Magic, "ARSM", 4) != 0 ||
      H->Version != SegmentVersion || H->Cells != CellCount ||
      H->CellBytes != CellSize || H->HeaderBytes != HeaderPage ||
      H->GeometryCrc != geometryCrc(*H)) {
    *Error = formatString("%s: bad segment header", Path.c_str());
    return false;
  }
  return true;
}

} // namespace

std::unique_ptr<profserve::Transport> shmConnect(const std::string &Dir,
                                                 std::string *Error) {
  std::string Err;
  if (!makeDirs(Dir)) {
    if (Error)
      *Error = formatString("mkdir %s: %s", Dir.c_str(),
                            std::strerror(errno));
    return nullptr;
  }
  std::string Name = freshSegmentName();
  std::string SegPath = Dir + "/" + Name;
  std::string TmpPath = SegPath + ".tmp";
  std::string BellPath = bellPathFor(SegPath);

  int Fd = ::open(TmpPath.c_str(), O_RDWR | O_CREAT | O_EXCL | O_CLOEXEC,
                  0666);
  if (Fd < 0) {
    if (Error)
      *Error = formatString("create %s: %s", TmpPath.c_str(),
                            std::strerror(errno));
    return nullptr;
  }
  auto Fail = [&](std::string Msg) -> std::unique_ptr<profserve::Transport> {
    ::close(Fd);
    ::unlink(TmpPath.c_str());
    ::unlink(BellPath.c_str());
    if (Error)
      *Error = std::move(Msg);
    return nullptr;
  };
  if (::ftruncate(Fd, static_cast<off_t>(segmentBytes())) != 0)
    return Fail(formatString("ftruncate: %s", std::strerror(errno)));
  void *Map = ::mmap(nullptr, segmentBytes(), PROT_READ | PROT_WRITE,
                     MAP_SHARED, Fd, 0);
  if (Map == MAP_FAILED)
    return Fail(formatString("mmap: %s", std::strerror(errno)));

  auto *H = static_cast<SegmentHeader *>(Map);
  std::memcpy(H->Magic, "ARSM", 4);
  H->Version = SegmentVersion;
  H->Cells = CellCount;
  H->CellBytes = CellSize;
  H->HeaderBytes = HeaderPage;
  H->GeometryCrc = geometryCrc(*H);

  // The bell must exist before the segment becomes visible so an
  // adopting listener never races its open.  Our own O_RDWR end both
  // rings it and keeps a reader alive (no SIGPIPE, no ENXIO).
  if (::mkfifo(BellPath.c_str(), 0666) != 0 && errno != EEXIST) {
    ::munmap(Map, segmentBytes());
    return Fail(formatString("mkfifo: %s", std::strerror(errno)));
  }
  int BellFd = ::open(BellPath.c_str(),
                      O_RDWR | O_NONBLOCK | O_CLOEXEC);
  if (BellFd < 0) {
    ::munmap(Map, segmentBytes());
    return Fail(formatString("open bell: %s", std::strerror(errno)));
  }
  if (::rename(TmpPath.c_str(), SegPath.c_str()) != 0) {
    ::munmap(Map, segmentBytes());
    ::close(BellFd);
    return Fail(formatString("rename: %s", std::strerror(errno)));
  }

  auto Impl = std::make_unique<ShmRingTransport::Impl>();
  Impl->IsClient = true;
  Impl->SegFd = Fd;
  Impl->BellFd = BellFd;
  Impl->Map = Map;
  Impl->H = H;
  Impl->CellBase = static_cast<char *>(Map) + HeaderPage;
  Impl->SegPath = SegPath;
  Impl->BellPath = BellPath;
  Impl->Label = "shm:" + Name;
  return std::unique_ptr<profserve::Transport>(
      new ShmRingTransport(std::move(Impl)));
}

profserve::Dialer shmDialer(std::string Dir) {
  return [Dir](std::string *Error) {
    return shmConnect(Dir, Error);
  };
}

//===----------------------------------------------------------------------===//
// Listener
//===----------------------------------------------------------------------===//

struct ShmListener::Impl {
  std::string Dir;
  std::atomic<bool> Stop{false};
};

ShmListener::ShmListener(std::unique_ptr<Impl> I) : I(std::move(I)) {}
ShmListener::~ShmListener() { shutdown(); }

void ShmListener::shutdown() { I->Stop.store(true); }

std::string ShmListener::address() const { return "shm:" + I->Dir; }

std::unique_ptr<profserve::Transport> ShmListener::accept() {
  while (!I->Stop.load()) {
    DIR *D = ::opendir(I->Dir.c_str());
    if (!D) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      continue;
    }
    std::string Found;
    while (dirent *E = ::readdir(D)) {
      std::string Name = E->d_name;
      if (endsWith(Name, ".arsm")) {
        Found = Name;
        break;
      }
    }
    ::closedir(D);
    if (Found.empty()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      continue;
    }

    std::string SegPath = I->Dir + "/" + Found;
    std::string BellPath = bellPathFor(SegPath);
    MappedSegment Seg;
    std::string Err;
    if (!mapSegmentFile(SegPath, /*MustValidate=*/true, &Seg, &Err)) {
      // Alien or torn file: remove it so the scan is not stuck forever.
      ::unlink(SegPath.c_str());
      ::unlink(BellPath.c_str());
      continue;
    }
    // Two bell fds: the O_RDONLY end goes to poll(2) (a read end never
    // reports POLLOUT, so an output-armed reactor cannot spin on it);
    // the O_RDWR end is never polled and exists only to pin a writer so
    // the poll end cannot see POLLHUP when the client goes away.
    int PollFd = ::open(BellPath.c_str(),
                        O_RDONLY | O_NONBLOCK | O_CLOEXEC);
    int HoldFd = ::open(BellPath.c_str(),
                        O_RDWR | O_NONBLOCK | O_CLOEXEC);
    if (PollFd < 0 || HoldFd < 0) {
      if (PollFd >= 0)
        ::close(PollFd);
      if (HoldFd >= 0)
        ::close(HoldFd);
      ::unlink(SegPath.c_str());
      ::unlink(BellPath.c_str());
      continue;
    }
    // Adopted: drop the directory entries; the fds and mapping keep the
    // underlying objects alive until both ends are done.
    ::unlink(SegPath.c_str());
    ::unlink(BellPath.c_str());

    auto Impl = std::make_unique<ShmRingTransport::Impl>();
    Impl->IsClient = false;
    Impl->SegFd = Seg.Fd;
    Impl->BellFd = HoldFd;
    Impl->BellPollFd = PollFd;
    Impl->Map = Seg.Map;
    Impl->H = Seg.H;
    Impl->CellBase = static_cast<char *>(Seg.Map) + HeaderPage;
    Impl->Label = "shm:" + Found;
    Seg.release();
    return std::unique_ptr<profserve::Transport>(
        new ShmRingTransport(std::move(Impl)));
  }
  return nullptr;
}

std::unique_ptr<ShmListener> listenShm(const std::string &Dir,
                                       std::string *Error) {
  if (!makeDirs(Dir)) {
    if (Error)
      *Error = formatString("mkdir %s: %s", Dir.c_str(),
                            std::strerror(errno));
    return nullptr;
  }
  // Sweep leftovers from a previous run (crashed clients, aborted
  // sweeps): anything still named *.arsm/*.bell is unowned by now.
  if (DIR *D = ::opendir(Dir.c_str())) {
    std::vector<std::string> Stale;
    while (dirent *E = ::readdir(D)) {
      std::string Name = E->d_name;
      if (endsWith(Name, ".arsm") || endsWith(Name, ".bell") ||
          endsWith(Name, ".tmp"))
        Stale.push_back(Name);
    }
    ::closedir(D);
    for (const std::string &Name : Stale)
      ::unlink((Dir + "/" + Name).c_str());
  }
  auto Impl = std::make_unique<ShmListener::Impl>();
  Impl->Dir = Dir;
  return std::unique_ptr<ShmListener>(new ShmListener(std::move(Impl)));
}

} // namespace shmem
} // namespace ars
