//===- opt/Passes.cpp -----------------------------------------*- C++ -*-===//

#include "opt/Passes.h"

#include "analysis/CFG.h"
#include "lowering/Cleanup.h"

#include <algorithm>
#include <cassert>
#include <iterator>
#include <map>
#include <vector>

namespace ars {
namespace opt {

using ir::BasicBlock;
using ir::IRFunction;
using ir::IRInst;
using ir::IROp;

namespace {

/// True if \p Op computes an integer value from integer operands with no
/// side effects and no possibility of trapping.
bool isPureIntArith(IROp Op) {
  switch (Op) {
  case IROp::Add:
  case IROp::Sub:
  case IROp::Mul:
  case IROp::Neg:
  case IROp::And:
  case IROp::Or:
  case IROp::Xor:
  case IROp::Shl:
  case IROp::Shr:
  case IROp::CmpEq:
  case IROp::CmpNe:
  case IROp::CmpLt:
  case IROp::CmpLe:
  case IROp::CmpGt:
  case IROp::CmpGe:
    return true;
  default:
    return false;
  }
}

/// True if removing \p I is safe when its destination is dead: no side
/// effects, no traps, no control flow.  Division stays (traps), memory
/// stays (null/bounds traps), calls/allocation/prints/pseudo-ops stay.
bool isRemovableWhenDead(const IRInst &I) {
  switch (I.Op) {
  case IROp::Nop:
  case IROp::MovImm:
  case IROp::MovFImm:
  case IROp::Mov:
  case IROp::FAdd:
  case IROp::FSub:
  case IROp::FMul:
  case IROp::FDiv: // IEEE: no trap in this VM (double arithmetic)
  case IROp::FNeg:
  case IROp::F2I:
  case IROp::I2F:
  case IROp::FCmpLt:
  case IROp::FCmpLe:
  case IROp::FCmpEq:
    return true;
  default:
    return isPureIntArith(I.Op);
  }
}

/// Applies the integer operation to constants.
int64_t evalIntOp(IROp Op, int64_t A, int64_t B) {
  switch (Op) {
  case IROp::Add:   return A + B;
  case IROp::Sub:   return A - B;
  case IROp::Mul:   return A * B;
  case IROp::Neg:   return -A;
  case IROp::And:   return A & B;
  case IROp::Or:    return A | B;
  case IROp::Xor:   return A ^ B;
  case IROp::Shl:   return A << (B & 63);
  case IROp::Shr:   return A >> (B & 63);
  case IROp::CmpEq: return A == B;
  case IROp::CmpNe: return A != B;
  case IROp::CmpLt: return A < B;
  case IROp::CmpLe: return A <= B;
  case IROp::CmpGt: return A > B;
  case IROp::CmpGe: return A >= B;
  default:
    assert(false && "not a foldable op");
    return 0;
  }
}

/// Registers read by \p I (excluding the destination).
void forEachUse(const IRInst &I, const std::vector<int> *Args,
                void (*Fn)(int, void *), void *Ctx) {
  (void)Args;
  for (int R : {I.A, I.B, I.C})
    if (R >= 0)
      Fn(R, Ctx);
  for (int R : I.Args)
    Fn(R, Ctx);
}

} // namespace

int foldConstants(IRFunction &F, OptStats &Stats) {
  int Changed = 0;
  for (BasicBlock &BB : F.Blocks) {
    std::map<int, int64_t> Known;
    for (IRInst &I : BB.Insts) {
      if (I.Op == IROp::MovImm) {
        Known[I.Dst] = I.Imm;
        continue;
      }
      if (I.Op == IROp::Mov) {
        auto It = Known.find(I.A);
        if (It != Known.end()) {
          int Dst = I.Dst;
          I = IRInst(IROp::MovImm);
          I.Dst = Dst;
          I.Imm = It->second;
          Known[Dst] = I.Imm;
          ++Stats.ConstantsFolded;
          ++Changed;
        } else {
          Known.erase(I.Dst);
        }
        continue;
      }
      if (isPureIntArith(I.Op)) {
        bool Unary = I.Op == IROp::Neg;
        auto AIt = Known.find(I.A);
        bool BothKnown =
            AIt != Known.end() &&
            (Unary || Known.find(I.B) != Known.end());
        if (BothKnown) {
          int64_t B = Unary ? 0 : Known[I.B];
          int64_t Value = evalIntOp(I.Op, AIt->second, B);
          int Dst = I.Dst;
          I = IRInst(IROp::MovImm);
          I.Dst = Dst;
          I.Imm = Value;
          Known[Dst] = Value;
          ++Stats.ConstantsFolded;
          ++Changed;
          continue;
        }
      }
      // A constant branch becomes a jump.
      if (I.Op == IROp::Branch) {
        auto It = Known.find(I.A);
        if (It != Known.end()) {
          int Target = It->second != 0 ? static_cast<int>(I.Imm) : I.Aux;
          I = IRInst(IROp::Jump);
          I.Imm = Target;
          ++Stats.BranchesFolded;
          ++Changed;
        }
        continue;
      }
      if (I.Dst >= 0)
        Known.erase(I.Dst);
    }
  }
  return Changed;
}

int propagateCopies(IRFunction &F, OptStats &Stats) {
  int Changed = 0;
  for (BasicBlock &BB : F.Blocks) {
    std::map<int, int> CopyOf; // reg -> original source reg
    auto resolve = [&](int R) {
      auto It = CopyOf.find(R);
      return It == CopyOf.end() ? R : It->second;
    };
    auto invalidate = [&](int Dst) {
      CopyOf.erase(Dst);
      // Any mapping whose source was just clobbered is stale.
      for (auto It = CopyOf.begin(); It != CopyOf.end();)
        It = It->second == Dst ? CopyOf.erase(It) : std::next(It);
    };

    for (IRInst &I : BB.Insts) {
      auto rewrite = [&](int &R) {
        if (R < 0)
          return;
        int Src = resolve(R);
        if (Src != R) {
          R = Src;
          ++Stats.CopiesPropagated;
          ++Changed;
        }
      };
      rewrite(I.A);
      rewrite(I.B);
      rewrite(I.C);
      for (int &R : I.Args)
        rewrite(R);

      if (I.Op == IROp::Mov) {
        invalidate(I.Dst);
        if (I.A != I.Dst)
          CopyOf[I.Dst] = I.A;
        continue;
      }
      if (I.Dst >= 0)
        invalidate(I.Dst);
    }
  }
  return Changed;
}

int removeDeadCode(IRFunction &F, OptStats &Stats) {
  int N = F.numBlocks();
  analysis::CFG Graph(F);

  // Backward liveness: LiveOut[b] = union of LiveIn[succ].
  std::vector<std::vector<char>> LiveIn(
      static_cast<size_t>(N), std::vector<char>(F.NumRegs, 0));

  auto computeLiveIn = [&](int B, std::vector<char> &Out) {
    // Start from the union of successors' live-ins.
    std::fill(Out.begin(), Out.end(), 0);
    for (int S : Graph.successors(B))
      for (int R = 0; R != F.NumRegs; ++R)
        Out[R] |= LiveIn[S][R];
    // Walk the block backwards.
    const BasicBlock &BB = F.Blocks[B];
    for (auto It = BB.Insts.rbegin(); It != BB.Insts.rend(); ++It) {
      const IRInst &I = *It;
      if (I.Dst >= 0)
        Out[I.Dst] = 0;
      struct Ctx {
        std::vector<char> *Out;
      } C{&Out};
      forEachUse(
          I, nullptr,
          [](int R, void *P) { (*static_cast<Ctx *>(P)->Out)[R] = 1; }, &C);
    }
  };

  bool Converged = false;
  int Guard = 0;
  while (!Converged && Guard++ < N + 8) {
    Converged = true;
    for (auto It = Graph.reversePostorder().rbegin();
         It != Graph.reversePostorder().rend(); ++It) {
      std::vector<char> NewIn(F.NumRegs, 0);
      computeLiveIn(*It, NewIn);
      if (NewIn != LiveIn[*It]) {
        LiveIn[*It] = std::move(NewIn);
        Converged = false;
      }
    }
  }

  // Sweep: walk each block backwards with the live-out set, dropping pure
  // instructions whose destination is dead.
  int Removed = 0;
  for (int B = 0; B != N; ++B) {
    if (!Graph.isReachable(B))
      continue;
    std::vector<char> Live(F.NumRegs, 0);
    for (int S : Graph.successors(B))
      for (int R = 0; R != F.NumRegs; ++R)
        Live[R] |= LiveIn[S][R];

    BasicBlock &BB = F.Blocks[B];
    std::vector<IRInst> Kept;
    Kept.reserve(BB.Insts.size());
    for (auto It = BB.Insts.rbegin(); It != BB.Insts.rend(); ++It) {
      IRInst &I = *It;
      bool Dead = I.Dst >= 0 && !Live[I.Dst] && isRemovableWhenDead(I);
      if (Dead) {
        ++Removed;
        continue;
      }
      if (I.Dst >= 0)
        Live[I.Dst] = 0;
      struct Ctx {
        std::vector<char> *Live;
      } C{&Live};
      forEachUse(
          I, nullptr,
          [](int R, void *P) { (*static_cast<Ctx *>(P)->Live)[R] = 1; }, &C);
      Kept.push_back(std::move(I));
    }
    std::reverse(Kept.begin(), Kept.end());
    BB.Insts = std::move(Kept);
  }
  Stats.DeadInstsRemoved += Removed;
  return Removed;
}

OptStats optimizeFunction(IRFunction &F) {
  OptStats Stats;
  for (int Round = 0; Round != 8; ++Round) {
    ++Stats.Iterations;
    int Changed = 0;
    Changed += foldConstants(F, Stats);
    Changed += propagateCopies(F, Stats);
    Changed += removeDeadCode(F, Stats);
    lowering::cleanupFunction(F);
    if (!Changed)
      break;
  }
  return Stats;
}

} // namespace opt
} // namespace ars
