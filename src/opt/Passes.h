//===- opt/Passes.h - The optimizing-compiler substrate -------*- C++ -*-===//
///
/// \file
/// Classic scalar optimizations over the CFG IR — the stand-in for the
/// Jalapeno optimizing compiler the paper compiles everything with
/// ("compiled prior to execution at level O2").  The sampling transforms
/// run *after* optimization, exactly as the paper performs duplication in
/// the last phase of the LIR.
///
/// Passes (applied to a bounded fixpoint by optimizeFunction):
///   * block-local constant folding and propagation (+ branch folding),
///   * block-local copy propagation,
///   * global dead-code elimination via backward liveness,
///   * CFG cleanup (jump threading + unreachable-block removal).
///
/// All passes are conservative about effects: calls, stores, allocation,
/// traps (division, memory access), prints and framework pseudo-ops are
/// never removed or reordered.
///
//===----------------------------------------------------------------------===//

#ifndef ARS_OPT_PASSES_H
#define ARS_OPT_PASSES_H

#include "ir/IR.h"

namespace ars {
namespace opt {

/// What the optimizer did to one function.
struct OptStats {
  int ConstantsFolded = 0;
  int BranchesFolded = 0;
  int CopiesPropagated = 0;
  int DeadInstsRemoved = 0;
  int Iterations = 0;

  int total() const {
    return ConstantsFolded + BranchesFolded + CopiesPropagated +
           DeadInstsRemoved;
  }
};

/// Block-local constant folding/propagation; folds constant branches.
int foldConstants(ir::IRFunction &F, OptStats &Stats);

/// Block-local copy propagation (rewrites uses of Mov destinations).
int propagateCopies(ir::IRFunction &F, OptStats &Stats);

/// Removes pure instructions whose destination is dead (global backward
/// liveness).
int removeDeadCode(ir::IRFunction &F, OptStats &Stats);

/// Runs all passes to a fixpoint (bounded) followed by CFG cleanup.
OptStats optimizeFunction(ir::IRFunction &F);

} // namespace opt
} // namespace ars

#endif // ARS_OPT_PASSES_H
