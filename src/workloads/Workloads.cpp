//===- workloads/Workloads.cpp --------------------------------*- C++ -*-===//

#include "workloads/Workloads.h"

namespace ars {
namespace workloads {

namespace {

// _201_compress analogue: LZW-style hashing over a buffer.  Tight array
// loops with a very field-dense coder state -> high backedge-check
// overhead, very high field-access instrumentation overhead, moderate
// calls.
const char *CompressSrc = R"(
class CState { int hash; int prev; int code; int checksum; }
global int gseed;
global int gpassstats;

int grand() {
  gseed = (gseed * 1103515245 + 12345) & 2147483647;
  return gseed;
}

int emit(CState st, int c) {
  st.hash = ((st.hash << 4) + c) & 65535;
  st.prev = st.code;
  st.code = (st.hash ^ st.prev) & 4095;
  st.checksum = (st.checksum + st.code) & 1048575;
  return st.code;
}

int main(int n) {
  CState st = new CState;
  int[] table = new int[4096];
  int[] data = new int[2048];
  gseed = 12345;
  for (int i = 0; i < 2048; i = i + 1) { data[i] = grand() & 255; }
  int acc = 0;
  for (int pass = 0; pass < n * 4; pass = pass + 1) {
    gpassstats = (gpassstats + pass) & 1048575;
    gpassstats = (gpassstats ^ st.hash) & 1048575;
    gpassstats = (gpassstats + st.checksum) & 1048575;
    gpassstats = (gpassstats * 3 + 1) & 1048575;
    gpassstats = (gpassstats ^ (gpassstats >> 4)) & 1048575;
    gpassstats = (gpassstats + st.code) & 1048575;
    gpassstats = (gpassstats * 9 + 7) & 1048575;
    gpassstats = (gpassstats ^ (gpassstats >> 2)) & 1048575;
    gpassstats = (gpassstats + st.prev) & 1048575;
    gpassstats = (gpassstats ^ st.hash) & 1048575;
    gpassstats = (gpassstats + 13) & 1048575;
    gpassstats = (gpassstats ^ (gpassstats << 1)) & 1048575;
    for (int i = 0; i < 2048; i = i + 1) {
      int c = data[i];
      st.hash = ((st.hash << 4) + c) & 65535;
      st.prev = (st.hash ^ st.prev) & 4095;
      st.code = (st.code + st.prev) & 4095;
      st.checksum = (st.checksum + st.code) & 1048575;
      table[st.code] = table[st.code] + 1;
      st.hash = (st.hash + st.checksum) & 65535;
      if ((i & 1) == 0) { st.code = emit(st, c); }
      if ((i & 7) == 0) { data[i] = grand() & 255; }
      acc = (acc + st.checksum) & 1048575;
    }
    iowait(50000);
  }
  return acc + st.checksum + (gpassstats & 15);
}
)";

// _202_jess analogue: forward-chaining rule matcher.  Many tiny calls per
// fact (match/bind), field-dense working memory.
const char *JessSrc = R"(
class Fact { int kind; int a; int b; int active; }
class Binding { int count; int sum; }

int matches(Fact f, int kind, int lo) {
  if (f.active == 0) { return 0; }
  if (f.kind != kind) { return 0; }
  if (f.a < lo) { return 0; }
  return 1;
}

int fire(Fact f, Binding bind) {
  bind.count = bind.count + 1;
  bind.sum = (bind.sum + f.a * 3 + f.b) & 1048575;
  f.b = (f.b + 1) & 65535;
  return bind.count;
}

int main(int n) {
  int nf = 64;
  Fact f0 = new Fact;
  Binding bind = new Binding;
  int[] kinds = new int[64];
  int[] avals = new int[64];
  int seed = 99;
  for (int i = 0; i < nf; i = i + 1) {
    seed = (seed * 1103515245 + 12345) & 2147483647;
    kinds[i] = seed & 7;
    avals[i] = (seed >> 3) & 255;
  }
  int acc = 0;
  for (int round = 0; round < n * 18; round = round + 1) {
    for (int i = 0; i < nf; i = i + 1) {
      f0.kind = kinds[i];
      f0.a = avals[i];
      f0.active = 1;
      f0.b = (f0.b + f0.a) & 65535;
      bind.sum = (bind.sum + f0.kind) & 1048575;
      bind.count = (bind.count + f0.b) & 1048575;
      bind.sum = (bind.sum ^ f0.a) & 1048575;
      for (int w = 0; w < 4; w = w + 1) {
        bind.sum = (bind.sum + kinds[(i + w) & 63] * 3) & 1048575;
        f0.b = (f0.b ^ avals[(i + w) & 63]) & 65535;
      }
      for (int rule = 0; rule < 2; rule = rule + 1) {
        if (matches(f0, rule, 32)) {
          acc = (acc + fire(f0, bind)) & 1048575;
        }
      }
    }
  }
  return acc + bind.sum;
}
)";

// _209_db analogue: in-memory database: shell sort plus linear scans over
// packed records.  Long compare loops, few calls, few field accesses ->
// the suite's low-overhead row.
const char *DbSrc = R"(
global int hits;
global int probes;

int near(int k, int probe) {
  int d = k - probe;
  if (d < 0) { d = -d; }
  if (d < 8) { return 1; }
  return 0;
}

int scan(int[] keys, int nrec, int probe) {
  int found = 0;
  probes = probes + 1;
  // Unrolled by 4, as a record-comparison loop would be.
  for (int i = 0; i < nrec; i = i + 4) {
    int k = keys[i];
    if ((i & 255) == 0) {
      found = found + near(k, probe);
      if (near(k, probe)) { hits = hits + 1; }
    } else {
      int d = k - probe;
      if (d < 0) { d = -d; }
      if (d < 8) { found = found + 1; }
    }
    int d1 = keys[i + 1] - probe;
    if (d1 < 0) { d1 = -d1; }
    if (d1 < 8) { found = found + 1; }
    int d2 = keys[i + 2] - probe;
    if (d2 < 0) { d2 = -d2; }
    if (d2 < 8) { found = found + 1; }
    int d3 = keys[i + 3] - probe;
    if (d3 < 0) { d3 = -d3; }
    if (d3 < 8) { found = found + 1; }
    if ((i & 7) == 0) { probes = (probes + k) & 1048575; }
  }
  return found;
}

int main(int n) {
  int nrec = 512;
  int[] keys = new int[512];
  int seed = 4242;
  for (int i = 0; i < nrec; i = i + 1) {
    seed = (seed * 1103515245 + 12345) & 2147483647;
    keys[i] = seed & 65535;
  }
  // Shell sort.
  int gap = nrec / 2;
  while (gap > 0) {
    for (int i = gap; i < nrec; i = i + 1) {
      int tmp = keys[i];
      int j = i;
      while (j >= gap && keys[j - gap] > tmp) {
        keys[j] = keys[j - gap];
        j = j - gap;
      }
      keys[j] = tmp;
    }
    gap = gap / 2;
  }
  int acc = 0;
  hits = 0;
  probes = 0;
  for (int q = 0; q < n * 30; q = q + 1) {
    seed = (seed * 1103515245 + 12345) & 2147483647;
    acc = (acc + scan(keys, nrec, seed & 65535)) & 1048575;
    hits = (hits + acc) & 1048575;
    probes = (probes ^ hits) & 1048575;
    hits = (hits + probes) & 1048575;
    probes = (probes * 5 + q) & 1048575;
    hits = (hits ^ (probes >> 3)) & 1048575;
    probes = (probes + hits) & 1048575;
    hits = (hits + 7) & 1048575;
    probes = (probes ^ hits) & 1048575;
    iowait(1800);
  }
  return acc + keys[0] + keys[511] + (probes & 255);
}
)";

// _213_javac analogue: recursive-descent expression compiler over a
// synthetic token stream.  Deep recursion, call-dominated, few loops.
const char *JavacSrc = R"(
class Parser { int pos; int depth; int emitted; int folded; int regs; }

int tokenAt(int[] toks, Parser p) {
  if (p.pos >= len(toks)) { return 0; }
  return toks[p.pos];
}

int emitOp(Parser p, int op, int v) {
  int e = (op * 2654435 + v) & 2147483647;
  e = e / 97;
  e = (e ^ (e >> 7)) & 1048575;
  int spill = (e * 48271 + op) & 2147483647;
  spill = spill / 113;
  spill = (spill ^ (spill >> 6)) & 1048575;
  spill = spill / 41;
  p.emitted = p.emitted + 1;
  p.regs = (p.regs + 1 + (spill & 1)) & 255;
  return e;
}

int foldConst(Parser p, int a, int b, int op) {
  p.folded = p.folded + 1;
  if (op == 1) { return (a + b) & 1048575; }
  if (op == 2) { return (a - b) & 1048575; }
  return (a * b) & 1048575;
}

int typeCheck(int v) {
  int t = (v * 48271) & 2147483647;
  t = t / 127;
  return (t ^ (t >> 9)) & 7;
}

int parseExpr(int[] toks, Parser p) {
  int v = parseTerm(toks, p);
  int t = 0;
  if (p.pos < len(toks)) { t = toks[p.pos]; }
  while (t == 1 || t == 2) {
    p.pos = p.pos + 1;
    int r = parseTerm(toks, p);
    if (v < 256 && r < 256) { v = foldConst(p, v, r, t); }
    else { if (t == 1) { v = (v + r) & 1048575; } else { v = (v - r) & 1048575; } }
    v = (v + emitOp(p, t, v)) & 1048575;
    t = 0;
    if (p.pos < len(toks)) { t = toks[p.pos]; }
  }
  return v;
}

int parseTerm(int[] toks, Parser p) {
  int v = parseUnary(toks, p);
  int t = 0;
  if (p.pos < len(toks)) { t = toks[p.pos]; }
  while (t == 3) {
    p.pos = p.pos + 1;
    int r = parseUnary(toks, p);
    if (v < 256 && r < 256) { v = foldConst(p, v, r, t); }
    else { v = (v * r) & 1048575; }
    v = (v + emitOp(p, t, v)) & 1048575;
    t = 0;
    if (p.pos < len(toks)) { t = toks[p.pos]; }
  }
  return v;
}

int parseUnary(int[] toks, Parser p) {
  int t = tokenAt(toks, p);
  if (t == 2) {
    p.pos = p.pos + 1;
    int v = parseUnary(toks, p);
    return (1048576 - v) & 1048575;
  }
  return parsePrimary(toks, p);
}

int parsePrimary(int[] toks, Parser p) {
  int t = 0;
  if (p.pos < len(toks)) { t = toks[p.pos]; }
  p.pos = p.pos + 1;
  // Inline "instruction selection": hash the token into machine words.
  int e = (t * 2654435 + p.pos) & 2147483647;
  e = e / 97;
  e = (e ^ (e >> 7)) & 1048575;
  e = e / 31;
  int e2 = (e * 31 + t) & 2147483647;
  e2 = e2 / 89;
  e2 = (e2 ^ (e2 >> 5)) & 1048575;
  e2 = e2 / 29;
  int e3 = (e2 * 17 + e) & 2147483647;
  e3 = e3 / 61;
  e3 = (e3 ^ (e3 >> 3)) & 1048575;
  int fold = (e + e2 + e3) & 7;
  if (t == 4) {
    p.depth = p.depth + 1;
    int v = parseExpr(toks, p);
    p.pos = p.pos + 1;
    p.depth = p.depth - 1;
    return (v + typeCheck(v) + fold) & 1048575;
  }
  int c = (t & 255) + fold;
  return c & 1048575;
}

int parseStmt(int[] toks, Parser p) {
  int v = parseExpr(toks, p);
  v = (v + emitOp(p, 7, v)) & 1048575;
  // Statement separator.
  if (tokenAt(toks, p) == 8) { p.pos = p.pos + 1; }
  return v;
}

int main(int n) {
  int ntok = 512;
  int[] toks = new int[512];
  int acc = 0;
  Parser p = new Parser;
  int seed = 7;
  // Generate one synthetic "source file": numbers, operators, statement
  // separators (8) and parenthesized groups encoded as 4 ... 5.
  int i = 0;
  int opens = 0;
  while (i < ntok - 2) {
    seed = (seed * 1103515245 + 12345) & 2147483647;
    int r = seed & 15;
    if (r < 7) { toks[i] = 10 + r; }          // number
    else { if (r < 10) { toks[i] = 1; }       // +
    else { if (r < 12) { toks[i] = 3; }       // *
    else { if (r == 12 && opens > 0) { toks[i] = 5; opens = opens - 1; } // )
    else { if (r == 13 && opens < 4) { toks[i] = 4; opens = opens + 1; } // (
    else { if (r == 14) { toks[i] = 8; }      // ;
    else { toks[i] = 2; } } } } } }           // -
    i = i + 1;
  }
  toks[ntok - 2] = 8;
  toks[ntok - 1] = 8;
  // Recompile the file over and over (the paper runs the optimizing
  // compiler on a subset of itself; recompilation dominates).
  for (int round = 0; round < n * 9; round = round + 1) {
    p.pos = 0;
    while (p.pos < ntok - 2) {
      acc = (acc + parseStmt(toks, p)) & 1048575;
    }
    iowait(6000);
  }
  return acc + p.emitted + p.folded;
}
)";

// _222_mpegaudio analogue: fixed-point subband filter.  Very tight numeric
// loops (highest backedge-check overhead) with field-dense filter state.
const char *MpegSrc = R"(
class Filter { int z0; int z1; int z2; int acc; }
global int energy;
global int framestats;

int filterStep(Filter flt, int s) {
  flt.z2 = flt.z1;
  flt.z1 = flt.z0;
  flt.z0 = s + ((flt.z1 * 3 - flt.z2) >> 2);
  flt.acc = (flt.acc + flt.z0) & 16777215;
  flt.acc = (flt.acc ^ flt.z1) & 16777215;
  flt.z2 = (flt.z2 + (s & 255)) & 16777215;
  return flt.z0;
}

int subEnergy(Filter flt) {
  int e = (flt.z0 + flt.z1 * 2 + flt.z2) & 16777215;
  return (e + flt.acc) & 16777215;
}

int main(int n) {
  int nsamp = 1024;
  int[] pcm = new int[1024];
  int[] coef = new int[32];
  Filter flt = new Filter;
  int seed = 31337;
  for (int i = 0; i < nsamp; i = i + 1) {
    seed = (seed * 1103515245 + 12345) & 2147483647;
    pcm[i] = (seed & 4095) - 2048;
  }
  for (int i = 0; i < 32; i = i + 1) {
    coef[i] = ((i * 37) & 255) - 128;
  }
  energy = 0;
  for (int frame = 0; frame < n * 24; frame = frame + 1) {
    framestats = (framestats + energy) & 1048575;
    framestats = (framestats ^ flt.z0) & 1048575;
    framestats = (framestats + flt.z1) & 1048575;
    framestats = (framestats * 5 + 1) & 1048575;
    framestats = (framestats ^ frame) & 1048575;
    framestats = (framestats + flt.z2) & 1048575;
    framestats = (framestats * 11 + 3) & 1048575;
    framestats = (framestats ^ (framestats >> 6)) & 1048575;
    framestats = (framestats + energy) & 1048575;
    framestats = (framestats + 29) & 1048575;
    for (int i = 0; i < nsamp; i = i + 1) {
      int s = pcm[i];
      if ((i & 1) == 0) {
        s = filterStep(flt, s);
      } else {
        flt.z2 = flt.z1;
        flt.z1 = flt.z0;
        flt.z0 = s + ((flt.z1 * 3 - flt.z2) >> 2);
        flt.acc = (flt.acc + flt.z0) & 16777215;
        flt.acc = (flt.acc ^ flt.z1) & 16777215;
        flt.z2 = (flt.z2 + (s & 255)) & 16777215;
      }
      if ((i & 7) == 0) { energy = (energy + subEnergy(flt)) & 1048575; }
    }
    int sub = 0;
    for (int b = 0; b < 32; b = b + 1) {
      sub = (sub + coef[b] * flt.acc) & 16777215;
    }
    energy = (energy + sub) & 1048575;
    iowait(25000);
  }
  return energy + flt.acc + (framestats & 15);
}
)";

// _227_mtrt analogue: ray/sphere intersection with float vector math.
// Call-heavy (dot/sub/intersect per object) with float-field access.
const char *MtrtSrc = R"(
class Vec { float x; float y; float z; }
class Sphere { float cx; float cy; float cz; float r2; }
global int hitcount;

float dot(Vec a, Vec b) {
  return a.x * b.x + a.y * b.y + a.z * b.z;
}

int intersect(Vec orig, Vec dir, Sphere s) {
  Vec oc = new Vec;
  oc.x = orig.x - s.cx;
  oc.y = orig.y - s.cy;
  oc.z = orig.z - s.cz;
  float b = dot(oc, dir);
  float c = oc.x * oc.x + oc.y * oc.y + oc.z * oc.z - s.r2;
  float disc = b * b - c;
  float atten = 1.0 / (1.0 + c * 0.25);
  float spec = atten * atten * 0.5 + b * 0.125;
  float glow = spec * atten + disc * 0.0625;
  if (disc + glow * 0.0 > 0.0) { return 1; }
  return 0;
}

int main(int n) {
  int nspheres = 12;
  Vec orig = new Vec;
  Vec dir = new Vec;
  Sphere s = new Sphere;
  int[] sx = new int[12];
  int[] sy = new int[12];
  int[] sz = new int[12];
  int seed = 555;
  for (int i = 0; i < nspheres; i = i + 1) {
    seed = (seed * 1103515245 + 12345) & 2147483647;
    sx[i] = (seed & 63) - 32;
    sy[i] = ((seed >> 6) & 63) - 32;
    sz[i] = ((seed >> 12) & 63) + 8;
  }
  hitcount = 0;
  for (int ray = 0; ray < n * 320; ray = ray + 1) {
    seed = (seed * 1103515245 + 12345) & 2147483647;
    dir.x = float((seed & 255) - 128) / 128.0;
    dir.y = float(((seed >> 8) & 255) - 128) / 128.0;
    dir.z = 1.0;
    orig.x = 0.0;
    orig.y = 0.0;
    orig.z = 0.0;
    for (int i = 0; i < nspheres; i = i + 1) {
      s.cx = float(sx[i]);
      s.cy = float(sy[i]);
      s.cz = float(sz[i]);
      s.r2 = 9.0;
      if (intersect(orig, dir, s)) {
        hitcount = hitcount + 1;
      }
    }
  }
  return hitcount;
}
)";

// _228_jack analogue: scanner/lexer generation pass.  Field-dense scanner
// state updated per character, moderate calls.
const char *JackSrc = R"(
class Scanner { int state; int line; int col; int toks; int check; int prev; }
global int passlog;

int classify(int c) {
  if (c < 32) { return 0; }
  if (c < 64) { return 1; }
  if (c < 96) { return 2; }
  return 3;
}

int main(int n) {
  Scanner sc = new Scanner;
  int nsrc = 2048;
  int[] src = new int[2048];
  int seed = 1001;
  for (int i = 0; i < nsrc; i = i + 1) {
    seed = (seed * 1103515245 + 12345) & 2147483647;
    src[i] = seed & 127;
  }
  for (int pass = 0; pass < n * 10; pass = pass + 1) {
    passlog = (passlog + sc.toks) & 1048575;
    passlog = (passlog ^ sc.check) & 1048575;
    passlog = (passlog + sc.line) & 1048575;
    passlog = (passlog * 7 + pass) & 1048575;
    passlog = (passlog ^ (passlog >> 3)) & 1048575;
    passlog = (passlog + sc.state) & 1048575;
    passlog = (passlog * 13 + 5) & 1048575;
    passlog = (passlog ^ (passlog >> 7)) & 1048575;
    passlog = (passlog + sc.prev) & 1048575;
    passlog = (passlog ^ sc.col) & 1048575;
    passlog = (passlog + 17) & 1048575;
    passlog = (passlog ^ (passlog << 2)) & 1048575;
    sc.state = 0;
    for (int i = 0; i < nsrc; i = i + 1) {
      int c = src[i];
      int cls = 0;
      if ((i & 3) == 0) { cls = classify(c); }
      else { if (c < 64) { cls = c >> 5; } else { cls = 3; } }
      sc.prev = sc.state;
      sc.state = ((sc.state << 2) ^ cls) & 1023;
      sc.col = sc.col + 1;
      if (cls == 0) { sc.line = sc.line + 1; sc.col = 0; }
      if (sc.state > 512) { sc.toks = sc.toks + 1; }
      sc.check = (sc.check + sc.state + sc.prev) & 1048575;
      sc.check = (sc.check ^ sc.col) & 1048575;
      sc.check = (sc.check + sc.toks) & 1048575;
      sc.col = (sc.col + sc.prev) & 65535;
      sc.prev = (sc.prev ^ c) & 65535;
    }
    iowait(35000);
  }
  return sc.check + sc.toks + sc.line + (passlog & 15);
}
)";

// opt-compiler analogue: a peephole optimizer over array-encoded IR,
// calling per-instruction helpers.  The suite's most call-dominated
// workload.
const char *OptSrc = R"(
class OptState { int folded; int visited; }
global int roundlog;

int isConstOp(int op) { return op == 1; }
int isMulOp(int op)   { return op == 3; }

int foldPair(int opa, int va, int opb, int vb) {
  if (opa == 1 && opb == 1) {
    return (va + vb) & 65535;
  }
  return -1;
}

int strengthReduce(int op, int v) {
  if (op == 3 && (v == 2 || v == 4 || v == 8)) {
    return 4;
  }
  return op;
}

int visit(int[] ops, int[] vals, int i, OptState st) {
  int op = ops[i];
  int v = vals[i];
  st.visited = st.visited + 1;
  int r = op;
  if ((i & 1) == 0) { r = strengthReduce(op, v); }
  if (r != op) { ops[i] = r; st.folded = st.folded + 1; }
  if (i + 1 < len(ops)) {
    int f = foldPair(op, v, ops[i + 1], vals[i + 1]);
    if (f >= 0) { vals[i] = f; st.folded = st.folded + 1; }
  }
  if (op == 1) { st.visited = (st.visited + v) & 1048575; }
  st.folded = (st.folded + st.visited) & 1048575;
  st.visited = (st.visited ^ op) & 1048575;
  st.folded = (st.folded ^ st.visited) & 1048575;
  st.visited = (st.visited + v) & 1048575;
  st.folded = (st.folded + (op & 3)) & 1048575;
  int lattice = (op * 2654435 + v) & 2147483647;
  lattice = lattice / 101;
  lattice = (lattice ^ (lattice >> 4)) & 1048575;
  lattice = lattice / 41;
  return ops[i] + vals[i] + (lattice & 1);
}

int main(int n) {
  int ncode = 512;
  int[] ops = new int[512];
  int[] vals = new int[512];
  OptState st = new OptState;
  int seed = 2020;
  int acc = 0;
  for (int round = 0; round < n * 22; round = round + 1) {
    roundlog = (roundlog + st.folded) & 1048575;
    roundlog = (roundlog ^ st.visited) & 1048575;
    roundlog = (roundlog * 3 + round) & 1048575;
    roundlog = (roundlog ^ (roundlog >> 5)) & 1048575;
    roundlog = (roundlog + acc) & 1048575;
    roundlog = (roundlog * 17 + 11) & 1048575;
    roundlog = (roundlog ^ (roundlog >> 8)) & 1048575;
    roundlog = (roundlog + st.visited) & 1048575;
    roundlog = (roundlog ^ st.folded) & 1048575;
    roundlog = (roundlog + 23) & 1048575;
    for (int i = 0; i < ncode; i = i + 1) {
      seed = (seed * 1103515245 + 12345) & 2147483647;
      ops[i] = 1 + (seed & 3);
      vals[i] = (seed >> 2) & 255;
    }
    for (int i = 0; i < ncode; i = i + 1) {
      acc = (acc + visit(ops, vals, i, st)) & 1048575;
    }
    iowait(32000);
  }
  return acc + st.folded + st.visited + (roundlog & 15);
}
)";

// pBOB analogue: business-object transaction processing.  Mixed calls and
// object-field updates at moderate density.
const char *PbobSrc = R"(
class Account { int balance; int txns; }
class Order { int qty; int price; int status; }
global int ledger;

int priceOf(int item) {
  return ((item * 73) & 255) + 1;
}

int process(Account acct, Order ord, int item) {
  ord.qty = (item & 7) + 1;
  int price = ((item * 73) & 255) + 1;
  if ((item & 3) == 0) { price = priceOf(item); }
  ord.price = price;
  int total = ord.qty * ord.price;
  // Tax/discount arithmetic pads the transaction body.
  int tax = (total * 7) / 100;
  int discount = 0;
  if (total > 900) { discount = total / 10; }
  total = total + tax - discount;
  int risk = (item * 31 + total) & 1023;
  if (risk > 1000) { total = total + 1; }
  int audit = total;
  audit = (audit * 13 + 1) % 97;
  audit = (audit * 13 + 2) % 97;
  audit = (audit * 13 + 3) % 97;
  audit = (audit * 13 + 4) % 97;
  audit = (audit * 13 + 5) % 97;
  audit = (audit * 13 + 6) % 97;
  if (audit == 13) { total = total + 1; }
  if (acct.balance < total) {
    ord.status = 2;
    acct.balance = acct.balance + 997;
    return 0;
  }
  acct.balance = acct.balance - total;
  acct.txns = acct.txns + 1;
  ord.status = 1;
  return total;
}

int main(int n) {
  Account acct = new Account;
  Order ord = new Order;
  int[] items = new int[256];
  int seed = 808;
  for (int i = 0; i < 256; i = i + 1) {
    seed = (seed * 1103515245 + 12345) & 2147483647;
    items[i] = seed & 1023;
  }
  acct.balance = 10000;
  int acc = 0;
  for (int round = 0; round < n * 35; round = round + 1) {
    ledger = (ledger + acct.balance) & 1048575;
    ledger = (ledger ^ acct.txns) & 1048575;
    ledger = (ledger * 3 + round) & 1048575;
    ledger = (ledger ^ (ledger >> 6)) & 1048575;
    ledger = (ledger + acc) & 1048575;
    ledger = (ledger * 7 + 19) & 1048575;
    ledger = (ledger ^ (ledger >> 5)) & 1048575;
    ledger = (ledger + acct.balance) & 1048575;
    ledger = (ledger ^ acct.txns) & 1048575;
    ledger = (ledger + 31) & 1048575;
    for (int i = 0; i < 256; i = i + 1) {
      int got = process(acct, ord, items[i]);
      acc = (acc + got) & 1048575;
      if ((i & 31) == 31) {
        iowait(60);
      }
    }
    iowait(20000);
  }
  return acc + acct.txns + (ledger & 15);
}
)";

// Volano analogue: multi-threaded chat rooms.  Spawned connection threads
// exchange messages through per-room buffers; long-latency iowait models
// the network (low field density, the timer-bias workload).  Shared
// global counters are only ever increased by commutative amounts, so the
// checksum is schedule-independent.
const char *VolanoSrc = R"(
global int delivered;
global int doneThreads;

int route(int msg, int conn) {
  return (msg * 31 + conn) & 1048575;
}

void connection(int conn, int rounds) {
  int[] outbox = new int[64];
  int seed = 17 + conn * 101;
  int sent = 0;
  for (int r = 0; r < rounds; r = r + 1) {
    for (int m = 0; m < 64; m = m + 4) {
      seed = (seed * 1103515245 + 12345) & 2147483647;
      int msg = route(seed & 65535, conn);
      outbox[m] = msg & 1048575;
      outbox[m + 1] = (msg + 1) & 1048575;
      seed = (seed * 1103515245 + 12345) & 2147483647;
      outbox[m + 2] = (seed & 65535) * 31 & 1048575;
      outbox[m + 3] = (seed >> 8) & 1048575;
      sent = sent + 4;
      delivered = delivered + 2;
    }
    iowait(4000);
    int sum = 0;
    for (int m = 0; m < 64; m = m + 4) {
      sum = (sum + outbox[m] + outbox[m + 1] + outbox[m + 2]
             + outbox[m + 3]) & 1048575;
    }
    delivered = (delivered + sum) & 1048575;
  }
  doneThreads = doneThreads + 1;
}

int main(int n) {
  delivered = 0;
  doneThreads = 0;
  int conns = 4;
  for (int c = 0; c < conns; c = c + 1) {
    spawn connection(c, n * 16);
  }
  while (doneThreads < conns) {
    iowait(400);
  }
  return delivered;
}
)";

const std::vector<Workload> &suite() {
  static const std::vector<Workload> Suite = {
      {"compress", CompressSrc, 72, 1,
       "tight array loops, field-dense coder state"},
      {"jess", JessSrc, 72, 1, "tiny-call rule matching, field-dense"},
      {"db", DbSrc, 72, 1, "long compare scans, few calls/fields"},
      {"javac", JavacSrc, 72, 1, "recursive-descent parsing, call-heavy"},
      {"mpegaudio", MpegSrc, 72, 1,
       "fixed-point filter, tightest loops, field-dense"},
      {"mtrt", MtrtSrc, 72, 1, "float vector math, call-heavy"},
      {"jack", JackSrc, 72, 1, "scanner state machine, field-dense"},
      {"opt-compiler", OptSrc, 72, 1,
       "peephole optimizer, most call-dominated"},
      {"pBOB", PbobSrc, 72, 1, "transaction objects, mixed density"},
      {"volano", VolanoSrc, 72, 1,
       "multi-threaded chat with long-latency waits"},
  };
  return Suite;
}

} // namespace

const std::vector<Workload> &allWorkloads() { return suite(); }

const Workload *workloadByName(const std::string &Name) {
  for (const Workload &W : suite())
    if (Name == W.Name)
      return &W;
  return nullptr;
}

} // namespace workloads
} // namespace ars
