//===- workloads/Workloads.h - The benchmark suite ------------*- C++ -*-===//
///
/// \file
/// Ten MiniJ workloads mirroring the paper's suite (SPECjvm98 with input
/// size 10, the Jalapeno optimizing compiler on a subset of itself, Volano
/// and pBOB).  Each is a synthetic program calibrated to the execution
/// signature that drives that benchmark's row in the paper's tables:
/// call density (call-edge instrumentation overhead), field-access density
/// (field-access instrumentation overhead), loop tightness (backedge check
/// overhead) and long-latency operations (timer-trigger misattribution).
///
/// Every workload defines `int main(int n)` where n scales the amount of
/// work, and returns a checksum that must be invariant across every
/// transformation mode (semantic-preservation tests rely on this).
///
//===----------------------------------------------------------------------===//

#ifndef ARS_WORKLOADS_WORKLOADS_H
#define ARS_WORKLOADS_WORKLOADS_H

#include <string>
#include <vector>

namespace ars {
namespace workloads {

/// One benchmark program.
struct Workload {
  const char *Name;
  const char *Source;       ///< MiniJ source text
  long long DefaultScale;   ///< scale for paper-style bench runs
  long long SmokeScale;     ///< tiny scale for unit tests
  const char *Profile;      ///< one-line execution-signature description
};

/// The full suite, in the paper's order.
const std::vector<Workload> &allWorkloads();

/// Lookup by name; nullptr if unknown.
const Workload *workloadByName(const std::string &Name);

} // namespace workloads
} // namespace ars

#endif // ARS_WORKLOADS_WORKLOADS_H
