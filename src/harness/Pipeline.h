//===- harness/Pipeline.h - Source -> baseline IR -> variants -*- C++ -*-===//
///
/// \file
/// The compilation pipeline the experiments share: MiniJ source is
/// compiled to bytecode, lowered to cleaned CFG IR (the "baseline
/// compiler"), and then instrumented/transformed per experiment
/// configuration.  Instrumentation produces a fresh copy of the IR each
/// time, so one Program serves many configurations.
///
//===----------------------------------------------------------------------===//

#ifndef ARS_HARNESS_PIPELINE_H
#define ARS_HARNESS_PIPELINE_H

#include "bytecode/Module.h"
#include "instr/Instrumentation.h"
#include "ir/IR.h"
#include "sampling/Transform.h"

#include <string>
#include <vector>

namespace ars {
namespace harness {

/// A compiled, pre-transform program.
struct Program {
  bytecode::Module M;
  std::vector<ir::IRFunction> Funcs; ///< cleaned baseline IR, by FuncId
  double CompileMs = 0.0;            ///< host time: parse+sema+gen+lower
};

/// Compilation outcome.
struct BuildResult {
  bool Ok = false;
  std::string Error;
  Program P;
};

/// Pipeline knobs.
struct BuildOptions {
  /// Run the optimizing-compiler passes (opt/Passes.h) after lowering —
  /// the paper's "compiled at level O2" configuration.  Off by default so
  /// the calibrated workload signatures stay put; the optimizer's own
  /// tests and the arsc --optimize flag exercise it.
  bool Optimize = false;
};

/// Compiles MiniJ \p Source through lowering and cleanup.
BuildResult buildProgram(const std::string &Source);
BuildResult buildProgram(const std::string &Source,
                         const BuildOptions &Options);

/// A transformed program ready to execute.
struct InstrumentedProgram {
  std::vector<ir::IRFunction> Funcs;
  instr::ProbeRegistry Registry;
  std::vector<sampling::TransformResult> Transforms; ///< per function
  double TransformMs = 0.0; ///< host time spent planning + transforming
  int CodeSizeBefore = 0;
  int CodeSizeAfter = 0;
};

/// Plans probes with \p Clients and applies \p Opts to every function.
InstrumentedProgram
instrumentProgram(const Program &P,
                  const std::vector<const instr::Instrumentation *> &Clients,
                  const sampling::Options &Opts);

/// Stable FNV-1a content hash of a compiled program (bytecode module plus
/// cleaned IR).  Two programs with the same hash transform identically, so
/// the hash anchors TransformCache keys.
uint64_t programHash(const Program &P);

/// Cache key for one (program, clients, options) transform.  The client
/// part uses object identity (a client instance's placement decisions may
/// depend on constructor parameters the interface cannot see), so keys are
/// only meaningful within one process — exactly the lifetime of a
/// TransformCache.
std::string
transformCacheKey(uint64_t ProgramHash,
                  const std::vector<const instr::Instrumentation *> &Clients,
                  const sampling::Options &Opts);

} // namespace harness
} // namespace ars

#endif // ARS_HARNESS_PIPELINE_H
