//===- harness/ParallelRunner.h - Parallel experiment harness -*- C++ -*-===//
///
/// \file
/// Fans a declarative RunMatrix of (workload program, transform options,
/// engine config, clients) cells out across a fixed-size thread pool,
/// sharing each instrumented module read-only through a TransformCache.
///
/// Determinism guarantee: the result vector is indexed by cell position,
/// never by completion order, and every cell's simulated-cycle stats and
/// profiles are bit-identical whatever the worker count — each run is a
/// pure function of its cell (the engine keeps all run state per
/// instance, the transform is deterministic, and cached modules are
/// immutable).  Only host wall-clock time changes with Jobs; this is
/// asserted by tests/test_parallel_harness.cpp and holds under
/// ThreadSanitizer (scripts/check.sh --tsan).
///
//===----------------------------------------------------------------------===//

#ifndef ARS_HARNESS_PARALLELRUNNER_H
#define ARS_HARNESS_PARALLELRUNNER_H

#include "harness/Experiment.h"
#include "harness/TransformCache.h"

namespace ars {
namespace profstore {
class ProfileAggregator;
}
namespace harness {

/// Runs experiment matrices over a worker pool with a shared transform
/// cache.  One runner (and so one cache) typically serves a whole bench
/// binary; the cache lives as long as the runner.
class ParallelRunner {
public:
  /// \p Jobs is the worker count; values below 1 are clamped to 1, which
  /// is the serial reference configuration.
  explicit ParallelRunner(int Jobs = 1);

  /// Runs every cell of \p M and returns results in cell order.  A failed
  /// run (engine error) is returned in place with Stats.Ok == false; it
  /// never aborts the other cells.
  std::vector<ExperimentResult> run(const RunMatrix &M);

  /// Like run(), but each worker additionally streams its cell's profile
  /// bundle into \p Agg (keyed by cell index) as soon as the run
  /// finishes — the streaming-aggregation path.  The aggregator's merged
  /// bundle is byte-identical for every worker count (see
  /// profstore/ProfileAggregator.h); failed cells flush nothing.
  std::vector<ExperimentResult> run(const RunMatrix &M,
                                    profstore::ProfileAggregator *Agg);

  int jobs() const { return Jobs; }
  TransformCache &cache() { return Cache; }

private:
  int Jobs;
  TransformCache Cache;
};

} // namespace harness
} // namespace ars

#endif // ARS_HARNESS_PARALLELRUNNER_H
