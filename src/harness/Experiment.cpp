//===- harness/Experiment.cpp ---------------------------------*- C++ -*-===//

#include "harness/Experiment.h"

#include "support/Support.h"

#include <cassert>

namespace ars {
namespace harness {

ExperimentResult runExperiment(const Program &P, int64_t ScaleArg,
                               const RunConfig &C) {
  InstrumentedProgram IP = instrumentProgram(P, C.Clients, C.Transform);
  return runInstrumented(P, IP, ScaleArg, C);
}

ExperimentResult runInstrumented(const Program &P,
                                 const InstrumentedProgram &IP,
                                 int64_t ScaleArg, const RunConfig &C) {
  ExperimentResult Result;
  Result.CodeSizeBefore = IP.CodeSizeBefore;
  Result.CodeSizeAfter = IP.CodeSizeAfter;
  Result.TransformMs = IP.TransformMs;

  runtime::EngineConfig EC = C.Engine;
  EC.BurstLength = C.Transform.BurstLength; // keep runtime/transform in sync
  runtime::ExecutionEngine Engine(P.M, IP.Funcs, IP.Registry, EC);

  const bytecode::FunctionDef *Main = P.M.functionByName("main");
  assert(Main && "workload has no main function");
  Result.Stats = Engine.run(Main->FuncId, {ScaleArg});
  Result.Profiles = Engine.profiles();
  return Result;
}

ExperimentResult runBaseline(const Program &P, int64_t ScaleArg) {
  RunConfig C;
  C.Transform.M = sampling::Mode::Baseline;
  return runExperiment(P, ScaleArg, C);
}

double overheadPct(const ExperimentResult &Baseline,
                   const ExperimentResult &Measured) {
  return support::percentOver(static_cast<double>(Baseline.Stats.Cycles),
                              static_cast<double>(Measured.Stats.Cycles));
}

} // namespace harness
} // namespace ars
