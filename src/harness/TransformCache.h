//===- harness/TransformCache.h - Shared instrumented modules -*- C++ -*-===//
///
/// \file
/// A content-keyed cache of transformed (instrumented) programs.  An
/// experiment matrix re-runs the same instrumented module under many
/// engine configurations — Table 4 alone runs one transform per
/// (workload, mode) under seven sample intervals — so each module is
/// built once and shared read-only across every run that uses it.
///
/// Sharing is safe because the execution engine treats the instrumented
/// IR and the probe registry as immutable (all run state lives in the
/// ExecutionEngine instance; see runtime/Engine.h), and the transform is
/// deterministic, so a cached module is byte-for-byte the module a fresh
/// transform would produce.  Both facts are covered by tests
/// (tests/test_parallel_harness.cpp).
///
/// Lookups are single-flight: concurrent requests for the same key block
/// until the first requester finishes transforming, rather than
/// duplicating the work.
///
//===----------------------------------------------------------------------===//

#ifndef ARS_HARNESS_TRANSFORMCACHE_H
#define ARS_HARNESS_TRANSFORMCACHE_H

#include "harness/Pipeline.h"

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>

namespace ars {
namespace harness {

/// Thread-safe, single-flight cache of instrumented programs keyed on
/// (program content hash, clients, transform options).
class TransformCache {
public:
  /// Returns the instrumented program for (\p P, \p Clients, \p Opts),
  /// transforming on first use.  The returned pointer is shared and
  /// immutable; it stays valid after the cache is cleared or destroyed.
  std::shared_ptr<const InstrumentedProgram>
  get(const Program &P,
      const std::vector<const instr::Instrumentation *> &Clients,
      const sampling::Options &Opts);

  /// Requests served from an existing (or in-flight) entry.
  uint64_t hits() const;
  /// Requests that ran the transform.
  uint64_t misses() const;

  /// Drops every entry (shared pointers handed out survive).
  void clear();

private:
  struct Entry {
    bool Ready = false;
    std::shared_ptr<const InstrumentedProgram> IP;
  };

  mutable std::mutex Mu;
  std::condition_variable EntryReady;
  std::map<std::string, Entry> Entries;
  /// Program content hashes are memoized by address: hashing renders the
  /// whole module, which would otherwise dwarf the cache's savings.  An
  /// address maps to one content hash for the cache's lifetime because
  /// matrix cells reference immutable prebuilt programs.
  std::map<const Program *, uint64_t> HashMemo;
  uint64_t Hits = 0;
  uint64_t Misses = 0;
};

} // namespace harness
} // namespace ars

#endif // ARS_HARNESS_TRANSFORMCACHE_H
