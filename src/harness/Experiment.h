//===- harness/Experiment.h - Experiment driver ---------------*- C++ -*-===//
///
/// \file
/// Runs one (workload, transform, trigger) configuration and reports the
/// numbers the paper's tables are made of: simulated cycles, overhead
/// against a baseline run, sample counts, and the collected profiles.
///
//===----------------------------------------------------------------------===//

#ifndef ARS_HARNESS_EXPERIMENT_H
#define ARS_HARNESS_EXPERIMENT_H

#include "harness/Pipeline.h"
#include "profile/Profiles.h"
#include "runtime/Engine.h"

namespace ars {
namespace harness {

/// Full configuration of one run.
struct RunConfig {
  sampling::Options Transform;
  runtime::EngineConfig Engine;
  std::vector<const instr::Instrumentation *> Clients;
};

/// What one run produced.
struct ExperimentResult {
  runtime::RunStats Stats;
  profile::ProfileBundle Profiles;
  int CodeSizeBefore = 0;
  int CodeSizeAfter = 0;
  double TransformMs = 0.0;
  /// Total checks+guarded-probe checks executed (No-Duplication counts its
  /// guards here so Table 4's "Num Samples" can be read off uniformly).
  uint64_t checksExecuted() const {
    return Stats.CheckExecs + Stats.GuardedProbeExecs;
  }
  uint64_t samplesTaken() const {
    return Stats.SamplesTaken + Stats.GuardedProbesTaken;
  }
};

/// Instruments \p P per \p C, runs entry function "main" with the single
/// integer argument \p ScaleArg, and returns stats + profiles.
ExperimentResult runExperiment(const Program &P, int64_t ScaleArg,
                               const RunConfig &C);

/// Runs \p P using the already-instrumented module \p IP (which must have
/// been produced from \p P with \p C.Transform and \p C.Clients).  \p IP
/// is only read, so one instrumented module can serve many concurrent
/// runs — the TransformCache sharing path of the parallel harness.
ExperimentResult runInstrumented(const Program &P,
                                 const InstrumentedProgram &IP,
                                 int64_t ScaleArg, const RunConfig &C);

/// Convenience: a baseline (uninstrumented, yieldpoints-only) run.
ExperimentResult runBaseline(const Program &P, int64_t ScaleArg);

/// One cell of an experiment matrix.  \p Prog must outlive the matrix run
/// (cells reference prebuilt programs; building is not part of a cell).
struct MatrixCell {
  const Program *Prog = nullptr;
  int64_t ScaleArg = 0;
  RunConfig Config;
};

/// A declarative batch of runs.  Cell order is the result order.
struct RunMatrix {
  std::vector<MatrixCell> Cells;
};

/// Runs every cell of \p M on \p Jobs worker threads (1 = serial) and
/// returns results in cell order.  Simulated-cycle stats and profiles are
/// bit-identical for every Jobs value; see harness/ParallelRunner.h,
/// which this forwards to (use ParallelRunner directly to share its
/// TransformCache across several matrices).
std::vector<ExperimentResult> runMatrix(const RunMatrix &M, int Jobs = 1);

/// Overhead of \p Measured relative to \p Baseline in percent.
double overheadPct(const ExperimentResult &Baseline,
                   const ExperimentResult &Measured);

} // namespace harness
} // namespace ars

#endif // ARS_HARNESS_EXPERIMENT_H
