//===- harness/Experiment.h - Experiment driver ---------------*- C++ -*-===//
///
/// \file
/// Runs one (workload, transform, trigger) configuration and reports the
/// numbers the paper's tables are made of: simulated cycles, overhead
/// against a baseline run, sample counts, and the collected profiles.
///
//===----------------------------------------------------------------------===//

#ifndef ARS_HARNESS_EXPERIMENT_H
#define ARS_HARNESS_EXPERIMENT_H

#include "harness/Pipeline.h"
#include "profile/Profiles.h"
#include "runtime/Engine.h"

namespace ars {
namespace harness {

/// Full configuration of one run.
struct RunConfig {
  sampling::Options Transform;
  runtime::EngineConfig Engine;
  std::vector<const instr::Instrumentation *> Clients;
};

/// What one run produced.
struct ExperimentResult {
  runtime::RunStats Stats;
  profile::ProfileBundle Profiles;
  int CodeSizeBefore = 0;
  int CodeSizeAfter = 0;
  double TransformMs = 0.0;
  /// Total checks+guarded-probe checks executed (No-Duplication counts its
  /// guards here so Table 4's "Num Samples" can be read off uniformly).
  uint64_t checksExecuted() const {
    return Stats.CheckExecs + Stats.GuardedProbeExecs;
  }
  uint64_t samplesTaken() const {
    return Stats.SamplesTaken + Stats.GuardedProbesTaken;
  }
};

/// Instruments \p P per \p C, runs entry function "main" with the single
/// integer argument \p ScaleArg, and returns stats + profiles.
ExperimentResult runExperiment(const Program &P, int64_t ScaleArg,
                               const RunConfig &C);

/// Convenience: a baseline (uninstrumented, yieldpoints-only) run.
ExperimentResult runBaseline(const Program &P, int64_t ScaleArg);

/// Overhead of \p Measured relative to \p Baseline in percent.
double overheadPct(const ExperimentResult &Baseline,
                   const ExperimentResult &Measured);

} // namespace harness
} // namespace ars

#endif // ARS_HARNESS_EXPERIMENT_H
