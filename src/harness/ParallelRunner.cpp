//===- harness/ParallelRunner.cpp -----------------------------*- C++ -*-===//

#include "harness/ParallelRunner.h"

#include "profstore/ProfileAggregator.h"
#include "support/ThreadPool.h"

namespace ars {
namespace harness {

ParallelRunner::ParallelRunner(int Jobs) : Jobs(Jobs < 1 ? 1 : Jobs) {}

std::vector<ExperimentResult> ParallelRunner::run(const RunMatrix &M) {
  return run(M, nullptr);
}

std::vector<ExperimentResult>
ParallelRunner::run(const RunMatrix &M, profstore::ProfileAggregator *Agg) {
  std::vector<ExperimentResult> Results(M.Cells.size());

  support::ThreadPool Pool(Jobs);
  for (size_t I = 0; I != M.Cells.size(); ++I) {
    Pool.submit([this, &M, &Results, Agg, I] {
      const MatrixCell &Cell = M.Cells[I];
      if (!Cell.Prog) {
        Results[I].Stats.Error = "matrix cell has no program";
        return;
      }
      std::shared_ptr<const InstrumentedProgram> IP =
          Cache.get(*Cell.Prog, Cell.Config.Clients, Cell.Config.Transform);
      Results[I] =
          runInstrumented(*Cell.Prog, *IP, Cell.ScaleArg, Cell.Config);
      if (Agg && Results[I].Stats.Ok)
        Agg->flush(I, Results[I].Profiles);
    });
  }
  Pool.wait();
  return Results;
}

std::vector<ExperimentResult> runMatrix(const RunMatrix &M, int Jobs) {
  return ParallelRunner(Jobs).run(M);
}

} // namespace harness
} // namespace ars
