//===- harness/TransformCache.cpp -----------------------------*- C++ -*-===//

#include "harness/TransformCache.h"

namespace ars {
namespace harness {

std::shared_ptr<const InstrumentedProgram>
TransformCache::get(const Program &P,
                    const std::vector<const instr::Instrumentation *> &Clients,
                    const sampling::Options &Opts) {
  std::unique_lock<std::mutex> Lock(Mu);

  auto HashIt = HashMemo.find(&P);
  if (HashIt == HashMemo.end()) {
    // Hash outside the lock: rendering the module is the expensive part
    // and needs no shared state.
    Lock.unlock();
    uint64_t Hash = programHash(P);
    Lock.lock();
    HashIt = HashMemo.emplace(&P, Hash).first;
  }
  std::string Key = transformCacheKey(HashIt->second, Clients, Opts);

  auto It = Entries.find(Key);
  if (It != Entries.end()) {
    ++Hits;
    EntryReady.wait(Lock, [&] { return It->second.Ready; });
    return It->second.IP;
  }

  ++Misses;
  It = Entries.emplace(Key, Entry()).first;
  Lock.unlock();
  auto IP = std::make_shared<const InstrumentedProgram>(
      instrumentProgram(P, Clients, Opts));
  Lock.lock();
  It->second.IP = IP;
  It->second.Ready = true;
  EntryReady.notify_all();
  return IP;
}

uint64_t TransformCache::hits() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Hits;
}

uint64_t TransformCache::misses() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Misses;
}

void TransformCache::clear() {
  std::lock_guard<std::mutex> Lock(Mu);
  Entries.clear();
  HashMemo.clear();
  Hits = 0;
  Misses = 0;
}

} // namespace harness
} // namespace ars
