//===- harness/Pipeline.cpp -----------------------------------*- C++ -*-===//

#include "harness/Pipeline.h"

#include "bytecode/Disassembler.h"
#include "frontend/Compiler.h"
#include "ir/IRPrinter.h"
#include "ir/IRVerifier.h"
#include "lowering/Cleanup.h"
#include "lowering/Lowering.h"
#include "opt/Passes.h"
#include "sampling/Coalesce.h"
#include "support/Support.h"

namespace ars {
namespace harness {

BuildResult buildProgram(const std::string &Source) {
  return buildProgram(Source, BuildOptions());
}

BuildResult buildProgram(const std::string &Source,
                         const BuildOptions &Options) {
  BuildResult Result;
  support::HostTimer Timer;

  frontend::CompileResult Compiled = frontend::compile(Source);
  if (!Compiled.Ok) {
    Result.Error = Compiled.Error;
    return Result;
  }

  lowering::LowerModuleResult Lowered = lowering::lowerModule(Compiled.M);
  if (!Lowered.Ok) {
    Result.Error = "lowering failed: " + Lowered.Error;
    return Result;
  }
  for (ir::IRFunction &F : Lowered.Funcs) {
    lowering::cleanupFunction(F);
    if (Options.Optimize)
      opt::optimizeFunction(F);
    std::string Bad = ir::verifyFunction(F);
    if (!Bad.empty()) {
      Result.Error = "IR verifier: " + Bad;
      return Result;
    }
  }

  Result.P.M = std::move(Compiled.M);
  Result.P.Funcs = std::move(Lowered.Funcs);
  Result.P.CompileMs = Timer.elapsedMs();
  Result.Ok = true;
  return Result;
}

InstrumentedProgram
instrumentProgram(const Program &P,
                  const std::vector<const instr::Instrumentation *> &Clients,
                  const sampling::Options &Opts) {
  InstrumentedProgram Out;
  support::HostTimer Timer;
  Out.Funcs = P.Funcs; // fresh copy; the transform mutates in place
  for (ir::IRFunction &F : Out.Funcs) {
    Out.CodeSizeBefore += F.codeSize();
    instr::FunctionPlan Plan =
        instr::planFunction(F, P.M, Clients, Out.Registry);
    Out.Transforms.push_back(
        sampling::transformFunction(F, Plan, Opts));
    // The check optimizer runs here rather than inside transformFunction
    // because it needs the probe registry (probe kinds decide what is
    // safe to hoist or merge), which the transform never sees.
    sampling::coalesceChecks(F, Out.Registry, Opts, Out.Transforms.back());
    Out.CodeSizeAfter += F.codeSize();
  }
  Out.TransformMs = Timer.elapsedMs();
  return Out;
}

namespace {

uint64_t fnv1a(uint64_t Hash, const std::string &Text) {
  for (char C : Text) {
    Hash ^= static_cast<unsigned char>(C);
    Hash *= 0x100000001B3ULL;
  }
  return Hash;
}

} // namespace

uint64_t programHash(const Program &P) {
  // The disassembly and the IR printer render every semantically relevant
  // bit of the program (opcodes, operands, block structure, symbol
  // tables), so hashing their output is a content hash without a second
  // serialization format to maintain.
  uint64_t Hash = 0xCBF29CE484222325ULL;
  Hash = fnv1a(Hash, bytecode::disassembleModule(P.M));
  for (const ir::IRFunction &F : P.Funcs)
    Hash = fnv1a(Hash, ir::printFunction(F));
  return Hash;
}

std::string
transformCacheKey(uint64_t ProgramHash,
                  const std::vector<const instr::Instrumentation *> &Clients,
                  const sampling::Options &Opts) {
  std::string Key = support::formatString("p%016llx",
      static_cast<unsigned long long>(ProgramHash));
  for (const instr::Instrumentation *C : Clients)
    Key += support::formatString("|%s@%p", C->name(),
                                 static_cast<const void *>(C));
  Key += support::formatString(
      "|m%d:y%d:o%d:e%d:b%d:d%d:l%d:t%d:c%d:h%d", static_cast<int>(Opts.M),
      Opts.InsertYieldpoints ? 1 : 0, Opts.YieldpointOpt ? 1 : 0,
      Opts.EntryChecks ? 1 : 0, Opts.BackedgeChecks ? 1 : 0,
      Opts.DuplicateCode ? 1 : 0, Opts.BurstLength, Opts.CombineThreshold,
      Opts.CoalesceChecks ? 1 : 0, Opts.HoistLoopProbes ? 1 : 0);
  return Key;
}

} // namespace harness
} // namespace ars
