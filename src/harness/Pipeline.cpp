//===- harness/Pipeline.cpp -----------------------------------*- C++ -*-===//

#include "harness/Pipeline.h"

#include "frontend/Compiler.h"
#include "ir/IRVerifier.h"
#include "lowering/Cleanup.h"
#include "lowering/Lowering.h"
#include "opt/Passes.h"
#include "support/Support.h"

namespace ars {
namespace harness {

BuildResult buildProgram(const std::string &Source) {
  return buildProgram(Source, BuildOptions());
}

BuildResult buildProgram(const std::string &Source,
                         const BuildOptions &Options) {
  BuildResult Result;
  support::HostTimer Timer;

  frontend::CompileResult Compiled = frontend::compile(Source);
  if (!Compiled.Ok) {
    Result.Error = Compiled.Error;
    return Result;
  }

  lowering::LowerModuleResult Lowered = lowering::lowerModule(Compiled.M);
  if (!Lowered.Ok) {
    Result.Error = "lowering failed: " + Lowered.Error;
    return Result;
  }
  for (ir::IRFunction &F : Lowered.Funcs) {
    lowering::cleanupFunction(F);
    if (Options.Optimize)
      opt::optimizeFunction(F);
    std::string Bad = ir::verifyFunction(F);
    if (!Bad.empty()) {
      Result.Error = "IR verifier: " + Bad;
      return Result;
    }
  }

  Result.P.M = std::move(Compiled.M);
  Result.P.Funcs = std::move(Lowered.Funcs);
  Result.P.CompileMs = Timer.elapsedMs();
  Result.Ok = true;
  return Result;
}

InstrumentedProgram
instrumentProgram(const Program &P,
                  const std::vector<const instr::Instrumentation *> &Clients,
                  const sampling::Options &Opts) {
  InstrumentedProgram Out;
  support::HostTimer Timer;
  Out.Funcs = P.Funcs; // fresh copy; the transform mutates in place
  for (ir::IRFunction &F : Out.Funcs) {
    Out.CodeSizeBefore += F.codeSize();
    instr::FunctionPlan Plan =
        instr::planFunction(F, P.M, Clients, Out.Registry);
    Out.Transforms.push_back(
        sampling::transformFunction(F, Plan, Opts));
    Out.CodeSizeAfter += F.codeSize();
  }
  Out.TransformMs = Timer.elapsedMs();
  return Out;
}

} // namespace harness
} // namespace ars
