//===- runtime/CostModel.cpp ----------------------------------*- C++ -*-===//

#include "runtime/CostModel.h"

namespace ars {
namespace runtime {

uint32_t CostModel::costOf(const ir::IRInst &I) const {
  using ir::IROp;
  switch (I.Op) {
  case IROp::Nop:
    return 0;
  case IROp::Jump:
    return Jump;
  case IROp::Mul:
    return Mul;
  case IROp::Div:
  case IROp::Rem:
    return DivRem;
  case IROp::FAdd:
  case IROp::FSub:
  case IROp::FMul:
  case IROp::FNeg:
  case IROp::F2I:
  case IROp::I2F:
  case IROp::FCmpLt:
  case IROp::FCmpLe:
  case IROp::FCmpEq:
    return FloatOp;
  case IROp::FDiv:
    return FDiv;
  case IROp::GetField:
  case IROp::PutField:
  case IROp::GetGlobal:
  case IROp::PutGlobal:
  case IROp::ALoad:
  case IROp::AStore:
  case IROp::ALen:
    return Memory;
  case IROp::New:
  case IROp::NewArray:
    return Alloc;
  case IROp::Call:
    return CallOverhead;
  case IROp::Spawn:
    return SpawnOverhead;
  case IROp::Ret:
  case IROp::RetVal:
    return RetOverhead;
  case IROp::IOWait:
    return static_cast<uint32_t>(I.Imm);
  case IROp::Print:
    return Print;
  case IROp::Yieldpoint:
    return Yieldpoint;
  case IROp::SampleCheck:
  case IROp::GuardedProbe:
    return Check; // taken-path extras are charged by the engine
  case IROp::Probe:
    return 0; // the probe body cost comes from its registry entry
  case IROp::BurstTransfer:
    return BurstTransfer;
  default:
    return Simple;
  }
}

} // namespace runtime
} // namespace ars
