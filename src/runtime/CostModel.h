//===- runtime/CostModel.h - Deterministic cycle costs --------*- C++ -*-===//
///
/// \file
/// The simulated-cycle cost model.  Overheads in the paper are ratios of
/// execution times; in this reproduction they are ratios of deterministic
/// cycle counts, so only *relative* costs matter.  The defaults encode the
/// relations the paper states explicitly:
///
///  * a counter-based check performs "a memory load, compare, branch,
///    decrement, and store" (section 4.3) — Check = 5;
///  * the field-access probe body ("two loads, an increment, and a store",
///    section 4.3) costs about the same as a check — the clients default
///    to 6;
///  * a yieldpoint is "similar, but slightly different" to a check
///    (section 4.5) — Yieldpoint = 4;
///  * jumping into duplicated code "will most likely incur one or more
///    instruction cache misses" (section 4.4) — CheckTakenExtra = 20.
///
//===----------------------------------------------------------------------===//

#ifndef ARS_RUNTIME_COSTMODEL_H
#define ARS_RUNTIME_COSTMODEL_H

#include "ir/IR.h"

#include <cstdint>

namespace ars {
namespace runtime {

/// Per-operation simulated cycle costs.
struct CostModel {
  uint32_t Simple = 1;   ///< moves, integer ALU, compares, branches
  uint32_t Jump = 0;     ///< unconditional jumps: block layout makes them
                         ///< fall-throughs, so they are free by default
  uint32_t Mul = 3;
  uint32_t DivRem = 20;
  uint32_t FloatOp = 3;
  uint32_t FDiv = 20;
  uint32_t Memory = 3;   ///< field/global/array accesses
  uint32_t Alloc = 30;
  uint32_t CallOverhead = 10;
  uint32_t SpawnOverhead = 50;
  uint32_t RetOverhead = 5;
  uint32_t Yieldpoint = 4;
  uint32_t Check = 5;           ///< counter check, not-taken path
  uint32_t CheckTakenExtra = 20;///< extra when jumping to duplicated code
  uint32_t BurstTransfer = 2;
  uint32_t Print = 5;

  /// Static cost of \p I.  Probe bodies and the taken path of checks are
  /// charged separately by the engine (Probe/GuardedProbe return the
  /// check-or-zero part here).
  uint32_t costOf(const ir::IRInst &I) const;
};

} // namespace runtime
} // namespace ars

#endif // ARS_RUNTIME_COSTMODEL_H
