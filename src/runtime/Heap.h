//===- runtime/Heap.h - Simulated object heap -----------------*- C++ -*-===//
///
/// \file
/// A simple bump heap of objects and i64 arrays.  References are opaque
/// nonzero handles (0 is null).  There is no collector: workloads are sized
/// to run within the configured cell budget, and the engine reports an
/// error if allocation exceeds it (which tests exercise).
///
//===----------------------------------------------------------------------===//

#ifndef ARS_RUNTIME_HEAP_H
#define ARS_RUNTIME_HEAP_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ars {
namespace runtime {

/// One 64-bit slot (integers, references, or a double).
struct Cell {
  int64_t I = 0;
  double F = 0.0;
};

/// Object-and-array heap.
class Heap {
public:
  explicit Heap(size_t MaxCells) : MaxCells(MaxCells) {}

  /// Allocates an object with \p NumFields zeroed fields; returns its
  /// handle, or 0 if the cell budget is exhausted.
  int64_t allocObject(int ClassId, int NumFields);

  /// Allocates a zeroed array of \p Len cells; 0 on failure or Len < 0.
  int64_t allocArray(int64_t Len);

  /// True if \p Ref names a live object or array.
  bool valid(int64_t Ref) const {
    return Ref > 0 && static_cast<size_t>(Ref) <= Headers.size();
  }

  /// Number of cells (fields or elements) behind \p Ref.
  int64_t length(int64_t Ref) const { return header(Ref).Len; }

  /// Class id of \p Ref (-1 for arrays).
  int classId(int64_t Ref) const { return header(Ref).ClassId; }

  /// Cell access; \p Index must be within bounds (checked by the engine).
  Cell &cell(int64_t Ref, int64_t Index) {
    return Pool[header(Ref).Begin + static_cast<size_t>(Index)];
  }
  const Cell &cell(int64_t Ref, int64_t Index) const {
    return Pool[header(Ref).Begin + static_cast<size_t>(Index)];
  }

  size_t cellsUsed() const { return Pool.size(); }

private:
  struct Header {
    int ClassId = -1;
    size_t Begin = 0;
    int64_t Len = 0;
  };

  const Header &header(int64_t Ref) const {
    return Headers[static_cast<size_t>(Ref) - 1];
  }

  size_t MaxCells;
  std::vector<Cell> Pool;
  std::vector<Header> Headers;
};

} // namespace runtime
} // namespace ars

#endif // ARS_RUNTIME_HEAP_H
