//===- runtime/Engine.cpp -------------------------------------*- C++ -*-===//

#include "runtime/Engine.h"

#include "support/Support.h"

#include <cassert>

using ars::support::formatString;

namespace ars {
namespace runtime {

using ir::IRInst;
using ir::IROp;

bool threadedDispatchCompiled() {
  return ARS_THREADED_DISPATCH_AVAILABLE != 0;
}

ExecutionEngine::ExecutionEngine(const bytecode::Module &M,
                                 const std::vector<ir::IRFunction> &Funcs,
                                 const instr::ProbeRegistry &Probes,
                                 EngineConfig Config)
    : M(M), Funcs(Funcs), Probes(Probes), Config(Config),
      TheHeap(Config.MaxHeapCells), Rng(Config.RandomSeed) {
  // Precompute field-id -> object offset (fields are laid out in
  // declaration order within their class).
  FieldOffset.assign(static_cast<size_t>(M.numFieldIds()), -1);
  for (const bytecode::ClassDef &C : M.classes())
    for (size_t F = 0; F != C.Fields.size(); ++F)
      FieldOffset[static_cast<size_t>(C.Fields[F].FieldId)] =
          static_cast<int>(F);
  Globals.assign(static_cast<size_t>(M.numGlobals()), Cell());
  Profiles.FieldAccesses.resize(M.numFieldIds());

  // Flatten per-instruction costs.  A frame's Optimized flag is a pure
  // function of its FuncId (pushFrame and Spawn both derive it from
  // Config.OptimizedFuncs), so the optimized scale folds into the table
  // and the dispatch loops charge one load per instruction.
  InstCosts.resize(Funcs.size());
  for (size_t F = 0; F != Funcs.size(); ++F) {
    const ir::IRFunction &Fn = Funcs[F];
    FuncCostTable &CT = InstCosts[F];
    bool Optimized = F < Config.OptimizedFuncs.size() &&
                     Config.OptimizedFuncs[F];
    CT.BlockBase.reserve(Fn.Blocks.size());
    for (const ir::BasicBlock &BB : Fn.Blocks) {
      CT.BlockBase.push_back(CT.Costs.size());
      for (const ir::IRInst &I : BB.Insts) {
        uint32_t Cost = Config.Costs.costOf(I);
        if (Optimized)
          Cost = Cost * Config.OptimizedCostPct / 100;
        CT.Costs.push_back(Cost);
      }
    }
  }
}

ExecutionEngine::~ExecutionEngine() = default;

std::string serializeStats(const RunStats &S) {
  std::string Out = formatString(
      "ok:%d err:%s cyc:%llu ins:%llu ent:%llu yp:%llu sw:%llu chk:%llu "
      "smp:%llu gpe:%llu gpt:%llu pb:%llu bur:%llu tmr:%llu thr:%llu "
      "res:%lld trace:",
      S.Ok ? 1 : 0, S.Error.c_str(),
      static_cast<unsigned long long>(S.Cycles),
      static_cast<unsigned long long>(S.Instructions),
      static_cast<unsigned long long>(S.Entries),
      static_cast<unsigned long long>(S.YieldpointExecs),
      static_cast<unsigned long long>(S.ThreadSwitches),
      static_cast<unsigned long long>(S.CheckExecs),
      static_cast<unsigned long long>(S.SamplesTaken),
      static_cast<unsigned long long>(S.GuardedProbeExecs),
      static_cast<unsigned long long>(S.GuardedProbesTaken),
      static_cast<unsigned long long>(S.ProbeBodiesRun),
      static_cast<unsigned long long>(S.BurstIterations),
      static_cast<unsigned long long>(S.TimerFires),
      static_cast<unsigned long long>(S.ThreadsSpawned),
      static_cast<long long>(S.MainResult));
  for (int64_t V : S.Trace)
    Out += formatString("%lld,", static_cast<long long>(V));
  return Out;
}

bool ExecutionEngine::fail(const std::string &Message) {
  if (Stats.Ok) {
    Stats.Ok = false;
    Stats.Error = Message;
  }
  return false;
}

int64_t ExecutionEngine::nextResetValue() {
  return nextResetValue(Config.SampleInterval);
}

int64_t ExecutionEngine::nextResetValue(int64_t Interval) {
  if (Config.RandomJitterPct == 0)
    return Interval;
  int64_t Spread = Interval * static_cast<int64_t>(Config.RandomJitterPct) /
                   100;
  if (Spread <= 0)
    return Interval;
  int64_t Value = Rng.nextInRange(Interval - Spread, Interval + Spread);
  return Value < 1 ? 1 : Value;
}

bool ExecutionEngine::sampleConditionFires(Thread &T, int FuncId,
                                           int64_t Weight) {
  if (Config.Trigger == TriggerKind::Timer) {
    if (!SampleBit)
      return false;
    SampleBit = false;
    return true;
  }
  if (!PolicyCounters.empty() && FuncId >= 0 &&
      static_cast<size_t>(FuncId) < PolicyCounters.size()) {
    // Closed-loop policy: one countdown per method, at the table's
    // effective interval.  A retired method (effective interval 0)
    // never fires — the duplicated body is unreachable from here on,
    // i.e. checking-only semantics without a restart.  An interval
    // change takes effect at the next re-arm; the in-flight countdown
    // finishes at its old pace.
    int64_t Interval =
        Config.Policy->effectiveInterval(FuncId, Config.SampleInterval);
    if (Interval <= 0)
      return false;
    int64_t &Counter = PolicyCounters[static_cast<size_t>(FuncId)];
    if (Counter <= 0)
      Counter = Interval; // first arm, jitter-free like GlobalCounter's
    Counter -= Weight;
    if (Counter > 0)
      return false;
    Counter = nextResetValue(Interval);
    return true;
  }
  if (Config.SampleInterval <= 0)
    return false;
  int64_t &Counter = Config.PerThreadCounters ? T.Counter : GlobalCounter;
  Counter -= Weight;
  if (Counter > 0)
    return false;
  Counter = nextResetValue();
  return true;
}

void ExecutionEngine::runProbeBody(const instr::ProbeEntry &P, Thread &T,
                                   uint64_t Count) {
  Stats.ProbeBodiesRun += Count;
  switch (P.Kind) {
  case instr::ProbeKind::CallEdge: {
    const Frame &Fr = T.Frames.back();
    ProbeMemo &Mm = ProbeMemos[static_cast<size_t>(P.Id)];
    // The callee half of the key is the function the probe is planted
    // in, fixed per probe id; the memo revalidates the frame half.
    if (!Mm.Slot || Mm.Caller != Fr.CallerFuncId || Mm.Site != Fr.CallSite) {
      profile::CallEdgeKey Key;
      Key.Caller = Fr.CallerFuncId;
      Key.Site = Fr.CallSite;
      Key.Callee = Fr.Func->FuncId;
      Mm.Slot = Profiles.CallEdges.slot(Key);
      Mm.Caller = Fr.CallerFuncId;
      Mm.Site = Fr.CallSite;
    }
    Profiles.CallEdges.addAt(Mm.Slot, Count);
    return;
  }
  case instr::ProbeKind::FieldAccess:
    Profiles.FieldAccesses.record(P.Payload, Count);
    return;
  case instr::ProbeKind::BlockCount: {
    ProbeMemo &Mm = ProbeMemos[static_cast<size_t>(P.Id)];
    if (!Mm.Slot)
      Mm.Slot = Profiles.BlockCounts.slot(P.FuncId, P.Payload);
    Profiles.BlockCounts.addAt(Mm.Slot, Count);
    return;
  }
  case instr::ProbeKind::Value: {
    const Frame &Fr = T.Frames.back();
    Profiles.Values.record(P.SiteId, T.Regs[Fr.RegBase + P.ValueReg].I,
                           Count);
    return;
  }
  case instr::ProbeKind::EdgeCount: {
    ProbeMemo &Mm = ProbeMemos[static_cast<size_t>(P.Id)];
    if (!Mm.Slot)
      Mm.Slot = Profiles.Edges.slot(P.FuncId, P.Payload, P.Payload2);
    Profiles.Edges.addAt(Mm.Slot, Count);
    return;
  }
  case instr::ProbeKind::PathReset:
    T.Frames.back().PathSum = 0;
    return;
  case instr::ProbeKind::PathAdd:
    T.Frames.back().PathSum +=
        static_cast<int64_t>(P.Payload) * static_cast<int64_t>(Count);
    return;
  case instr::ProbeKind::PathEnd: {
    Frame &Fr = T.Frames.back();
    Profiles.Paths.record(P.FuncId, Fr.PathSum, Count);
    Fr.PathSum = 0;
    return;
  }
  }
}

bool ExecutionEngine::pushFrame(Thread &T, int FuncId,
                                const ir::IRInst *CallInst,
                                int CallerFuncId) {
  if (FuncId < 0 || FuncId >= static_cast<int>(Funcs.size()))
    return fail(formatString("call to bad function id %d", FuncId));
  if (T.Frames.size() >= Config.MaxCallDepth)
    return fail("call stack overflow");
  const ir::IRFunction &Callee = Funcs[FuncId];

  Frame Fr;
  Fr.Func = &Callee;
  Fr.Block = Callee.Entry;
  Fr.Pc = 0;
  Fr.RegBase = T.Regs.size();
  Fr.CallerFuncId = CallerFuncId;
  Fr.CallSite = CallInst ? CallInst->Aux : -1;
  Fr.Optimized =
      static_cast<size_t>(FuncId) < Config.OptimizedFuncs.size() &&
      Config.OptimizedFuncs[static_cast<size_t>(FuncId)];
  T.Regs.resize(T.Regs.size() + static_cast<size_t>(Callee.NumRegs));

  if (CallInst) {
    // Copy argument cells from the caller frame (which is still
    // T.Frames.back() at this point).
    const Frame &Caller = T.Frames.back();
    assert(static_cast<int>(CallInst->Args.size()) == Callee.NumParams &&
           "argument count mismatch survived the verifier");
    for (size_t A = 0; A != CallInst->Args.size(); ++A)
      T.Regs[Fr.RegBase + A] = T.Regs[Caller.RegBase + CallInst->Args[A]];
  }
  T.Frames.push_back(Fr);
  ++Stats.Entries;
  return true;
}

bool ExecutionEngine::stepThread(Thread &T) {
#if ARS_THREADED_DISPATCH_AVAILABLE
  if (UseThreaded)
    return stepThreadThreaded(T);
#endif
  return stepThreadSwitch(T);
}

// The portable reference loop.  Kept deliberately simple (re-derives the
// frame on every instruction); the threaded loop below must stay
// semantically bit-identical to it, which tests/test_dispatch.cpp pins
// across the workload matrix.
bool ExecutionEngine::stepThreadSwitch(Thread &T) {
  const CostModel &Costs = Config.Costs;
  bool MultiThreaded = Threads.size() > 1;

  while (true) {
    if (T.Frames.empty()) {
      T.Done = true;
      return true;
    }
    Frame &Fr = T.Frames.back();
    const ir::BasicBlock &BB = Fr.Func->Blocks[Fr.Block];
    assert(Fr.Pc < static_cast<int>(BB.Insts.size()) && "pc ran off block");
    const IRInst &I = BB.Insts[Fr.Pc];
    Cell *R = T.Regs.data() + Fr.RegBase;

    ++Stats.Instructions;
    uint32_t Cost = Costs.costOf(I);
    if (Fr.Optimized)
      Cost = Cost * Config.OptimizedCostPct / 100;
    Stats.Cycles += Cost;
    if (Stats.Cycles > Config.MaxCycles)
      return fail("cycle budget exhausted (runaway program?)");
    if (Config.Trigger == TriggerKind::Timer &&
        Stats.Cycles >= NextTimerFire) {
      SampleBit = true;
      // A long-latency instruction can straddle several periods; count
      // each elapsed period as a fire (the bit itself stays one bit, as
      // in hardware).
      do {
        ++Stats.TimerFires;
        NextTimerFire += Config.TimerPeriodCycles;
      } while (Stats.Cycles >= NextTimerFire);
    }

    switch (I.Op) {
    case IROp::Nop:
      break;
    case IROp::MovImm:
      R[I.Dst].I = I.Imm;
      break;
    case IROp::MovFImm:
      R[I.Dst].F = I.FImm;
      break;
    case IROp::Mov:
      R[I.Dst] = R[I.A];
      break;
    case IROp::Add:
      R[I.Dst].I = R[I.A].I + R[I.B].I;
      break;
    case IROp::Sub:
      R[I.Dst].I = R[I.A].I - R[I.B].I;
      break;
    case IROp::Mul:
      R[I.Dst].I = R[I.A].I * R[I.B].I;
      break;
    case IROp::Div:
      if (R[I.B].I == 0)
        return fail(formatString("division by zero in %s",
                                 Fr.Func->Name.c_str()));
      R[I.Dst].I = R[I.A].I / R[I.B].I;
      break;
    case IROp::Rem:
      if (R[I.B].I == 0)
        return fail(formatString("remainder by zero in %s",
                                 Fr.Func->Name.c_str()));
      R[I.Dst].I = R[I.A].I % R[I.B].I;
      break;
    case IROp::Neg:
      R[I.Dst].I = -R[I.A].I;
      break;
    case IROp::And:
      R[I.Dst].I = R[I.A].I & R[I.B].I;
      break;
    case IROp::Or:
      R[I.Dst].I = R[I.A].I | R[I.B].I;
      break;
    case IROp::Xor:
      R[I.Dst].I = R[I.A].I ^ R[I.B].I;
      break;
    case IROp::Shl:
      R[I.Dst].I = R[I.A].I << (R[I.B].I & 63);
      break;
    case IROp::Shr:
      R[I.Dst].I = R[I.A].I >> (R[I.B].I & 63);
      break;
    case IROp::FAdd:
      R[I.Dst].F = R[I.A].F + R[I.B].F;
      break;
    case IROp::FSub:
      R[I.Dst].F = R[I.A].F - R[I.B].F;
      break;
    case IROp::FMul:
      R[I.Dst].F = R[I.A].F * R[I.B].F;
      break;
    case IROp::FDiv:
      R[I.Dst].F = R[I.A].F / R[I.B].F;
      break;
    case IROp::FNeg:
      R[I.Dst].F = -R[I.A].F;
      break;
    case IROp::F2I:
      R[I.Dst].I = static_cast<int64_t>(R[I.A].F);
      break;
    case IROp::I2F:
      R[I.Dst].F = static_cast<double>(R[I.A].I);
      break;
    case IROp::CmpEq:
      R[I.Dst].I = R[I.A].I == R[I.B].I;
      break;
    case IROp::CmpNe:
      R[I.Dst].I = R[I.A].I != R[I.B].I;
      break;
    case IROp::CmpLt:
      R[I.Dst].I = R[I.A].I < R[I.B].I;
      break;
    case IROp::CmpLe:
      R[I.Dst].I = R[I.A].I <= R[I.B].I;
      break;
    case IROp::CmpGt:
      R[I.Dst].I = R[I.A].I > R[I.B].I;
      break;
    case IROp::CmpGe:
      R[I.Dst].I = R[I.A].I >= R[I.B].I;
      break;
    case IROp::FCmpLt:
      R[I.Dst].I = R[I.A].F < R[I.B].F;
      break;
    case IROp::FCmpLe:
      R[I.Dst].I = R[I.A].F <= R[I.B].F;
      break;
    case IROp::FCmpEq:
      R[I.Dst].I = R[I.A].F == R[I.B].F;
      break;

    case IROp::New: {
      int ClassId = static_cast<int>(I.Imm);
      int NumFields =
          static_cast<int>(M.classAt(ClassId).Fields.size());
      int64_t Ref = TheHeap.allocObject(ClassId, NumFields);
      if (!Ref)
        return fail("heap exhausted");
      R[I.Dst].I = Ref;
      break;
    }
    case IROp::GetField: {
      int64_t Ref = R[I.A].I;
      if (!TheHeap.valid(Ref))
        return fail(formatString("null or bad reference in %s",
                                 Fr.Func->Name.c_str()));
      int Offset = FieldOffset[static_cast<size_t>(I.Imm)];
      R[I.Dst] = TheHeap.cell(Ref, Offset);
      break;
    }
    case IROp::PutField: {
      int64_t Ref = R[I.A].I;
      if (!TheHeap.valid(Ref))
        return fail(formatString("null or bad reference in %s",
                                 Fr.Func->Name.c_str()));
      int Offset = FieldOffset[static_cast<size_t>(I.Imm)];
      TheHeap.cell(Ref, Offset) = R[I.B];
      break;
    }
    case IROp::GetGlobal:
      R[I.Dst] = Globals[static_cast<size_t>(I.Imm)];
      break;
    case IROp::PutGlobal:
      Globals[static_cast<size_t>(I.Imm)] = R[I.A];
      break;
    case IROp::NewArray: {
      int64_t Ref = TheHeap.allocArray(R[I.A].I);
      if (!Ref)
        return fail("heap exhausted or negative array length");
      R[I.Dst].I = Ref;
      break;
    }
    case IROp::ALoad: {
      int64_t Ref = R[I.A].I;
      int64_t Idx = R[I.B].I;
      if (!TheHeap.valid(Ref) || Idx < 0 || Idx >= TheHeap.length(Ref))
        return fail(formatString("array access out of bounds in %s",
                                 Fr.Func->Name.c_str()));
      R[I.Dst] = TheHeap.cell(Ref, Idx);
      break;
    }
    case IROp::AStore: {
      int64_t Ref = R[I.A].I;
      int64_t Idx = R[I.B].I;
      if (!TheHeap.valid(Ref) || Idx < 0 || Idx >= TheHeap.length(Ref))
        return fail(formatString("array access out of bounds in %s",
                                 Fr.Func->Name.c_str()));
      TheHeap.cell(Ref, Idx) = R[I.C];
      break;
    }
    case IROp::ALen: {
      int64_t Ref = R[I.A].I;
      if (!TheHeap.valid(Ref))
        return fail("null or bad reference");
      R[I.Dst].I = TheHeap.length(Ref);
      break;
    }
    case IROp::IOWait:
      break; // the cost model already charged Imm cycles
    case IROp::Print:
      if (Stats.Trace.size() < Config.MaxTraceEntries)
        Stats.Trace.push_back(R[I.A].I);
      break;

    case IROp::Call: {
      int64_t RetSlot =
          I.Dst >= 0 ? static_cast<int64_t>(Fr.RegBase) + I.Dst : -1;
      ++Fr.Pc; // resume after the call on return
      if (!pushFrame(T, static_cast<int>(I.Imm), &I, Fr.Func->FuncId))
        return false;
      T.Frames.back().RetSlot = RetSlot;
      continue; // Fr is invalidated; restart dispatch
    }
    case IROp::Spawn: {
      Thread NewThread;
      NewThread.Counter = Config.SampleInterval > 0 ? nextResetValue() : 0;
      // Build the spawned frame manually so argument cells come from the
      // spawning thread's registers.
      const ir::IRFunction &Callee = Funcs[static_cast<int>(I.Imm)];
      if (static_cast<int>(I.Args.size()) != Callee.NumParams)
        return fail("spawn argument count mismatch");
      Frame SF;
      SF.Func = &Callee;
      SF.Block = Callee.Entry;
      SF.Pc = 0;
      SF.RegBase = 0;
      SF.CallerFuncId = Fr.Func->FuncId;
      SF.CallSite = I.Aux;
      SF.Optimized =
          static_cast<size_t>(I.Imm) < Config.OptimizedFuncs.size() &&
          Config.OptimizedFuncs[static_cast<size_t>(I.Imm)];
      NewThread.Regs.resize(static_cast<size_t>(Callee.NumRegs));
      for (size_t A = 0; A != I.Args.size(); ++A)
        NewThread.Regs[A] = R[I.Args[A]];
      NewThread.Frames.push_back(SF);
      Threads.push_back(std::move(NewThread));
      ++Stats.ThreadsSpawned;
      ++Stats.Entries;
      MultiThreaded = true;
      break;
    }
    case IROp::Ret:
    case IROp::RetVal: {
      Cell Result;
      if (I.Op == IROp::RetVal)
        Result = R[I.A];
      int64_t RetSlot = Fr.RetSlot;
      size_t RegBase = Fr.RegBase;
      T.Frames.pop_back();
      T.Regs.resize(RegBase);
      if (T.Frames.empty()) {
        if (I.Op == IROp::RetVal && &T == &Threads[0])
          Stats.MainResult = Result.I;
        T.Done = true;
        return true;
      }
      if (I.Op == IROp::RetVal && RetSlot >= 0)
        T.Regs[static_cast<size_t>(RetSlot)] = Result;
      continue;
    }

    case IROp::Jump:
      Fr.Block = static_cast<int>(I.Imm);
      Fr.Pc = 0;
      continue;
    case IROp::Branch:
      Fr.Block = R[I.A].I != 0 ? static_cast<int>(I.Imm) : I.Aux;
      Fr.Pc = 0;
      continue;

    case IROp::Yieldpoint:
      ++Stats.YieldpointExecs;
      if (MultiThreaded &&
          Stats.Cycles - LastSwitchCycles >= Config.YieldQuantumCycles) {
        ++Fr.Pc;
        return true; // scheduler rotates threads
      }
      break;

    case IROp::SampleCheck: {
      ++Stats.CheckExecs;
      bool Fires = sampleConditionFires(T, Fr.Func->FuncId);
      if (Fires) {
        ++Stats.SamplesTaken;
        Stats.Cycles += Costs.CheckTakenExtra;
        if (Config.BurstLength > 0)
          T.BurstRemaining = Config.BurstLength;
        Fr.Block = static_cast<int>(I.Imm);
      } else {
        Fr.Block = I.Aux;
      }
      Fr.Pc = 0;
      // The check subsumes the yield test (always safe; required when the
      // yieldpoint optimization removed checking-code yieldpoints).
      if (MultiThreaded &&
          Stats.Cycles - LastSwitchCycles >= Config.YieldQuantumCycles)
        return true;
      continue;
    }
    case IROp::Probe: {
      const instr::ProbeEntry &P = Probes.entry(static_cast<int>(I.Imm));
      Stats.Cycles += P.CostCycles;
      // Aux > 1 = hoist multiplicity (sampling/Coalesce.h): one body
      // execution records the whole loop's events.
      runProbeBody(P, T, I.Aux > 1 ? static_cast<uint64_t>(I.Aux) : 1);
      break;
    }
    case IROp::GuardedProbe: {
      ++Stats.GuardedProbeExecs;
      // Aux > 1 = coalesced check weight; the one check stands in for
      // Weight original checks and, when it fires, every guarded body
      // records Weight / #bodies events.
      uint64_t Weight = I.Aux > 1 ? static_cast<uint64_t>(I.Aux) : 1;
      if (sampleConditionFires(T, Fr.Func->FuncId,
                               static_cast<int64_t>(Weight))) {
        ++Stats.GuardedProbesTaken;
        uint64_t Mult = Weight / (1 + I.Args.size());
        const instr::ProbeEntry &P = Probes.entry(static_cast<int>(I.Imm));
        Stats.Cycles += P.CostCycles;
        runProbeBody(P, T, Mult);
        for (int Extra : I.Args) {
          const instr::ProbeEntry &PE = Probes.entry(Extra);
          Stats.Cycles += PE.CostCycles;
          runProbeBody(PE, T, Mult);
        }
      }
      break;
    }
    case IROp::BurstTransfer:
      ++Stats.BurstIterations;
      Fr.Block = --T.BurstRemaining > 0 ? static_cast<int>(I.Imm) : I.Aux;
      Fr.Pc = 0;
      continue;
    }

    ++Fr.Pc;
  }
}

#if ARS_THREADED_DISPATCH_AVAILABLE

// The computed-goto loop.  Three things make it fast relative to the
// switch loop, none of which may change semantics:
//
//  * direct-threaded dispatch with the indirect branch replicated into
//    every handler (one BTB entry per opcode pair instead of one shared
//    dispatch site);
//  * the frame, block, instruction and register-window pointers live in
//    locals and are only re-derived at the three events that can
//    invalidate them (frame push/pop: ARS_REFRESH; intra-frame control
//    transfer: ARS_BLOCK; everything else falls through ARS_NEXT);
//  * per-instruction cost is one load from the constructor-built
//    InstCosts row (costOf + the optimized scale are baked in).
//
// Any mutation of T.Frames or T.Regs storage (Call, Ret, RetVal) must go
// through ARS_REFRESH; Spawn only appends to the Threads deque, which
// never moves existing threads, so its cached pointers stay valid.
bool ExecutionEngine::stepThreadThreaded(Thread &T) {
  const CostModel &Costs = Config.Costs;
  const bool TimerMode = Config.Trigger == TriggerKind::Timer;
  const uint64_t MaxCyc = Config.MaxCycles;
  const uint64_t TimerPeriod = Config.TimerPeriodCycles;
  const uint64_t YieldQuantum = Config.YieldQuantumCycles;
  bool MultiThreaded = Threads.size() > 1;

  // Indexed by IROp, in enum order; non-static so no init guard runs per
  // dispatch (stepThread itself is called once per scheduler slice).
  const void *const JumpTable[] = {
      &&L_Nop,      &&L_MovImm,   &&L_MovFImm, &&L_Mov,     &&L_Add,
      &&L_Sub,      &&L_Mul,      &&L_Div,     &&L_Rem,     &&L_Neg,
      &&L_And,      &&L_Or,       &&L_Xor,     &&L_Shl,     &&L_Shr,
      &&L_FAdd,     &&L_FSub,     &&L_FMul,    &&L_FDiv,    &&L_FNeg,
      &&L_F2I,      &&L_I2F,      &&L_CmpEq,   &&L_CmpNe,   &&L_CmpLt,
      &&L_CmpLe,    &&L_CmpGt,    &&L_CmpGe,   &&L_FCmpLt,  &&L_FCmpLe,
      &&L_FCmpEq,   &&L_Call,     &&L_Spawn,   &&L_New,     &&L_GetField,
      &&L_PutField, &&L_GetGlobal, &&L_PutGlobal, &&L_NewArray,
      &&L_ALoad,    &&L_AStore,   &&L_ALen,    &&L_IOWait,  &&L_Print,
      &&L_Jump,     &&L_Branch,   &&L_Ret,     &&L_RetVal,
      &&L_Yieldpoint, &&L_SampleCheck, &&L_Probe, &&L_GuardedProbe,
      &&L_BurstTransfer};
  static_assert(sizeof(JumpTable) / sizeof(JumpTable[0]) == ir::NumIROps,
                "jump table out of sync with IROp");

  Frame *FrP;
  const ir::BasicBlock *BBP;
  const IRInst *IP;
  Cell *R;
  const uint32_t *CostRow;

// Per-instruction prologue: identical, statement for statement, to the
// head of the switch loop (cost charge, budget rail, timer bit).
#define ARS_PROLOGUE()                                                       \
  do {                                                                       \
    ++Stats.Instructions;                                                    \
    Stats.Cycles += CostRow[FrP->Pc];                                        \
    if (Stats.Cycles > MaxCyc)                                               \
      return fail("cycle budget exhausted (runaway program?)");              \
    if (TimerMode && Stats.Cycles >= NextTimerFire) {                        \
      SampleBit = true;                                                      \
      do {                                                                   \
        ++Stats.TimerFires;                                                  \
        NextTimerFire += TimerPeriod;                                        \
      } while (Stats.Cycles >= NextTimerFire);                               \
    }                                                                        \
  } while (0)

// Fall through to the next instruction of the current block (replicated
// dispatch: prologue + indirect branch inlined into every handler).
#define ARS_NEXT                                                             \
  do {                                                                       \
    ++FrP->Pc;                                                               \
    ++IP;                                                                    \
    ARS_PROLOGUE();                                                          \
    goto *JumpTable[static_cast<unsigned>(IP->Op)];                          \
  } while (0)

// Re-enter after an intra-frame control transfer (FrP/R still valid).
#define ARS_BLOCK goto ArsBlock

// Re-enter after a frame push/pop (everything re-derived).
#define ARS_REFRESH goto ArsRefresh

ArsRefresh:
  if (T.Frames.empty()) {
    T.Done = true;
    return true;
  }
  FrP = &T.Frames.back();
  R = T.Regs.data() + FrP->RegBase;

ArsBlock : {
  const FuncCostTable &CT =
      InstCosts[static_cast<size_t>(FrP->Func->FuncId)];
  BBP = &FrP->Func->Blocks[FrP->Block];
  CostRow = CT.Costs.data() + CT.BlockBase[static_cast<size_t>(FrP->Block)];
}
  assert(FrP->Pc < static_cast<int>(BBP->Insts.size()) && "pc ran off block");
  IP = BBP->Insts.data() + FrP->Pc;
  ARS_PROLOGUE();
  goto *JumpTable[static_cast<unsigned>(IP->Op)];

L_Nop:
  ARS_NEXT;
L_MovImm:
  R[IP->Dst].I = IP->Imm;
  ARS_NEXT;
L_MovFImm:
  R[IP->Dst].F = IP->FImm;
  ARS_NEXT;
L_Mov:
  R[IP->Dst] = R[IP->A];
  ARS_NEXT;
L_Add:
  R[IP->Dst].I = R[IP->A].I + R[IP->B].I;
  ARS_NEXT;
L_Sub:
  R[IP->Dst].I = R[IP->A].I - R[IP->B].I;
  ARS_NEXT;
L_Mul:
  R[IP->Dst].I = R[IP->A].I * R[IP->B].I;
  ARS_NEXT;
L_Div:
  if (R[IP->B].I == 0)
    return fail(formatString("division by zero in %s",
                             FrP->Func->Name.c_str()));
  R[IP->Dst].I = R[IP->A].I / R[IP->B].I;
  ARS_NEXT;
L_Rem:
  if (R[IP->B].I == 0)
    return fail(formatString("remainder by zero in %s",
                             FrP->Func->Name.c_str()));
  R[IP->Dst].I = R[IP->A].I % R[IP->B].I;
  ARS_NEXT;
L_Neg:
  R[IP->Dst].I = -R[IP->A].I;
  ARS_NEXT;
L_And:
  R[IP->Dst].I = R[IP->A].I & R[IP->B].I;
  ARS_NEXT;
L_Or:
  R[IP->Dst].I = R[IP->A].I | R[IP->B].I;
  ARS_NEXT;
L_Xor:
  R[IP->Dst].I = R[IP->A].I ^ R[IP->B].I;
  ARS_NEXT;
L_Shl:
  R[IP->Dst].I = R[IP->A].I << (R[IP->B].I & 63);
  ARS_NEXT;
L_Shr:
  R[IP->Dst].I = R[IP->A].I >> (R[IP->B].I & 63);
  ARS_NEXT;
L_FAdd:
  R[IP->Dst].F = R[IP->A].F + R[IP->B].F;
  ARS_NEXT;
L_FSub:
  R[IP->Dst].F = R[IP->A].F - R[IP->B].F;
  ARS_NEXT;
L_FMul:
  R[IP->Dst].F = R[IP->A].F * R[IP->B].F;
  ARS_NEXT;
L_FDiv:
  R[IP->Dst].F = R[IP->A].F / R[IP->B].F;
  ARS_NEXT;
L_FNeg:
  R[IP->Dst].F = -R[IP->A].F;
  ARS_NEXT;
L_F2I:
  R[IP->Dst].I = static_cast<int64_t>(R[IP->A].F);
  ARS_NEXT;
L_I2F:
  R[IP->Dst].F = static_cast<double>(R[IP->A].I);
  ARS_NEXT;
L_CmpEq:
  R[IP->Dst].I = R[IP->A].I == R[IP->B].I;
  ARS_NEXT;
L_CmpNe:
  R[IP->Dst].I = R[IP->A].I != R[IP->B].I;
  ARS_NEXT;
L_CmpLt:
  R[IP->Dst].I = R[IP->A].I < R[IP->B].I;
  ARS_NEXT;
L_CmpLe:
  R[IP->Dst].I = R[IP->A].I <= R[IP->B].I;
  ARS_NEXT;
L_CmpGt:
  R[IP->Dst].I = R[IP->A].I > R[IP->B].I;
  ARS_NEXT;
L_CmpGe:
  R[IP->Dst].I = R[IP->A].I >= R[IP->B].I;
  ARS_NEXT;
L_FCmpLt:
  R[IP->Dst].I = R[IP->A].F < R[IP->B].F;
  ARS_NEXT;
L_FCmpLe:
  R[IP->Dst].I = R[IP->A].F <= R[IP->B].F;
  ARS_NEXT;
L_FCmpEq:
  R[IP->Dst].I = R[IP->A].F == R[IP->B].F;
  ARS_NEXT;

L_New: {
  int ClassId = static_cast<int>(IP->Imm);
  int NumFields = static_cast<int>(M.classAt(ClassId).Fields.size());
  int64_t Ref = TheHeap.allocObject(ClassId, NumFields);
  if (!Ref)
    return fail("heap exhausted");
  R[IP->Dst].I = Ref;
  ARS_NEXT;
}
L_GetField: {
  int64_t Ref = R[IP->A].I;
  if (!TheHeap.valid(Ref))
    return fail(formatString("null or bad reference in %s",
                             FrP->Func->Name.c_str()));
  int Offset = FieldOffset[static_cast<size_t>(IP->Imm)];
  R[IP->Dst] = TheHeap.cell(Ref, Offset);
  ARS_NEXT;
}
L_PutField: {
  int64_t Ref = R[IP->A].I;
  if (!TheHeap.valid(Ref))
    return fail(formatString("null or bad reference in %s",
                             FrP->Func->Name.c_str()));
  int Offset = FieldOffset[static_cast<size_t>(IP->Imm)];
  TheHeap.cell(Ref, Offset) = R[IP->B];
  ARS_NEXT;
}
L_GetGlobal:
  R[IP->Dst] = Globals[static_cast<size_t>(IP->Imm)];
  ARS_NEXT;
L_PutGlobal:
  Globals[static_cast<size_t>(IP->Imm)] = R[IP->A];
  ARS_NEXT;
L_NewArray: {
  int64_t Ref = TheHeap.allocArray(R[IP->A].I);
  if (!Ref)
    return fail("heap exhausted or negative array length");
  R[IP->Dst].I = Ref;
  ARS_NEXT;
}
L_ALoad: {
  int64_t Ref = R[IP->A].I;
  int64_t Idx = R[IP->B].I;
  if (!TheHeap.valid(Ref) || Idx < 0 || Idx >= TheHeap.length(Ref))
    return fail(formatString("array access out of bounds in %s",
                             FrP->Func->Name.c_str()));
  R[IP->Dst] = TheHeap.cell(Ref, Idx);
  ARS_NEXT;
}
L_AStore: {
  int64_t Ref = R[IP->A].I;
  int64_t Idx = R[IP->B].I;
  if (!TheHeap.valid(Ref) || Idx < 0 || Idx >= TheHeap.length(Ref))
    return fail(formatString("array access out of bounds in %s",
                             FrP->Func->Name.c_str()));
  TheHeap.cell(Ref, Idx) = R[IP->C];
  ARS_NEXT;
}
L_ALen: {
  int64_t Ref = R[IP->A].I;
  if (!TheHeap.valid(Ref))
    return fail("null or bad reference");
  R[IP->Dst].I = TheHeap.length(Ref);
  ARS_NEXT;
}
L_IOWait:
  ARS_NEXT; // the cost model already charged Imm cycles
L_Print:
  if (Stats.Trace.size() < Config.MaxTraceEntries)
    Stats.Trace.push_back(R[IP->A].I);
  ARS_NEXT;

L_Call: {
  int64_t RetSlot =
      IP->Dst >= 0 ? static_cast<int64_t>(FrP->RegBase) + IP->Dst : -1;
  ++FrP->Pc; // resume after the call on return
  if (!pushFrame(T, static_cast<int>(IP->Imm), IP, FrP->Func->FuncId))
    return false;
  T.Frames.back().RetSlot = RetSlot;
  ARS_REFRESH; // frame and register storage moved
}
L_Spawn: {
  Thread NewThread;
  NewThread.Counter = Config.SampleInterval > 0 ? nextResetValue() : 0;
  // Build the spawned frame manually so argument cells come from the
  // spawning thread's registers.
  const ir::IRFunction &Callee = Funcs[static_cast<int>(IP->Imm)];
  if (static_cast<int>(IP->Args.size()) != Callee.NumParams)
    return fail("spawn argument count mismatch");
  Frame SF;
  SF.Func = &Callee;
  SF.Block = Callee.Entry;
  SF.Pc = 0;
  SF.RegBase = 0;
  SF.CallerFuncId = FrP->Func->FuncId;
  SF.CallSite = IP->Aux;
  SF.Optimized =
      static_cast<size_t>(IP->Imm) < Config.OptimizedFuncs.size() &&
      Config.OptimizedFuncs[static_cast<size_t>(IP->Imm)];
  NewThread.Regs.resize(static_cast<size_t>(Callee.NumRegs));
  for (size_t A = 0; A != IP->Args.size(); ++A)
    NewThread.Regs[A] = R[IP->Args[A]];
  NewThread.Frames.push_back(SF);
  Threads.push_back(std::move(NewThread)); // deque: T's storage is stable
  ++Stats.ThreadsSpawned;
  ++Stats.Entries;
  MultiThreaded = true;
  ARS_NEXT;
}
L_Ret:
L_RetVal: {
  Cell Result;
  if (IP->Op == IROp::RetVal)
    Result = R[IP->A];
  int64_t RetSlot = FrP->RetSlot;
  size_t RegBase = FrP->RegBase;
  T.Frames.pop_back();
  T.Regs.resize(RegBase);
  if (T.Frames.empty()) {
    if (IP->Op == IROp::RetVal && &T == &Threads[0])
      Stats.MainResult = Result.I;
    T.Done = true;
    return true;
  }
  if (IP->Op == IROp::RetVal && RetSlot >= 0)
    T.Regs[static_cast<size_t>(RetSlot)] = Result;
  ARS_REFRESH;
}

L_Jump:
  FrP->Block = static_cast<int>(IP->Imm);
  FrP->Pc = 0;
  ARS_BLOCK;
L_Branch:
  FrP->Block = R[IP->A].I != 0 ? static_cast<int>(IP->Imm) : IP->Aux;
  FrP->Pc = 0;
  ARS_BLOCK;

L_Yieldpoint:
  ++Stats.YieldpointExecs;
  if (MultiThreaded && Stats.Cycles - LastSwitchCycles >= YieldQuantum) {
    ++FrP->Pc;
    return true; // scheduler rotates threads
  }
  ARS_NEXT;

L_SampleCheck: {
  ++Stats.CheckExecs;
  bool Fires = sampleConditionFires(T, FrP->Func->FuncId);
  if (Fires) {
    ++Stats.SamplesTaken;
    Stats.Cycles += Costs.CheckTakenExtra;
    if (Config.BurstLength > 0)
      T.BurstRemaining = Config.BurstLength;
    FrP->Block = static_cast<int>(IP->Imm);
  } else {
    FrP->Block = IP->Aux;
  }
  FrP->Pc = 0;
  // The check subsumes the yield test (always safe; required when the
  // yieldpoint optimization removed checking-code yieldpoints).
  if (MultiThreaded && Stats.Cycles - LastSwitchCycles >= YieldQuantum)
    return true;
  ARS_BLOCK;
}
L_Probe: {
  const instr::ProbeEntry &P = Probes.entry(static_cast<int>(IP->Imm));
  Stats.Cycles += P.CostCycles;
  runProbeBody(P, T, IP->Aux > 1 ? static_cast<uint64_t>(IP->Aux) : 1);
  ARS_NEXT;
}
L_GuardedProbe: {
  ++Stats.GuardedProbeExecs;
  uint64_t Weight = IP->Aux > 1 ? static_cast<uint64_t>(IP->Aux) : 1;
  if (sampleConditionFires(T, FrP->Func->FuncId,
                           static_cast<int64_t>(Weight))) {
    ++Stats.GuardedProbesTaken;
    uint64_t Mult = Weight / (1 + IP->Args.size());
    const instr::ProbeEntry &P = Probes.entry(static_cast<int>(IP->Imm));
    Stats.Cycles += P.CostCycles;
    runProbeBody(P, T, Mult);
    for (int Extra : IP->Args) {
      const instr::ProbeEntry &PE = Probes.entry(Extra);
      Stats.Cycles += PE.CostCycles;
      runProbeBody(PE, T, Mult);
    }
  }
  ARS_NEXT;
}
L_BurstTransfer:
  ++Stats.BurstIterations;
  FrP->Block = --T.BurstRemaining > 0 ? static_cast<int>(IP->Imm) : IP->Aux;
  FrP->Pc = 0;
  ARS_BLOCK;

#undef ARS_PROLOGUE
#undef ARS_NEXT
#undef ARS_BLOCK
#undef ARS_REFRESH
}

#endif // ARS_THREADED_DISPATCH_AVAILABLE

RunStats ExecutionEngine::run(int EntryFunc,
                              const std::vector<int64_t> &Args) {
  Stats = RunStats();
  Stats.Ok = true;
  Profiles.clear();
  Profiles.FieldAccesses.resize(M.numFieldIds());
  // Interned counter slots point into the maps just cleared.
  ProbeMemos.assign(static_cast<size_t>(Probes.size()), ProbeMemo());
  UseThreaded = threadedDispatchCompiled() &&
                Config.Dispatch != DispatchMode::Switch;
  Globals.assign(Globals.size(), Cell());
  Threads.clear();
  Rng = support::Xorshift64(Config.RandomSeed);
  GlobalCounter = Config.SampleInterval > 0 ? Config.SampleInterval : 0;
  PolicyCounters.assign(Config.Policy ? Funcs.size() : 0, 0);
  SampleBit = false;
  NextTimerFire = Config.TimerPeriodCycles;
  LastSwitchCycles = 0;
  CurThread = 0;

  if (EntryFunc < 0 || EntryFunc >= static_cast<int>(Funcs.size())) {
    fail("bad entry function");
    return Stats;
  }
  const ir::IRFunction &Main = Funcs[EntryFunc];
  if (static_cast<int>(Args.size()) != Main.NumParams) {
    fail("entry argument count mismatch");
    return Stats;
  }

  Thread MainThread;
  MainThread.Counter = Config.SampleInterval > 0 ? Config.SampleInterval : 0;
  Frame MF;
  MF.Func = &Main;
  MF.Block = Main.Entry;
  MF.Pc = 0;
  MF.RegBase = 0;
  MF.Optimized =
      static_cast<size_t>(EntryFunc) < Config.OptimizedFuncs.size() &&
      Config.OptimizedFuncs[static_cast<size_t>(EntryFunc)];
  MainThread.Regs.resize(static_cast<size_t>(Main.NumRegs));
  for (size_t A = 0; A != Args.size(); ++A)
    MainThread.Regs[A].I = Args[A];
  MainThread.Frames.push_back(MF);
  Threads.push_back(std::move(MainThread));
  ++Stats.Entries;

  while (Stats.Ok) {
    // Round-robin over live threads.
    size_t Alive = 0;
    for (const Thread &T : Threads)
      if (!T.Done)
        ++Alive;
    if (Alive == 0)
      break;
    while (Threads[CurThread].Done)
      CurThread = (CurThread + 1) % Threads.size();
    Thread &T = Threads[CurThread];
    if (!stepThread(T))
      break;
    LastSwitchCycles = Stats.Cycles;
    if (!T.Done)
      ++Stats.ThreadSwitches;
    CurThread = (CurThread + 1) % Threads.size();
  }
  return Stats;
}

} // namespace runtime
} // namespace ars
