//===- runtime/Engine.cpp -------------------------------------*- C++ -*-===//

#include "runtime/Engine.h"

#include "support/Support.h"

#include <cassert>

using ars::support::formatString;

namespace ars {
namespace runtime {

using ir::IRInst;
using ir::IROp;

ExecutionEngine::ExecutionEngine(const bytecode::Module &M,
                                 const std::vector<ir::IRFunction> &Funcs,
                                 const instr::ProbeRegistry &Probes,
                                 EngineConfig Config)
    : M(M), Funcs(Funcs), Probes(Probes), Config(Config),
      TheHeap(Config.MaxHeapCells), Rng(Config.RandomSeed) {
  // Precompute field-id -> object offset (fields are laid out in
  // declaration order within their class).
  FieldOffset.assign(static_cast<size_t>(M.numFieldIds()), -1);
  for (const bytecode::ClassDef &C : M.classes())
    for (size_t F = 0; F != C.Fields.size(); ++F)
      FieldOffset[static_cast<size_t>(C.Fields[F].FieldId)] =
          static_cast<int>(F);
  Globals.assign(static_cast<size_t>(M.numGlobals()), Cell());
  Profiles.FieldAccesses.resize(M.numFieldIds());
}

ExecutionEngine::~ExecutionEngine() = default;

std::string serializeStats(const RunStats &S) {
  std::string Out = formatString(
      "ok:%d err:%s cyc:%llu ins:%llu ent:%llu yp:%llu sw:%llu chk:%llu "
      "smp:%llu gpe:%llu gpt:%llu pb:%llu bur:%llu tmr:%llu thr:%llu "
      "res:%lld trace:",
      S.Ok ? 1 : 0, S.Error.c_str(),
      static_cast<unsigned long long>(S.Cycles),
      static_cast<unsigned long long>(S.Instructions),
      static_cast<unsigned long long>(S.Entries),
      static_cast<unsigned long long>(S.YieldpointExecs),
      static_cast<unsigned long long>(S.ThreadSwitches),
      static_cast<unsigned long long>(S.CheckExecs),
      static_cast<unsigned long long>(S.SamplesTaken),
      static_cast<unsigned long long>(S.GuardedProbeExecs),
      static_cast<unsigned long long>(S.GuardedProbesTaken),
      static_cast<unsigned long long>(S.ProbeBodiesRun),
      static_cast<unsigned long long>(S.BurstIterations),
      static_cast<unsigned long long>(S.TimerFires),
      static_cast<unsigned long long>(S.ThreadsSpawned),
      static_cast<long long>(S.MainResult));
  for (int64_t V : S.Trace)
    Out += formatString("%lld,", static_cast<long long>(V));
  return Out;
}

bool ExecutionEngine::fail(const std::string &Message) {
  if (Stats.Ok) {
    Stats.Ok = false;
    Stats.Error = Message;
  }
  return false;
}

int64_t ExecutionEngine::nextResetValue() {
  return nextResetValue(Config.SampleInterval);
}

int64_t ExecutionEngine::nextResetValue(int64_t Interval) {
  if (Config.RandomJitterPct == 0)
    return Interval;
  int64_t Spread = Interval * static_cast<int64_t>(Config.RandomJitterPct) /
                   100;
  if (Spread <= 0)
    return Interval;
  int64_t Value = Rng.nextInRange(Interval - Spread, Interval + Spread);
  return Value < 1 ? 1 : Value;
}

bool ExecutionEngine::sampleConditionFires(Thread &T, int FuncId) {
  if (Config.Trigger == TriggerKind::Timer) {
    if (!SampleBit)
      return false;
    SampleBit = false;
    return true;
  }
  if (!PolicyCounters.empty() && FuncId >= 0 &&
      static_cast<size_t>(FuncId) < PolicyCounters.size()) {
    // Closed-loop policy: one countdown per method, at the table's
    // effective interval.  A retired method (effective interval 0)
    // never fires — the duplicated body is unreachable from here on,
    // i.e. checking-only semantics without a restart.  An interval
    // change takes effect at the next re-arm; the in-flight countdown
    // finishes at its old pace.
    int64_t Interval =
        Config.Policy->effectiveInterval(FuncId, Config.SampleInterval);
    if (Interval <= 0)
      return false;
    int64_t &Counter = PolicyCounters[static_cast<size_t>(FuncId)];
    if (Counter <= 0)
      Counter = Interval; // first arm, jitter-free like GlobalCounter's
    if (--Counter > 0)
      return false;
    Counter = nextResetValue(Interval);
    return true;
  }
  if (Config.SampleInterval <= 0)
    return false;
  int64_t &Counter = Config.PerThreadCounters ? T.Counter : GlobalCounter;
  if (--Counter > 0)
    return false;
  Counter = nextResetValue();
  return true;
}

void ExecutionEngine::runProbeBody(const instr::ProbeEntry &P, Thread &T) {
  ++Stats.ProbeBodiesRun;
  switch (P.Kind) {
  case instr::ProbeKind::CallEdge: {
    const Frame &Fr = T.Frames.back();
    profile::CallEdgeKey Key;
    Key.Caller = Fr.CallerFuncId;
    Key.Site = Fr.CallSite;
    Key.Callee = Fr.Func->FuncId;
    Profiles.CallEdges.record(Key);
    return;
  }
  case instr::ProbeKind::FieldAccess:
    Profiles.FieldAccesses.record(P.Payload);
    return;
  case instr::ProbeKind::BlockCount:
    Profiles.BlockCounts.record(P.FuncId, P.Payload);
    return;
  case instr::ProbeKind::Value: {
    const Frame &Fr = T.Frames.back();
    Profiles.Values.record(P.SiteId, T.Regs[Fr.RegBase + P.ValueReg].I);
    return;
  }
  case instr::ProbeKind::EdgeCount:
    Profiles.Edges.record(P.FuncId, P.Payload, P.Payload2);
    return;
  case instr::ProbeKind::PathReset:
    T.Frames.back().PathSum = 0;
    return;
  case instr::ProbeKind::PathAdd:
    T.Frames.back().PathSum += P.Payload;
    return;
  case instr::ProbeKind::PathEnd: {
    Frame &Fr = T.Frames.back();
    Profiles.Paths.record(P.FuncId, Fr.PathSum);
    Fr.PathSum = 0;
    return;
  }
  }
}

bool ExecutionEngine::pushFrame(Thread &T, int FuncId,
                                const ir::IRInst *CallInst,
                                int CallerFuncId) {
  if (FuncId < 0 || FuncId >= static_cast<int>(Funcs.size()))
    return fail(formatString("call to bad function id %d", FuncId));
  if (T.Frames.size() >= Config.MaxCallDepth)
    return fail("call stack overflow");
  const ir::IRFunction &Callee = Funcs[FuncId];

  Frame Fr;
  Fr.Func = &Callee;
  Fr.Block = Callee.Entry;
  Fr.Pc = 0;
  Fr.RegBase = T.Regs.size();
  Fr.CallerFuncId = CallerFuncId;
  Fr.CallSite = CallInst ? CallInst->Aux : -1;
  Fr.Optimized =
      static_cast<size_t>(FuncId) < Config.OptimizedFuncs.size() &&
      Config.OptimizedFuncs[static_cast<size_t>(FuncId)];
  T.Regs.resize(T.Regs.size() + static_cast<size_t>(Callee.NumRegs));

  if (CallInst) {
    // Copy argument cells from the caller frame (which is still
    // T.Frames.back() at this point).
    const Frame &Caller = T.Frames.back();
    assert(static_cast<int>(CallInst->Args.size()) == Callee.NumParams &&
           "argument count mismatch survived the verifier");
    for (size_t A = 0; A != CallInst->Args.size(); ++A)
      T.Regs[Fr.RegBase + A] = T.Regs[Caller.RegBase + CallInst->Args[A]];
  }
  T.Frames.push_back(Fr);
  ++Stats.Entries;
  return true;
}

bool ExecutionEngine::stepThread(Thread &T) {
  const CostModel &Costs = Config.Costs;
  bool MultiThreaded = Threads.size() > 1;

  while (true) {
    if (T.Frames.empty()) {
      T.Done = true;
      return true;
    }
    Frame &Fr = T.Frames.back();
    const ir::BasicBlock &BB = Fr.Func->Blocks[Fr.Block];
    assert(Fr.Pc < static_cast<int>(BB.Insts.size()) && "pc ran off block");
    const IRInst &I = BB.Insts[Fr.Pc];
    Cell *R = T.Regs.data() + Fr.RegBase;

    ++Stats.Instructions;
    uint32_t Cost = Costs.costOf(I);
    if (Fr.Optimized)
      Cost = Cost * Config.OptimizedCostPct / 100;
    Stats.Cycles += Cost;
    if (Stats.Cycles > Config.MaxCycles)
      return fail("cycle budget exhausted (runaway program?)");
    if (Config.Trigger == TriggerKind::Timer &&
        Stats.Cycles >= NextTimerFire) {
      SampleBit = true;
      // A long-latency instruction can straddle several periods; count
      // each elapsed period as a fire (the bit itself stays one bit, as
      // in hardware).
      do {
        ++Stats.TimerFires;
        NextTimerFire += Config.TimerPeriodCycles;
      } while (Stats.Cycles >= NextTimerFire);
    }

    switch (I.Op) {
    case IROp::Nop:
      break;
    case IROp::MovImm:
      R[I.Dst].I = I.Imm;
      break;
    case IROp::MovFImm:
      R[I.Dst].F = I.FImm;
      break;
    case IROp::Mov:
      R[I.Dst] = R[I.A];
      break;
    case IROp::Add:
      R[I.Dst].I = R[I.A].I + R[I.B].I;
      break;
    case IROp::Sub:
      R[I.Dst].I = R[I.A].I - R[I.B].I;
      break;
    case IROp::Mul:
      R[I.Dst].I = R[I.A].I * R[I.B].I;
      break;
    case IROp::Div:
      if (R[I.B].I == 0)
        return fail(formatString("division by zero in %s",
                                 Fr.Func->Name.c_str()));
      R[I.Dst].I = R[I.A].I / R[I.B].I;
      break;
    case IROp::Rem:
      if (R[I.B].I == 0)
        return fail(formatString("remainder by zero in %s",
                                 Fr.Func->Name.c_str()));
      R[I.Dst].I = R[I.A].I % R[I.B].I;
      break;
    case IROp::Neg:
      R[I.Dst].I = -R[I.A].I;
      break;
    case IROp::And:
      R[I.Dst].I = R[I.A].I & R[I.B].I;
      break;
    case IROp::Or:
      R[I.Dst].I = R[I.A].I | R[I.B].I;
      break;
    case IROp::Xor:
      R[I.Dst].I = R[I.A].I ^ R[I.B].I;
      break;
    case IROp::Shl:
      R[I.Dst].I = R[I.A].I << (R[I.B].I & 63);
      break;
    case IROp::Shr:
      R[I.Dst].I = R[I.A].I >> (R[I.B].I & 63);
      break;
    case IROp::FAdd:
      R[I.Dst].F = R[I.A].F + R[I.B].F;
      break;
    case IROp::FSub:
      R[I.Dst].F = R[I.A].F - R[I.B].F;
      break;
    case IROp::FMul:
      R[I.Dst].F = R[I.A].F * R[I.B].F;
      break;
    case IROp::FDiv:
      R[I.Dst].F = R[I.A].F / R[I.B].F;
      break;
    case IROp::FNeg:
      R[I.Dst].F = -R[I.A].F;
      break;
    case IROp::F2I:
      R[I.Dst].I = static_cast<int64_t>(R[I.A].F);
      break;
    case IROp::I2F:
      R[I.Dst].F = static_cast<double>(R[I.A].I);
      break;
    case IROp::CmpEq:
      R[I.Dst].I = R[I.A].I == R[I.B].I;
      break;
    case IROp::CmpNe:
      R[I.Dst].I = R[I.A].I != R[I.B].I;
      break;
    case IROp::CmpLt:
      R[I.Dst].I = R[I.A].I < R[I.B].I;
      break;
    case IROp::CmpLe:
      R[I.Dst].I = R[I.A].I <= R[I.B].I;
      break;
    case IROp::CmpGt:
      R[I.Dst].I = R[I.A].I > R[I.B].I;
      break;
    case IROp::CmpGe:
      R[I.Dst].I = R[I.A].I >= R[I.B].I;
      break;
    case IROp::FCmpLt:
      R[I.Dst].I = R[I.A].F < R[I.B].F;
      break;
    case IROp::FCmpLe:
      R[I.Dst].I = R[I.A].F <= R[I.B].F;
      break;
    case IROp::FCmpEq:
      R[I.Dst].I = R[I.A].F == R[I.B].F;
      break;

    case IROp::New: {
      int ClassId = static_cast<int>(I.Imm);
      int NumFields =
          static_cast<int>(M.classAt(ClassId).Fields.size());
      int64_t Ref = TheHeap.allocObject(ClassId, NumFields);
      if (!Ref)
        return fail("heap exhausted");
      R[I.Dst].I = Ref;
      break;
    }
    case IROp::GetField: {
      int64_t Ref = R[I.A].I;
      if (!TheHeap.valid(Ref))
        return fail(formatString("null or bad reference in %s",
                                 Fr.Func->Name.c_str()));
      int Offset = FieldOffset[static_cast<size_t>(I.Imm)];
      R[I.Dst] = TheHeap.cell(Ref, Offset);
      break;
    }
    case IROp::PutField: {
      int64_t Ref = R[I.A].I;
      if (!TheHeap.valid(Ref))
        return fail(formatString("null or bad reference in %s",
                                 Fr.Func->Name.c_str()));
      int Offset = FieldOffset[static_cast<size_t>(I.Imm)];
      TheHeap.cell(Ref, Offset) = R[I.B];
      break;
    }
    case IROp::GetGlobal:
      R[I.Dst] = Globals[static_cast<size_t>(I.Imm)];
      break;
    case IROp::PutGlobal:
      Globals[static_cast<size_t>(I.Imm)] = R[I.A];
      break;
    case IROp::NewArray: {
      int64_t Ref = TheHeap.allocArray(R[I.A].I);
      if (!Ref)
        return fail("heap exhausted or negative array length");
      R[I.Dst].I = Ref;
      break;
    }
    case IROp::ALoad: {
      int64_t Ref = R[I.A].I;
      int64_t Idx = R[I.B].I;
      if (!TheHeap.valid(Ref) || Idx < 0 || Idx >= TheHeap.length(Ref))
        return fail(formatString("array access out of bounds in %s",
                                 Fr.Func->Name.c_str()));
      R[I.Dst] = TheHeap.cell(Ref, Idx);
      break;
    }
    case IROp::AStore: {
      int64_t Ref = R[I.A].I;
      int64_t Idx = R[I.B].I;
      if (!TheHeap.valid(Ref) || Idx < 0 || Idx >= TheHeap.length(Ref))
        return fail(formatString("array access out of bounds in %s",
                                 Fr.Func->Name.c_str()));
      TheHeap.cell(Ref, Idx) = R[I.C];
      break;
    }
    case IROp::ALen: {
      int64_t Ref = R[I.A].I;
      if (!TheHeap.valid(Ref))
        return fail("null or bad reference");
      R[I.Dst].I = TheHeap.length(Ref);
      break;
    }
    case IROp::IOWait:
      break; // the cost model already charged Imm cycles
    case IROp::Print:
      if (Stats.Trace.size() < Config.MaxTraceEntries)
        Stats.Trace.push_back(R[I.A].I);
      break;

    case IROp::Call: {
      int64_t RetSlot =
          I.Dst >= 0 ? static_cast<int64_t>(Fr.RegBase) + I.Dst : -1;
      ++Fr.Pc; // resume after the call on return
      if (!pushFrame(T, static_cast<int>(I.Imm), &I, Fr.Func->FuncId))
        return false;
      T.Frames.back().RetSlot = RetSlot;
      continue; // Fr is invalidated; restart dispatch
    }
    case IROp::Spawn: {
      Thread NewThread;
      NewThread.Counter = Config.SampleInterval > 0 ? nextResetValue() : 0;
      // Build the spawned frame manually so argument cells come from the
      // spawning thread's registers.
      const ir::IRFunction &Callee = Funcs[static_cast<int>(I.Imm)];
      if (static_cast<int>(I.Args.size()) != Callee.NumParams)
        return fail("spawn argument count mismatch");
      Frame SF;
      SF.Func = &Callee;
      SF.Block = Callee.Entry;
      SF.Pc = 0;
      SF.RegBase = 0;
      SF.CallerFuncId = Fr.Func->FuncId;
      SF.CallSite = I.Aux;
      SF.Optimized =
          static_cast<size_t>(I.Imm) < Config.OptimizedFuncs.size() &&
          Config.OptimizedFuncs[static_cast<size_t>(I.Imm)];
      NewThread.Regs.resize(static_cast<size_t>(Callee.NumRegs));
      for (size_t A = 0; A != I.Args.size(); ++A)
        NewThread.Regs[A] = R[I.Args[A]];
      NewThread.Frames.push_back(SF);
      Threads.push_back(std::move(NewThread));
      ++Stats.ThreadsSpawned;
      ++Stats.Entries;
      MultiThreaded = true;
      break;
    }
    case IROp::Ret:
    case IROp::RetVal: {
      Cell Result;
      if (I.Op == IROp::RetVal)
        Result = R[I.A];
      int64_t RetSlot = Fr.RetSlot;
      size_t RegBase = Fr.RegBase;
      T.Frames.pop_back();
      T.Regs.resize(RegBase);
      if (T.Frames.empty()) {
        if (I.Op == IROp::RetVal && &T == &Threads[0])
          Stats.MainResult = Result.I;
        T.Done = true;
        return true;
      }
      if (I.Op == IROp::RetVal && RetSlot >= 0)
        T.Regs[static_cast<size_t>(RetSlot)] = Result;
      continue;
    }

    case IROp::Jump:
      Fr.Block = static_cast<int>(I.Imm);
      Fr.Pc = 0;
      continue;
    case IROp::Branch:
      Fr.Block = R[I.A].I != 0 ? static_cast<int>(I.Imm) : I.Aux;
      Fr.Pc = 0;
      continue;

    case IROp::Yieldpoint:
      ++Stats.YieldpointExecs;
      if (MultiThreaded &&
          Stats.Cycles - LastSwitchCycles >= Config.YieldQuantumCycles) {
        ++Fr.Pc;
        return true; // scheduler rotates threads
      }
      break;

    case IROp::SampleCheck: {
      ++Stats.CheckExecs;
      bool Fires = sampleConditionFires(T, Fr.Func->FuncId);
      if (Fires) {
        ++Stats.SamplesTaken;
        Stats.Cycles += Costs.CheckTakenExtra;
        if (Config.BurstLength > 0)
          T.BurstRemaining = Config.BurstLength;
        Fr.Block = static_cast<int>(I.Imm);
      } else {
        Fr.Block = I.Aux;
      }
      Fr.Pc = 0;
      // The check subsumes the yield test (always safe; required when the
      // yieldpoint optimization removed checking-code yieldpoints).
      if (MultiThreaded &&
          Stats.Cycles - LastSwitchCycles >= Config.YieldQuantumCycles)
        return true;
      continue;
    }
    case IROp::Probe: {
      const instr::ProbeEntry &P = Probes.entry(static_cast<int>(I.Imm));
      Stats.Cycles += P.CostCycles;
      runProbeBody(P, T);
      break;
    }
    case IROp::GuardedProbe: {
      ++Stats.GuardedProbeExecs;
      if (sampleConditionFires(T, Fr.Func->FuncId)) {
        ++Stats.GuardedProbesTaken;
        const instr::ProbeEntry &P = Probes.entry(static_cast<int>(I.Imm));
        Stats.Cycles += P.CostCycles;
        runProbeBody(P, T);
      }
      break;
    }
    case IROp::BurstTransfer:
      ++Stats.BurstIterations;
      Fr.Block = --T.BurstRemaining > 0 ? static_cast<int>(I.Imm) : I.Aux;
      Fr.Pc = 0;
      continue;
    }

    ++Fr.Pc;
  }
}

RunStats ExecutionEngine::run(int EntryFunc,
                              const std::vector<int64_t> &Args) {
  Stats = RunStats();
  Stats.Ok = true;
  Profiles.clear();
  Profiles.FieldAccesses.resize(M.numFieldIds());
  Globals.assign(Globals.size(), Cell());
  Threads.clear();
  Rng = support::Xorshift64(Config.RandomSeed);
  GlobalCounter = Config.SampleInterval > 0 ? Config.SampleInterval : 0;
  PolicyCounters.assign(Config.Policy ? Funcs.size() : 0, 0);
  SampleBit = false;
  NextTimerFire = Config.TimerPeriodCycles;
  LastSwitchCycles = 0;
  CurThread = 0;

  if (EntryFunc < 0 || EntryFunc >= static_cast<int>(Funcs.size())) {
    fail("bad entry function");
    return Stats;
  }
  const ir::IRFunction &Main = Funcs[EntryFunc];
  if (static_cast<int>(Args.size()) != Main.NumParams) {
    fail("entry argument count mismatch");
    return Stats;
  }

  Thread MainThread;
  MainThread.Counter = Config.SampleInterval > 0 ? Config.SampleInterval : 0;
  Frame MF;
  MF.Func = &Main;
  MF.Block = Main.Entry;
  MF.Pc = 0;
  MF.RegBase = 0;
  MF.Optimized =
      static_cast<size_t>(EntryFunc) < Config.OptimizedFuncs.size() &&
      Config.OptimizedFuncs[static_cast<size_t>(EntryFunc)];
  MainThread.Regs.resize(static_cast<size_t>(Main.NumRegs));
  for (size_t A = 0; A != Args.size(); ++A)
    MainThread.Regs[A].I = Args[A];
  MainThread.Frames.push_back(MF);
  Threads.push_back(std::move(MainThread));
  ++Stats.Entries;

  while (Stats.Ok) {
    // Round-robin over live threads.
    size_t Alive = 0;
    for (const Thread &T : Threads)
      if (!T.Done)
        ++Alive;
    if (Alive == 0)
      break;
    while (Threads[CurThread].Done)
      CurThread = (CurThread + 1) % Threads.size();
    Thread &T = Threads[CurThread];
    if (!stepThread(T))
      break;
    LastSwitchCycles = Stats.Cycles;
    if (!T.Done)
      ++Stats.ThreadSwitches;
    CurThread = (CurThread + 1) % Threads.size();
  }
  return Stats;
}

} // namespace runtime
} // namespace ars
