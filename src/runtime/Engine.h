//===- runtime/Engine.h - Deterministic execution engine ------*- C++ -*-===//
///
/// \file
/// The interpreter standing in for the Jalapeno JVM: it runs transformed IR
/// under a deterministic cycle cost model, implements the framework's
/// runtime halves — the global (or per-thread) sample counter, the
/// timer-based trigger, green threads with yieldpoint scheduling, probes
/// writing into a ProfileBundle — and reports the counters the experiments
/// and the Property-1 dynamic checks are built from.
///
/// Determinism: given the same program, config and arguments, a run
/// produces bit-identical cycle counts and profiles (the paper's
/// "running a deterministic application twice will result in identical
/// profiles"); this is a unit test.
///
/// Reentrancy: every piece of run state — profiles, heap, globals,
/// green-thread stacks, the sample counter, the jitter RNG, the timer
/// bit — lives in the ExecutionEngine instance, and the constructor-time
/// inputs (module, IR functions, probe registry) are only ever read.
/// Concurrent engines may therefore share one instrumented module, which
/// is what the parallel harness's TransformCache relies on; the audit is
/// pinned by tests/test_parallel_harness.cpp under ThreadSanitizer.
///
//===----------------------------------------------------------------------===//

#ifndef ARS_RUNTIME_ENGINE_H
#define ARS_RUNTIME_ENGINE_H

#include "bytecode/Module.h"
#include "instr/Probe.h"
#include "ir/IR.h"
#include "policy/Policy.h"
#include "profile/Profiles.h"
#include "runtime/CostModel.h"
#include "runtime/Heap.h"
#include "support/Support.h"

#include <deque>
#include <memory>
#include <string>
#include <vector>

/// Compile-time switch for the computed-goto interpreter loop.  CMake's
/// ARS_THREADED_DISPATCH option (default ON) defines this to 0 to force
/// the portable switch build; the GNU label-address extension gates it to
/// GCC/Clang regardless.
#ifndef ARS_THREADED_DISPATCH
#define ARS_THREADED_DISPATCH 1
#endif
#if ARS_THREADED_DISPATCH && (defined(__GNUC__) || defined(__clang__))
#define ARS_THREADED_DISPATCH_AVAILABLE 1
#else
#define ARS_THREADED_DISPATCH_AVAILABLE 0
#endif

namespace ars {
namespace runtime {

/// How checks decide the sample condition (paper section 2.1/2.2).
enum class TriggerKind : uint8_t {
  Counter, ///< compiler-inserted counter-based sampling
  Timer    ///< a bit set every TimerPeriodCycles, polled by the next check
};

/// Which interpreter loop runs the program.  Both produce bit-identical
/// stats and profiles (pinned by tests/test_dispatch.cpp); Threaded is the
/// computed-goto loop with cached frame/cost pointers, Switch the portable
/// re-derive-everything loop.
enum class DispatchMode : uint8_t {
  Auto,    ///< threaded when compiled in, switch otherwise
  Switch,  ///< force the portable switch loop
  Threaded ///< request the threaded loop (falls back to Switch when the
           ///< build has no computed-goto support)
};

/// True when this build carries the computed-goto loop.
bool threadedDispatchCompiled();

/// Engine configuration.
struct EngineConfig {
  TriggerKind Trigger = TriggerKind::Counter;

  /// Interpreter loop selection; semantics are identical either way.
  DispatchMode Dispatch = DispatchMode::Auto;

  /// Counter reset value; a sample fires when the counter reaches zero.
  /// 0 means "never sample" (the framework-overhead configurations).
  /// 1 means every check fires (the perfect-profile configuration).
  int64_t SampleInterval = 0;

  /// Period of the simulated timer interrupt (TriggerKind::Timer), the
  /// analog of Jalapeno's 10ms threadswitch bit.
  uint64_t TimerPeriodCycles = 300000;

  /// Use one sample counter per thread instead of a global one
  /// (section 2.2's answer to multiprocessor counter contention).
  bool PerThreadCounters = false;

  /// When nonzero, the counter reset value is drawn uniformly from
  /// interval +/- (interval * pct / 100), deterministically seeded —
  /// the DCPI-style perturbation discussed at the end of section 4.4.
  uint32_t RandomJitterPct = 0;
  uint64_t RandomSeed = 0x415253; // "ARS"

  /// Burst length for BurstTransfer (must match the transform option).
  int BurstLength = 0;

  /// Runtime-settable per-method interval table — the receiving end of
  /// the closed-loop policy push-down (policy/Policy.h).  Null (the
  /// default) leaves the engine bit-identical to one without this
  /// field.  When attached, the Counter trigger keeps one countdown per
  /// method: a method with no override counts at SampleInterval; a
  /// widened method counts at its override; a RETIRED method (override
  /// 0) never fires, so its duplicated body is never entered again —
  /// checking-only semantics without restart or re-transform.  The
  /// table may be written concurrently (a POLICY frame arriving on a
  /// client thread); the engine only ever loads atomics from it.
  /// Property 1 is unaffected: checks still execute at every method
  /// entry and loop backedge, so CheckExecs <= Entries + Backedges
  /// holds no matter what the table says.
  std::shared_ptr<policy::PolicyTable> Policy;

  /// Thread scheduler time slice, polled at yieldpoints.
  uint64_t YieldQuantumCycles = 200000;

  /// Functions marked as recompiled at a higher optimization level by an
  /// adaptive controller (indexed by FuncId; empty = none).  Their
  /// instructions cost OptimizedCostPct percent of the normal model —
  /// the simulation of the paper's "selective optimization" context.
  std::vector<char> OptimizedFuncs;
  uint32_t OptimizedCostPct = 70;

  /// Safety rails.
  uint64_t MaxCycles = 200000000000ULL;
  size_t MaxHeapCells = size_t(1) << 28;
  size_t MaxTraceEntries = 65536;
  size_t MaxCallDepth = 100000;

  CostModel Costs;
};

/// Everything a run reports.
struct RunStats {
  bool Ok = false;
  std::string Error;

  uint64_t Cycles = 0;
  uint64_t Instructions = 0;
  uint64_t Entries = 0;          ///< frames pushed (main + calls + spawns)
  uint64_t YieldpointExecs = 0;
  uint64_t ThreadSwitches = 0;
  uint64_t CheckExecs = 0;       ///< SampleCheck executions
  uint64_t SamplesTaken = 0;     ///< checks whose sample condition was true
  uint64_t GuardedProbeExecs = 0;
  uint64_t GuardedProbesTaken = 0;
  uint64_t ProbeBodiesRun = 0;   ///< probe bodies executed (incl. guarded)
  uint64_t BurstIterations = 0;
  uint64_t TimerFires = 0;
  uint64_t ThreadsSpawned = 0;

  int64_t MainResult = 0;
  std::vector<int64_t> Trace; ///< values printed by Print
};

/// Canonical byte serialization of every deterministic field of \p S
/// (everything except the host-independent fields is included; there are
/// no host-time fields in RunStats).  Used by the parallel harness's
/// determinism tests: two runs are "bit-identical" iff their serialized
/// stats and profiles compare equal.
std::string serializeStats(const RunStats &S);

/// Interprets one compiled program.
class ExecutionEngine {
public:
  /// \p Funcs must be indexed by FuncId and outlive the engine.
  ExecutionEngine(const bytecode::Module &M,
                  const std::vector<ir::IRFunction> &Funcs,
                  const instr::ProbeRegistry &Probes, EngineConfig Config);
  ~ExecutionEngine();

  /// Runs \p EntryFunc with integer \p Args to completion of all threads.
  RunStats run(int EntryFunc, const std::vector<int64_t> &Args);

  /// Profiles collected by the most recent run.
  const profile::ProfileBundle &profiles() const { return Profiles; }

private:
  struct Frame {
    const ir::IRFunction *Func = nullptr;
    int Block = 0;
    int Pc = 0;
    size_t RegBase = 0;
    int CallerFuncId = -1; ///< for call-edge probes
    int CallSite = -1;
    int64_t RetSlot = -1;  ///< absolute register receiving the return value
    bool Optimized = false; ///< runs under the optimized cost scale
    int64_t PathSum = 0;   ///< Ball-Larus path register
  };

  struct Thread {
    std::vector<Frame> Frames;
    std::vector<Cell> Regs;
    int64_t Counter = 0;      ///< per-thread sample counter
    int64_t BurstRemaining = 0;
    bool Done = false;
  };

  const bytecode::Module &M;
  const std::vector<ir::IRFunction> &Funcs;
  const instr::ProbeRegistry &Probes;
  EngineConfig Config;

  /// Per-function flattened instruction costs, indexed by FuncId; one row
  /// per block (BlockBase[Block] + Pc).  The optimized-function cost scale
  /// is a pure function of FuncId, so it is baked in here: the dispatch
  /// loops charge CostRow[Pc] instead of recomputing costOf + scaling per
  /// instruction.
  struct FuncCostTable {
    std::vector<uint32_t> Costs;
    std::vector<size_t> BlockBase;
  };
  std::vector<FuncCostTable> InstCosts;

  /// Per-probe interned profile-counter slot, so hot record paths stop
  /// re-hashing their (static) keys on every execution.  Slot pointers
  /// reach into the profile maps, which are node-stable under insertion;
  /// run() resets the memos together with the profiles.  CallEdge probes
  /// key on the frame, so their memo also remembers the (caller, site)
  /// pair it was formed under.
  struct ProbeMemo {
    uint64_t *Slot = nullptr;
    int Caller = -2; ///< -2 = no memo (valid caller ids start at -1)
    int Site = -2;
  };
  std::vector<ProbeMemo> ProbeMemos;

  bool UseThreaded = false;

  profile::ProfileBundle Profiles;
  Heap TheHeap;
  std::vector<Cell> Globals;
  std::vector<int> FieldOffset; ///< module field id -> offset in object
  /// Deque, not vector: stepThread holds references into the current
  /// thread while Spawn appends new ones, and deque push_back never
  /// invalidates references to existing elements.
  std::deque<Thread> Threads;
  size_t CurThread = 0;

  RunStats Stats;
  support::Xorshift64 Rng;
  int64_t GlobalCounter = 0;
  /// Per-method countdowns, indexed by FuncId; sized only when a policy
  /// table is attached (empty otherwise, keeping the no-policy path
  /// untouched).  0 = not yet armed for the effective interval.
  std::vector<int64_t> PolicyCounters;
  bool SampleBit = false;
  uint64_t NextTimerFire = 0;
  uint64_t LastSwitchCycles = 0;

  bool fail(const std::string &Message);
  int64_t nextResetValue();
  int64_t nextResetValue(int64_t Interval);
  /// Decrements the active sample counter by \p Weight (a coalesced
  /// check stands in for Weight original checks); fires when it reaches
  /// zero.  Weight 1 is the plain per-check semantics.
  bool sampleConditionFires(Thread &T, int FuncId, int64_t Weight = 1);
  /// Executes \p P's body \p Count times in one step (Count > 1 comes
  /// from probes hoisted out of exactly-counted loops); all counter
  /// kinds record Count in one bump.
  void runProbeBody(const instr::ProbeEntry &P, Thread &T,
                    uint64_t Count = 1);
  /// Runs \p T until it blocks on a yield, finishes, or the run fails.
  /// Returns false when the whole run must stop.  Dispatches to the
  /// selected interpreter loop; the two loops are semantically identical
  /// (bit-identical stats and profiles).
  bool stepThread(Thread &T);
  bool stepThreadSwitch(Thread &T);
#if ARS_THREADED_DISPATCH_AVAILABLE
  bool stepThreadThreaded(Thread &T);
#endif
  bool pushFrame(Thread &T, int FuncId, const ir::IRInst *CallInst,
                 int CallerFuncId);
};

} // namespace runtime
} // namespace ars

#endif // ARS_RUNTIME_ENGINE_H
