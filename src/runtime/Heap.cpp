//===- runtime/Heap.cpp ---------------------------------------*- C++ -*-===//

#include "runtime/Heap.h"

namespace ars {
namespace runtime {

int64_t Heap::allocObject(int ClassId, int NumFields) {
  if (NumFields < 0 || Pool.size() + static_cast<size_t>(NumFields) > MaxCells)
    return 0;
  Header H;
  H.ClassId = ClassId;
  H.Begin = Pool.size();
  H.Len = NumFields;
  Pool.resize(Pool.size() + static_cast<size_t>(NumFields));
  Headers.push_back(H);
  return static_cast<int64_t>(Headers.size());
}

int64_t Heap::allocArray(int64_t Len) {
  if (Len < 0 || Pool.size() + static_cast<size_t>(Len) > MaxCells)
    return 0;
  Header H;
  H.ClassId = -1;
  H.Begin = Pool.size();
  H.Len = Len;
  Pool.resize(Pool.size() + static_cast<size_t>(Len));
  Headers.push_back(H);
  return static_cast<int64_t>(Headers.size());
}

} // namespace runtime
} // namespace ars
