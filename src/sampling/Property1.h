//===- sampling/Property1.h - Structural framework invariants -*- C++ -*-===//
///
/// \file
/// Static checker for the structural invariants behind Property 1 (paper
/// section 2): checks appear only at method entries and on backedges;
/// instrumentation lives only in duplicated code; duplicated code has no
/// internal backedges (so a sample does a bounded amount of work).  The
/// dynamic half of Property 1 — checks executed <= entries + backedges
/// executed — is validated by the test suite using engine counters.
///
//===----------------------------------------------------------------------===//

#ifndef ARS_SAMPLING_PROPERTY1_H
#define ARS_SAMPLING_PROPERTY1_H

#include "sampling/Transform.h"

#include <string>

namespace ars {
namespace sampling {

/// Returns an empty string if \p F (transformed with \p Opts, producing
/// \p Result) satisfies the structural invariants, else a description of
/// the first violation.
std::string checkProperty1Static(const ir::IRFunction &F,
                                 const TransformResult &Result,
                                 const Options &Opts);

/// Counts occurrences of \p Op in \p F (test/diagnostic helper).
int countOps(const ir::IRFunction &F, ir::IROp Op);

} // namespace sampling
} // namespace ars

#endif // ARS_SAMPLING_PROPERTY1_H
