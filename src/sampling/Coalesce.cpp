//===- sampling/Coalesce.cpp ----------------------------------*- C++ -*-===//

#include "sampling/Coalesce.h"

#include "analysis/Backedges.h"
#include "analysis/CFG.h"
#include "analysis/Dominators.h"
#include "analysis/LoopInfo.h"
#include "analysis/TripCount.h"

#include <limits>
#include <map>
#include <set>
#include <utility>

namespace ars {
namespace sampling {

using analysis::BackedgeInfo;
using analysis::CFG;
using analysis::DominatorTree;
using analysis::Loop;
using analysis::LoopInfo;
using analysis::TripCount;
using ir::BasicBlock;
using ir::IRInst;
using ir::IROp;

namespace {

/// Kinds whose bodies are frame-static: what they record does not depend
/// on *when* inside the frame they run, so they can be replayed with a
/// multiplicity or reordered within a block.  Value probes read a live
/// register and the path kinds mutate ordered frame state, so both stay
/// where the client anchored them.
bool isMultiplicitySafe(instr::ProbeKind K) {
  switch (K) {
  case instr::ProbeKind::CallEdge:
  case instr::ProbeKind::FieldAccess:
  case instr::ProbeKind::BlockCount:
  case instr::ProbeKind::EdgeCount:
    return true;
  case instr::ProbeKind::Value:
  case instr::ProbeKind::PathReset:
  case instr::ProbeKind::PathAdd:
  case instr::ProbeKind::PathEnd:
    return false;
  }
  return false;
}

/// An unweighted, uncoalesced probe instruction of a safe kind.
bool isHoistCandidate(const IRInst &I, const instr::ProbeRegistry &Probes) {
  if (I.Op != IROp::Probe && I.Op != IROp::GuardedProbe)
    return false;
  if (I.Aux > 1 || !I.Args.empty())
    return false;
  return isMultiplicitySafe(Probes.entry(static_cast<int>(I.Imm)).Kind);
}

/// Hoists eligible probes out of \p L into a new preheader block on the
/// loop's unique entry edge.  Returns true when \p F was modified (the
/// caller must recompute analyses before touching another loop).
bool hoistOneLoop(ir::IRFunction &F, const instr::ProbeRegistry &Probes,
                  const CFG &Graph, const DominatorTree &Dom, const Loop &L,
                  TransformResult &Result) {
  TripCount TC = analysis::computeTripCount(F, Graph, Dom, L);
  if (!TC.Exact)
    return false;
  if (TC.BodyExecs >
      static_cast<uint64_t>(std::numeric_limits<int>::max()))
    return false; // weight must fit IRInst::Aux

  // computeTripCount guarantees a unique outside predecessor.
  int EntryPred = -1;
  for (int P : Graph.predecessors(L.Header))
    if (!L.contains(P))
      EntryPred = P;
  if (EntryPred < 0)
    return false;

  // Collect the probes to move.  A block qualifies when it executes a
  // statically known number of times per entry: the header (BodyExecs + 1
  // visits) or any block dominating the single latch (BodyExecs visits).
  std::vector<IRInst> Moved;
  bool Modified = false;
  for (int B : L.Blocks) {
    bool IsHeader = B == L.Header;
    if (!IsHeader && !Dom.dominates(B, L.Latches[0]))
      continue;
    uint64_t Mult = IsHeader ? TC.HeaderExecs : TC.BodyExecs;
    if (Mult == 1)
      continue; // one execution either way; leave it anchored
    std::vector<IRInst> &Insts = F.Blocks[B].Insts;
    std::vector<IRInst> Kept;
    Kept.reserve(Insts.size());
    for (IRInst &I : Insts) {
      if (!isHoistCandidate(I, Probes)) {
        Kept.push_back(std::move(I));
        continue;
      }
      Modified = true;
      if (Mult == 0) {
        // The body never runs on any entry; the probe records nothing.
        ++Result.Stats.ProbesDropped;
        continue;
      }
      IRInst H = std::move(I);
      H.Aux = static_cast<int>(Mult);
      if (H.Op == IROp::GuardedProbe)
        ++Result.Stats.ChecksHoisted;
      else
        ++Result.Stats.ProbesHoisted;
      Moved.push_back(std::move(H));
    }
    Insts = std::move(Kept);
  }
  if (Moved.empty())
    return Modified;

  // Preheader on the entry edge, so the hoisted probes run exactly once
  // per loop entry (and never when the loop is skipped entirely).
  int NewB = F.addBlock();
  BasicBlock &PB = F.Blocks[NewB];
  PB.Insts = std::move(Moved);
  IRInst Jump(IROp::Jump);
  Jump.Imm = L.Header;
  PB.Insts.push_back(Jump);
  ir::retargetTerminator(F.Blocks[EntryPred].terminator(), L.Header, NewB);
  Result.Roles.push_back(BlockRole::Checking);
  return true;
}

void hoistLoopProbes(ir::IRFunction &F, const instr::ProbeRegistry &Probes,
                     TransformResult &Result) {
  // Hoisting one loop edits the CFG, so analyses are recomputed after
  // every modification and each header is visited at most once.  Block
  // ids are stable (the pass only appends blocks), so header ids key the
  // visited set soundly across recomputations.
  std::set<int> Visited;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    CFG Graph(F);
    DominatorTree Dom(Graph);
    BackedgeInfo BI = analysis::findBackedges(Graph, Dom);
    if (!BI.Reducible)
      return;
    LoopInfo LI(Graph, BI);
    for (const Loop &L : LI.loops()) {
      if (!Visited.insert(L.Header).second)
        continue;
      if (hoistOneLoop(F, Probes, Graph, Dom, L, Result)) {
        Changed = true;
        break;
      }
    }
  }
}

/// Merges same-weight GuardedProbes of \p BB into single weighted checks.
void coalesceBlock(BasicBlock &BB, const instr::ProbeRegistry &Probes,
                   TransformResult &Result) {
  // Group candidate checks by body multiplicity; merging requires equal
  // multiplicity so the combined weight stays divisible: k bodies at
  // weight w merge into one check of weight k*w, and the engine recovers
  // w = Aux / (1 + Args.size()) per body.
  std::map<int, std::vector<size_t>> Groups;
  for (size_t I = 0; I != BB.Insts.size(); ++I) {
    const IRInst &Inst = BB.Insts[I];
    if (Inst.Op != IROp::GuardedProbe || !Inst.Args.empty())
      continue;
    if (!isMultiplicitySafe(Probes.entry(static_cast<int>(Inst.Imm)).Kind))
      continue;
    Groups[Inst.Aux > 1 ? Inst.Aux : 1].push_back(I);
  }
  std::vector<char> Remove(BB.Insts.size(), 0);
  bool Any = false;
  for (auto &[Weight, Members] : Groups) {
    int K = static_cast<int>(Members.size());
    if (K < 2)
      continue;
    if (Weight > std::numeric_limits<int>::max() / K)
      continue; // combined weight would overflow Aux
    IRInst &First = BB.Insts[Members[0]];
    for (size_t M = 1; M != Members.size(); ++M) {
      First.Args.push_back(static_cast<int>(BB.Insts[Members[M]].Imm));
      Remove[Members[M]] = 1;
    }
    First.Aux = Weight * K;
    Result.Stats.ChecksCoalesced += K - 1;
    Any = true;
  }
  if (!Any)
    return;
  std::vector<IRInst> Kept;
  Kept.reserve(BB.Insts.size());
  for (size_t I = 0; I != BB.Insts.size(); ++I)
    if (!Remove[I])
      Kept.push_back(std::move(BB.Insts[I]));
  BB.Insts = std::move(Kept);
}

} // namespace

void coalesceChecks(ir::IRFunction &F, const instr::ProbeRegistry &Probes,
                    const Options &Opts, TransformResult &Result) {
  if (!Opts.CoalesceChecks && !Opts.HoistLoopProbes)
    return;
  // Hoist first: probes landing together in a preheader are exactly the
  // groups coalescing then merges into one check.
  if (Opts.HoistLoopProbes)
    hoistLoopProbes(F, Probes, Result);
  if (Opts.CoalesceChecks)
    for (BasicBlock &BB : F.Blocks)
      coalesceBlock(BB, Probes, Result);
  Result.Stats.FinalBlocks = F.numBlocks();
  Result.Stats.FinalSize = F.codeSize();
}

} // namespace sampling
} // namespace ars
