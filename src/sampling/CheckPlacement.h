//===- sampling/CheckPlacement.h - Shared transform machinery -*- C++ -*-===//
///
/// \file
/// Internal helpers shared by the transform variants: block duplication,
/// probe planting, pre-entry block construction, backedge splitting with
/// yieldpoints/checks, and role-aware unreachable-block compaction.
/// Private to the sampling library; not part of the public API.
///
//===----------------------------------------------------------------------===//

#ifndef ARS_SAMPLING_CHECKPLACEMENT_H
#define ARS_SAMPLING_CHECKPLACEMENT_H

#include "analysis/Backedges.h"
#include "sampling/Transform.h"

namespace ars {
namespace sampling {

/// Mutable state threaded through one function's transformation.
struct TransformContext {
  ir::IRFunction &F;
  const instr::FunctionPlan &Plan;
  const Options &Opts;
  TransformResult Result;
  analysis::BackedgeInfo BI; ///< backedges of the original code
  int N = 0;                 ///< original block count

  TransformContext(ir::IRFunction &F, const instr::FunctionPlan &Plan,
                   const Options &Opts);

  /// Appends an empty block with \p Role; returns its id.
  int newBlock(BlockRole Role);

  /// For each BI.Backedges[i], the block a duplicated-code backedge must
  /// return to: the backedge's check block when one was created (so that,
  /// at sample interval 1, execution re-enters duplicated code immediately
  /// and the whole run is profiled — the paper's perfect-profile
  /// configuration), else the checking-code header.  Filled by
  /// splitCheckingBackedges; defaults to the headers.
  std::vector<int> BackedgeReturn;
};

/// Appends a copy of blocks [0, N) as blocks [N, 2N) with branch targets
/// shifted by N, rolls marked Duplicated.
void duplicateBlocks(TransformContext &Ctx);

/// Plants BeforeInst probes of \p Plan into blocks, offsetting anchor
/// block ids by \p BlockOffset, as \p ProbeOp (Probe or GuardedProbe).
/// MethodEntry probes are NOT planted; they are returned so the caller can
/// place them in the right prologue block.
std::vector<ir::IRInst> plantProbes(TransformContext &Ctx,
                                    const instr::FunctionPlan &Plan,
                                    int BlockOffset, ir::IROp ProbeOp);

/// Overload planting the context's own plan.
std::vector<ir::IRInst> plantProbes(TransformContext &Ctx, int BlockOffset,
                                    ir::IROp ProbeOp);

/// Returns the set of original block ids that carry BeforeInst anchors in
/// \p Plan (used by Partial-Duplication to mark instrumented nodes).
std::vector<char> instrumentedBlocks(const TransformContext &Ctx,
                                     const instr::FunctionPlan &Plan);

/// Builds the checking-code prologue: an optional yieldpoint and an
/// optional entry check (SampleCheck to \p DupEntryTarget).  Sets F.Entry.
/// No block is created when both parts are absent.  \p ExtraLeading
/// instructions (e.g. exhaustive method-entry probes) are placed first.
void buildPreEntry(TransformContext &Ctx, int DupEntryTarget,
                   bool WithYieldpoint, bool WithCheck,
                   std::vector<ir::IRInst> ExtraLeading);

/// Splits every backedge (u, v) of the checking code with a new block
/// containing an optional yieldpoint and either a check (SampleCheck to
/// dup(v) = v + N, or a self-target when code is not duplicated) or a
/// plain jump.  Partial-Duplication passes \p DupHeaderKept to suppress
/// checks whose duplicated target was removed.  Fills Ctx.BackedgeReturn.
/// Must run before redirectDupBackedges.
void splitCheckingBackedges(TransformContext &Ctx, bool WithYieldpoint,
                            bool WithChecks,
                            const std::vector<char> *DupHeaderKept);

/// Redirects every duplicated-code backedge dup(u) -> dup(v) back to
/// checking code at Ctx.BackedgeReturn[i] — through a new Transfer block
/// when the edge needs content (a relocated yieldpoint under the
/// yieldpoint optimization, or the counted BurstTransfer of the
/// N-iteration extension), else by direct retargeting.  When
/// \p DupHeaderKept says the duplicated header was removed
/// (Partial-Duplication), the burst re-entry degrades to a plain return.
void redirectDupBackedges(TransformContext &Ctx,
                          const std::vector<char> *DupHeaderKept = nullptr);

/// Removes blocks unreachable from F.Entry, renumbering blocks and keeping
/// Result.Roles aligned.  Used instead of lowering::removeUnreachableBlocks
/// so the role map survives.
void compactReachable(TransformContext &Ctx);

// Variant entry points (implemented one per file, dispatched by
// transformFunction).
TransformResult runBaseline(ir::IRFunction &F,
                            const instr::FunctionPlan &Plan,
                            const Options &Opts);
TransformResult runExhaustive(ir::IRFunction &F,
                              const instr::FunctionPlan &Plan,
                              const Options &Opts);
TransformResult runFullDuplication(ir::IRFunction &F,
                                   const instr::FunctionPlan &Plan,
                                   const Options &Opts);
TransformResult runPartialDuplication(ir::IRFunction &F,
                                      const instr::FunctionPlan &Plan,
                                      const Options &Opts);
TransformResult runNoDuplication(ir::IRFunction &F,
                                 const instr::FunctionPlan &Plan,
                                 const Options &Opts);
TransformResult runCombined(ir::IRFunction &F,
                            const instr::FunctionPlan &Plan,
                            const Options &Opts);

} // namespace sampling
} // namespace ars

#endif // ARS_SAMPLING_CHECKPLACEMENT_H
