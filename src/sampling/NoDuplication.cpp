//===- sampling/NoDuplication.cpp - Section 3.2 algorithm -----*- C++ -*-===//
///
/// \file
/// No-Duplication: nothing is duplicated; every instrumentation operation
/// is guarded by its own counter-based check (GuardedProbe).  Property 1
/// does not hold — the number of checks executed tracks the number of
/// instrumentation operations, which may exceed or undercut the number of
/// entries + backedges depending on instrumentation density (the effect
/// Table 3 measures).
///
//===----------------------------------------------------------------------===//

#include "sampling/CheckPlacement.h"

namespace ars {
namespace sampling {

using ir::IRInst;
using ir::IROp;

TransformResult runNoDuplication(ir::IRFunction &F,
                                 const instr::FunctionPlan &Plan,
                                 const Options &Opts) {
  TransformContext Ctx(F, Plan, Opts);
  std::vector<IRInst> EntryProbes = plantProbes(Ctx, 0, IROp::GuardedProbe);
  Ctx.Result.Stats.GuardedProbes += static_cast<int>(EntryProbes.size());
  splitCheckingBackedges(Ctx, Opts.InsertYieldpoints, /*WithChecks=*/false,
                         nullptr);
  buildPreEntry(Ctx, /*DupEntryTarget=*/-1, Opts.InsertYieldpoints,
                /*WithCheck=*/false, std::move(EntryProbes));
  Ctx.Result.Stats.FinalBlocks = F.numBlocks();
  Ctx.Result.Stats.FinalSize = F.codeSize();
  return Ctx.Result;
}

} // namespace sampling
} // namespace ars
