//===- sampling/Exhaustive.cpp - Baseline and exhaustive modes -*- C++ -*-===//
///
/// \file
/// Baseline: yieldpoints only — the reference configuration every overhead
/// in the paper is measured against.  Exhaustive: probes planted unguarded
/// in the original code (Table 1's expensive configuration; also how
/// perfect profiles are collected).
///
//===----------------------------------------------------------------------===//

#include "sampling/CheckPlacement.h"

namespace ars {
namespace sampling {

using ir::IRInst;
using ir::IROp;

TransformResult runBaseline(ir::IRFunction &F,
                            const instr::FunctionPlan &Plan,
                            const Options &Opts) {
  TransformContext Ctx(F, Plan, Opts);
  splitCheckingBackedges(Ctx, Opts.InsertYieldpoints, /*WithChecks=*/false,
                         nullptr);
  buildPreEntry(Ctx, /*DupEntryTarget=*/-1, Opts.InsertYieldpoints,
                /*WithCheck=*/false, {});
  Ctx.Result.Stats.FinalBlocks = F.numBlocks();
  Ctx.Result.Stats.FinalSize = F.codeSize();
  return Ctx.Result;
}

TransformResult runExhaustive(ir::IRFunction &F,
                              const instr::FunctionPlan &Plan,
                              const Options &Opts) {
  TransformContext Ctx(F, Plan, Opts);
  std::vector<IRInst> EntryProbes = plantProbes(Ctx, 0, IROp::Probe);
  Ctx.Result.Stats.Probes += static_cast<int>(EntryProbes.size());
  splitCheckingBackedges(Ctx, Opts.InsertYieldpoints, /*WithChecks=*/false,
                         nullptr);
  buildPreEntry(Ctx, /*DupEntryTarget=*/-1, Opts.InsertYieldpoints,
                /*WithCheck=*/false, std::move(EntryProbes));
  Ctx.Result.Stats.FinalBlocks = F.numBlocks();
  Ctx.Result.Stats.FinalSize = F.codeSize();
  return Ctx.Result;
}

} // namespace sampling
} // namespace ars
