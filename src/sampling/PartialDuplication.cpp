//===- sampling/PartialDuplication.cpp - Section 3.1 algorithm -*- C++ -*-===//
///
/// \file
/// Partial-Duplication removes as many non-instrumented blocks from the
/// duplicated code as possible without violating Property 1.  On the
/// duplicated-code DAG (backedges removed):
///
///  * a bottom-node is a non-instrumented node from which no instrumented
///    node is reachable — removable because once it runs, no further
///    instrumentation happens before returning to checking code;
///  * a top-node is a non-instrumented node such that no path from entry
///    to it contains an instrumented node — removable with two
///    adjustments (paper 3.1): (1) checking-code checks that branch to a
///    top-node are removed, and (2) every DAG edge from a removed top-node
///    to a kept node gets a check on the corresponding checking-code edge.
///
/// Edges from kept duplicated nodes to removed bottom-nodes return to the
/// corresponding checking-code block.
///
//===----------------------------------------------------------------------===//

#include "sampling/CheckPlacement.h"

#include <cassert>
#include <map>

namespace ars {
namespace sampling {

using ir::IRInst;
using ir::IROp;

namespace {

/// DAG successors of original block \p B: CFG successors minus backedges.
void dagSuccessors(const TransformContext &Ctx, const analysis::CFG &Graph,
                   int B, std::vector<int> &Out) {
  Out.clear();
  for (int S : Graph.successors(B))
    if (!Ctx.BI.isBackedge(B, S))
      Out.push_back(S);
}

} // namespace

namespace {

/// Shared implementation of Partial-Duplication and the Combined mode:
/// \p Plan is duplicated (its dense probes drive top/bottom-node
/// analysis); \p Sparse, when given, is planted as guarded probes in the
/// checking code (a sample executing duplicated code skips the guards for
/// that stretch, a negligible 1/interval undercount of sparse events).
TransformResult runPartialImpl(ir::IRFunction &F,
                               const instr::FunctionPlan &Plan,
                               const instr::FunctionPlan *Sparse,
                               const Options &Opts) {
  TransformContext Ctx(F, Plan, Opts);
  assert(Opts.DuplicateCode && "Partial-Duplication always duplicates");
  int OrigEntry = F.Entry;
  int N = Ctx.N;
  bool Yieldpoints = Opts.InsertYieldpoints;
  bool CheckingYieldpoints = Yieldpoints && !Opts.YieldpointOpt;
  bool DupYieldpoints = Yieldpoints && Opts.YieldpointOpt;

  // The DAG is computed on original indices; duplicated node b+N mirrors b.
  analysis::CFG Graph(F); // original code only, captured before mutation
  std::vector<char> Instrumented = instrumentedBlocks(Ctx, Plan);

  // Method-entry instrumentation makes the entry node instrumented, as it
  // would be in the paper (the probes execute at the top of the method).
  // This keeps the dynamic check count of Partial-Duplication bounded by
  // Full-Duplication's: otherwise a retained entry check plus boundary
  // checks could both fire on one path.
  bool HasEntryProbes = false;
  for (const instr::ProbeAnchor &A : Plan.Anchors)
    if (A.Kind == instr::AnchorKind::MethodEntry)
      HasEntryProbes = true;
  if (HasEntryProbes)
    Instrumented[OrigEntry] = 1;

  // Tainted = instrumented or reachable from an instrumented node (DAG).
  std::vector<char> Tainted(N, 0);
  std::vector<int> Work;
  for (int B = 0; B != N; ++B)
    if (Instrumented[B]) {
      Tainted[B] = 1;
      Work.push_back(B);
    }
  std::vector<int> Succs;
  while (!Work.empty()) {
    int B = Work.back();
    Work.pop_back();
    dagSuccessors(Ctx, Graph, B, Succs);
    for (int S : Succs)
      if (!Tainted[S]) {
        Tainted[S] = 1;
        Work.push_back(S);
      }
  }

  // ReachesI = instrumented or reaches an instrumented node (DAG).
  std::vector<char> ReachesI(N, 0);
  for (int B = 0; B != N; ++B)
    if (Instrumented[B]) {
      ReachesI[B] = 1;
      Work.push_back(B);
    }
  // Reverse edges: walk predecessors via the forward adjacency.
  while (!Work.empty()) {
    int B = Work.back();
    Work.pop_back();
    for (int P : Graph.predecessors(B)) {
      if (Ctx.BI.isBackedge(P, B))
        continue;
      if (!ReachesI[P]) {
        ReachesI[P] = 1;
        Work.push_back(P);
      }
    }
  }

  // Kept = tainted AND reaches instrumentation... no: kept = not removable.
  // Top = !Tainted, Bottom = !ReachesI; removed = Top or Bottom.
  std::vector<char> Kept(N, 0), Top(N, 0);
  for (int B = 0; B != N; ++B) {
    Top[B] = !Tainted[B];
    bool Bottom = !ReachesI[B];
    Kept[B] = !(Top[B] || Bottom);
    assert((!Instrumented[B] || Kept[B]) && "instrumented node removed");
  }

  // From here the structure mirrors Full-Duplication, minus removed nodes.
  duplicateBlocks(Ctx);
  std::vector<IRInst> EntryProbes = plantProbes(Ctx, N, IROp::Probe);
  if (Sparse && !Sparse->empty()) {
    std::vector<IRInst> GuardedEntry =
        plantProbes(Ctx, *Sparse, /*BlockOffset=*/0, IROp::GuardedProbe);
    assert(GuardedEntry.empty() && "entry probes belong to the dense plan");
    (void)GuardedEntry;
  }
  splitCheckingBackedges(Ctx, CheckingYieldpoints, Opts.BackedgeChecks,
                         &Kept);
  redirectDupBackedges(Ctx, &Kept);

  // Kept duplicated blocks whose DAG successor was removed (necessarily a
  // bottom-node) return to the checking code instead.
  for (int B = 0; B != N; ++B) {
    if (!Kept[B])
      continue;
    dagSuccessors(Ctx, Graph, B, Succs);
    for (int S : Succs) {
      if (Kept[S])
        continue;
      assert(!Top[S] && "edge from kept duplicated node to a top-node");
      ir::retargetTerminator(Ctx.F.Blocks[B + N].terminator(), S + N, S);
    }
  }

  // Adjustment 2: checks on checking-code edges from removed top-nodes
  // into kept nodes.
  for (int B = 0; B != N; ++B) {
    if (Kept[B] || !Top[B])
      continue;
    dagSuccessors(Ctx, Graph, B, Succs);
    for (int S : Succs) {
      if (!Kept[S])
        continue;
      int C = Ctx.newBlock(BlockRole::Check);
      ir::BasicBlock &BB = Ctx.F.Blocks[C];
      IRInst Check(IROp::SampleCheck);
      Check.Imm = S + N;
      Check.Aux = S;
      BB.Insts.push_back(Check);
      ++Ctx.Result.Stats.BoundaryChecks;
      ir::retargetTerminator(Ctx.F.Blocks[B].terminator(), S, C);
    }
  }

  // Duplicated-code prologue for entry probes.  When the duplicated entry
  // was removed, the prologue runs the entry probes and immediately
  // returns to checking code.
  int DupEntryTarget = -1;
  bool EntryKept = Kept[OrigEntry] != 0;
  if (!EntryProbes.empty() || (DupYieldpoints && EntryKept)) {
    int DE = Ctx.newBlock(BlockRole::DupPreEntry);
    ir::BasicBlock &BB = Ctx.F.Blocks[DE];
    if (DupYieldpoints)
      BB.Insts.push_back(IRInst(IROp::Yieldpoint));
    Ctx.Result.Stats.Probes += static_cast<int>(EntryProbes.size());
    for (IRInst &P : EntryProbes)
      BB.Insts.push_back(std::move(P));
    IRInst Jump(IROp::Jump);
    Jump.Imm = EntryKept ? OrigEntry + N : OrigEntry;
    BB.Insts.push_back(Jump);
    DupEntryTarget = DE;
  } else if (EntryKept) {
    DupEntryTarget = OrigEntry + N;
  }

  // Adjustment 1: the entry check is removed when it would branch to a
  // removed top-node (and there are no entry probes to run).
  bool WantEntryCheck = Opts.EntryChecks && DupEntryTarget >= 0;
  buildPreEntry(Ctx, DupEntryTarget, CheckingYieldpoints, WantEntryCheck, {});

  // Physically drop removed duplicated blocks (now unreachable).
  compactReachable(Ctx);

  int KeptCount = 0;
  for (int B = 0; B != N; ++B)
    KeptCount += Kept[B] ? 1 : 0;
  Ctx.Result.Stats.DupBlocksKept = KeptCount;
  Ctx.Result.Stats.DupBlocksRemoved = N - KeptCount;
  Ctx.Result.Stats.FinalBlocks = F.numBlocks();
  Ctx.Result.Stats.FinalSize = F.codeSize();
  return Ctx.Result;
}

} // namespace

TransformResult runPartialDuplication(ir::IRFunction &F,
                                      const instr::FunctionPlan &Plan,
                                      const Options &Opts) {
  return runPartialImpl(F, Plan, /*Sparse=*/nullptr, Opts);
}

TransformResult runCombined(ir::IRFunction &F,
                            const instr::FunctionPlan &Plan,
                            const Options &Opts) {
  // Split the plan: blocks carrying at least CombineThreshold probes are
  // dense (worth duplicating); the rest are guarded in place.
  std::map<int, int> ProbesPerBlock;
  for (const instr::ProbeAnchor &A : Plan.Anchors)
    if (A.Kind == instr::AnchorKind::BeforeInst)
      ++ProbesPerBlock[A.Block];

  instr::FunctionPlan Dense, Sparse;
  Dense.FuncId = Sparse.FuncId = Plan.FuncId;
  for (const instr::ProbeAnchor &A : Plan.Anchors) {
    bool IsDense = A.Kind == instr::AnchorKind::MethodEntry ||
                   ProbesPerBlock[A.Block] >= Opts.CombineThreshold;
    (IsDense ? Dense : Sparse).Anchors.push_back(A);
  }
  return runPartialImpl(F, Dense, &Sparse, Opts);
}

} // namespace sampling
} // namespace ars
