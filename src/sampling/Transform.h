//===- sampling/Transform.h - The instrumentation sampling core -*- C++ -*-===//
///
/// \file
/// Public entry point of the paper's contribution: the transformation that
/// turns an instrumented method with high overhead into a modified method
/// with low overhead (paper section 2).  Five modes:
///
///  * Baseline          - no instrumentation; yieldpoints only.  The
///                        reference all overheads are measured against.
///  * Exhaustive        - probes planted unguarded in the original code
///                        (the expensive configuration of Table 1, also
///                        used to collect perfect profiles).
///  * FullDuplication   - the paper's main algorithm: all blocks
///                        duplicated, checks on method entries + backedges,
///                        probes in the duplicated code (section 2).
///  * PartialDuplication- Full-Duplication minus top- and bottom-nodes of
///                        the duplicated-code DAG (section 3.1).
///  * NoDuplication     - every probe guarded by its own check
///                        (section 3.2).
///
/// Options toggles reproduce the paper's special configurations: the
/// entry/backedge check breakdown of Table 2, the yieldpoint optimization
/// of section 4.5, and the N-consecutive-iteration burst sampling sketched
/// in section 2.
///
//===----------------------------------------------------------------------===//

#ifndef ARS_SAMPLING_TRANSFORM_H
#define ARS_SAMPLING_TRANSFORM_H

#include "instr/Probe.h"
#include "ir/IR.h"

#include <cstdint>
#include <vector>

namespace ars {
namespace sampling {

/// Which transformation to apply.
enum class Mode : uint8_t {
  Baseline,
  Exhaustive,
  FullDuplication,
  PartialDuplication,
  NoDuplication,
  /// Section 3.2's combination: blocks dense in instrumentation are
  /// duplicated (Partial-Duplication), sparse probes are guarded in place
  /// (No-Duplication) — "allowing some code to be duplicated, while
  /// executing some additional checks at runtime".
  Combined
};

const char *modeName(Mode M);

/// Transformation knobs.
struct Options {
  Mode M = Mode::Baseline;

  /// Insert scheduler yieldpoints on method entries and backedges (on by
  /// default, as in Jalapeno).
  bool InsertYieldpoints = true;

  /// The Jalapeno-specific optimization (section 4.5): remove yieldpoints
  /// from the checking code — the counter check subsumes the yield test —
  /// and keep them in the duplicated code.  Only meaningful for
  /// Full/Partial-Duplication.
  bool YieldpointOpt = false;

  /// Table 2 breakdown switches: insert only one kind of check.
  bool EntryChecks = true;
  bool BackedgeChecks = true;

  /// Table 2 breakdown also measures checks without duplicating any code
  /// (that configuration cannot sample; see the paper's footnote 2).
  bool DuplicateCode = true;

  /// N-consecutive-iteration sampling (section 2): when positive, a taken
  /// sample stays in duplicated code for this many loop iterations via a
  /// counted backedge (BurstTransfer) instead of returning after one.
  int BurstLength = 0;

  /// Combined mode: a block whose BeforeInst probe count is at least this
  /// threshold is treated as dense (duplicated); sparser probes are
  /// guarded in place.  Method-entry probes always go to the duplicated
  /// side.
  int CombineThreshold = 3;

  /// Post-transform check optimizer (sampling/Coalesce.h).  CoalesceChecks
  /// merges same-block guarded-probe checks of equal multiplicity into one
  /// check decrementing by the group's static weight; HoistLoopProbes
  /// moves probes out of exactly-counted loops, one execution recording
  /// trip-count-many events.  Both preserve Property 1 and are exact at
  /// sample interval 1; off by default.
  bool CoalesceChecks = false;
  bool HoistLoopProbes = false;
};

/// What the transform did (per function).
struct TransformStats {
  int OrigBlocks = 0;
  int FinalBlocks = 0;
  int OrigSize = 0;  ///< instruction count before
  int FinalSize = 0; ///< instruction count after
  int EntryChecks = 0;
  int BackedgeChecks = 0;
  int BoundaryChecks = 0; ///< Partial-Duplication top-boundary checks
  int Probes = 0;
  int GuardedProbes = 0;
  int DupBlocksKept = 0;
  int DupBlocksRemoved = 0;
  int Backedges = 0;
  bool Reducible = true;
  // Check-optimizer counters (sampling/Coalesce.h); all stay zero unless
  // Options::CoalesceChecks / HoistLoopProbes are set.
  int ChecksCoalesced = 0; ///< guarded checks merged away (k-1 per group)
  int ChecksHoisted = 0;   ///< guarded probes moved out of counted loops
  int ProbesHoisted = 0;   ///< unguarded probes moved out of counted loops
  int ProbesDropped = 0;   ///< probes removed from zero-trip loop bodies
};

/// Role of each final block, used by the Property-1 checker and tests.
enum class BlockRole : uint8_t {
  Checking,    ///< original code (possibly minus yieldpoints)
  Duplicated,  ///< copy carrying the instrumentation
  Check,       ///< backedge or boundary check block
  Transfer,    ///< duplicated-code backedge exit back to checking code
  PreEntry,    ///< checking-code method prologue (yieldpoint/entry check)
  DupPreEntry  ///< duplicated-code method prologue (entry probes)
};

/// Transform result: statistics plus the per-block role map (indexed by
/// final block id; kept consistent through internal compaction).
struct TransformResult {
  TransformStats Stats;
  std::vector<BlockRole> Roles;
};

/// Applies \p Opts.M to \p F in place.  \p Plan anchors the probes in
/// pre-transform coordinates (ignored by Baseline).  Probe costs are paid
/// at execution time, so the transform only plants probe ids.
TransformResult transformFunction(ir::IRFunction &F,
                                  const instr::FunctionPlan &Plan,
                                  const Options &Opts);

} // namespace sampling
} // namespace ars

#endif // ARS_SAMPLING_TRANSFORM_H
