//===- sampling/FullDuplication.cpp - Section 2 algorithm -----*- C++ -*-===//
///
/// \file
/// Full-Duplication: duplicate every block, plant all probes in the
/// duplicated code, redirect duplicated backedges back to checking code,
/// and place counter-based checks on method entries and backedges of the
/// checking code.  Guarantees Property 1.
///
//===----------------------------------------------------------------------===//

#include "sampling/CheckPlacement.h"

#include <cassert>

namespace ars {
namespace sampling {

using ir::IRInst;
using ir::IROp;

TransformResult runFullDuplication(ir::IRFunction &F,
                                   const instr::FunctionPlan &Plan,
                                   const Options &Opts) {
  TransformContext Ctx(F, Plan, Opts);
  int OrigEntry = F.Entry;
  bool Yieldpoints = Opts.InsertYieldpoints;
  bool CheckingYieldpoints = Yieldpoints && !Opts.YieldpointOpt;
  bool DupYieldpoints = Yieldpoints && Opts.YieldpointOpt;

  std::vector<IRInst> EntryProbes;
  int DupEntryTarget = -1;

  if (Opts.DuplicateCode) {
    duplicateBlocks(Ctx);
    EntryProbes = plantProbes(Ctx, Ctx.N, IROp::Probe);
    splitCheckingBackedges(Ctx, CheckingYieldpoints, Opts.BackedgeChecks,
                           nullptr);
    redirectDupBackedges(Ctx);

    // The duplicated-code prologue: entry probes (executed once per entry
    // sample, even when the duplicated entry block is a loop header) and,
    // under the yieldpoint optimization, the relocated entry yieldpoint.
    DupEntryTarget = OrigEntry + Ctx.N;
    if (!EntryProbes.empty() || DupYieldpoints) {
      int DE = Ctx.newBlock(BlockRole::DupPreEntry);
      ir::BasicBlock &BB = Ctx.F.Blocks[DE];
      if (DupYieldpoints)
        BB.Insts.push_back(IRInst(IROp::Yieldpoint));
      Ctx.Result.Stats.Probes += static_cast<int>(EntryProbes.size());
      for (IRInst &P : EntryProbes)
        BB.Insts.push_back(std::move(P));
      IRInst Jump(IROp::Jump);
      Jump.Imm = OrigEntry + Ctx.N;
      BB.Insts.push_back(Jump);
      DupEntryTarget = DE;
    }
  } else {
    // Table 2 breakdown configuration: checks only, no duplicated code.
    // The plan must be empty — this configuration cannot sample.
    assert(Plan.empty() && "checks-only configuration cannot carry probes");
    splitCheckingBackedges(Ctx, CheckingYieldpoints, Opts.BackedgeChecks,
                           nullptr);
  }

  buildPreEntry(Ctx, DupEntryTarget, CheckingYieldpoints, Opts.EntryChecks,
                {});

  Ctx.Result.Stats.DupBlocksKept = Opts.DuplicateCode ? Ctx.N : 0;
  Ctx.Result.Stats.FinalBlocks = F.numBlocks();
  Ctx.Result.Stats.FinalSize = F.codeSize();
  return Ctx.Result;
}

} // namespace sampling
} // namespace ars
