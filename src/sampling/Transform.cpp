//===- sampling/Transform.cpp - Mode dispatch -----------------*- C++ -*-===//

#include "sampling/Transform.h"

#include "sampling/CheckPlacement.h"

#include <map>
#include <utility>

namespace ars {
namespace sampling {

const char *modeName(Mode M) {
  switch (M) {
  case Mode::Baseline:           return "baseline";
  case Mode::Exhaustive:         return "exhaustive";
  case Mode::FullDuplication:    return "full-duplication";
  case Mode::PartialDuplication: return "partial-duplication";
  case Mode::NoDuplication:      return "no-duplication";
  case Mode::Combined:           return "combined";
  }
  return "<bad mode>";
}

namespace {

/// Splits every CFG edge carrying an OnEdge anchor with a fresh block
/// (containing only a jump) and rewrites the anchors as BeforeInst anchors
/// into that block.  Run before any transform, so edge probes flow through
/// the ordinary machinery: the split block is duplicated like any other,
/// and when the edge is a backedge the duplicated copy sits exactly on the
/// duplicated-code exit transfer — where the paper attaches
/// backedge-associated instrumentation.
void splitAnchoredEdges(ir::IRFunction &F, instr::FunctionPlan &Plan) {
  // (From, To) -> split block id, created lazily in anchor order.
  std::map<std::pair<int, int>, int> SplitBlocks;
  for (instr::ProbeAnchor &A : Plan.Anchors) {
    if (A.Kind != instr::AnchorKind::OnEdge)
      continue;
    int From = A.Block;
    int To = A.InstIdx;
    auto It = SplitBlocks.find({From, To});
    if (It == SplitBlocks.end()) {
      int E = F.addBlock();
      ir::IRInst Jump(ir::IROp::Jump);
      Jump.Imm = To;
      F.Blocks[E].Insts.push_back(Jump);
      ir::retargetTerminator(F.Blocks[From].terminator(), To, E);
      It = SplitBlocks.emplace(std::make_pair(From, To), E).first;
    }
    A.Kind = instr::AnchorKind::BeforeInst;
    A.Block = It->second;
    A.InstIdx = 0;
  }
}

bool hasEdgeAnchors(const instr::FunctionPlan &Plan) {
  for (const instr::ProbeAnchor &A : Plan.Anchors)
    if (A.Kind == instr::AnchorKind::OnEdge)
      return true;
  return false;
}

} // namespace

TransformResult transformFunction(ir::IRFunction &F,
                                  const instr::FunctionPlan &Plan,
                                  const Options &Opts) {
  if (hasEdgeAnchors(Plan)) {
    instr::FunctionPlan Rewritten = Plan;
    splitAnchoredEdges(F, Rewritten);
    return transformFunction(F, Rewritten, Opts);
  }
  switch (Opts.M) {
  case Mode::Baseline:
    return runBaseline(F, Plan, Opts);
  case Mode::Exhaustive:
    return runExhaustive(F, Plan, Opts);
  case Mode::FullDuplication:
    return runFullDuplication(F, Plan, Opts);
  case Mode::PartialDuplication:
    return runPartialDuplication(F, Plan, Opts);
  case Mode::NoDuplication:
    return runNoDuplication(F, Plan, Opts);
  case Mode::Combined:
    return runCombined(F, Plan, Opts);
  }
  return TransformResult();
}

} // namespace sampling
} // namespace ars
