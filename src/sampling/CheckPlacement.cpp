//===- sampling/CheckPlacement.cpp ----------------------------*- C++ -*-===//

#include "sampling/CheckPlacement.h"

#include <algorithm>
#include <cassert>

namespace ars {
namespace sampling {

using ir::BasicBlock;
using ir::IRInst;
using ir::IROp;

TransformContext::TransformContext(ir::IRFunction &F,
                                   const instr::FunctionPlan &Plan,
                                   const Options &Opts)
    : F(F), Plan(Plan), Opts(Opts) {
  N = F.numBlocks();
  BI = analysis::findBackedges(F);
  Result.Roles.assign(N, BlockRole::Checking);
  Result.Stats.OrigBlocks = N;
  Result.Stats.OrigSize = F.codeSize();
  Result.Stats.Backedges = static_cast<int>(BI.Backedges.size());
  Result.Stats.Reducible = BI.Reducible;
}

int TransformContext::newBlock(BlockRole Role) {
  int Id = F.addBlock();
  Result.Roles.push_back(Role);
  assert(Result.Roles.size() == F.Blocks.size() && "role map out of sync");
  return Id;
}

void duplicateBlocks(TransformContext &Ctx) {
  ir::IRFunction &F = Ctx.F;
  int N = Ctx.N;
  for (int B = 0; B != N; ++B) {
    int Id = Ctx.newBlock(BlockRole::Duplicated);
    // Copy after newBlock: addBlock may reallocate the vector.
    BasicBlock &Dup = F.Blocks[Id];
    const BasicBlock &Orig = F.Blocks[B];
    Dup.Insts = Orig.Insts;
    IRInst &Term = Dup.terminator();
    int Targets[2];
    int Count = 0;
    ir::terminatorTargets(Term, Targets, &Count);
    // Shift each distinct target once (retargetTerminator rewrites every
    // matching slot, so handle duplicated slots by retargeting the first
    // occurrence only — both slots share the value, so one call suffices).
    if (Count >= 1)
      ir::retargetTerminator(Term, Targets[0], Targets[0] + N);
    if (Count == 2 && Targets[1] != Targets[0])
      ir::retargetTerminator(Term, Targets[1], Targets[1] + N);
  }
}

std::vector<ir::IRInst> plantProbes(TransformContext &Ctx, int BlockOffset,
                                    ir::IROp ProbeOp) {
  return plantProbes(Ctx, Ctx.Plan, BlockOffset, ProbeOp);
}

std::vector<ir::IRInst> plantProbes(TransformContext &Ctx,
                                    const instr::FunctionPlan &Plan,
                                    int BlockOffset, ir::IROp ProbeOp) {
  assert((ProbeOp == IROp::Probe || ProbeOp == IROp::GuardedProbe) &&
         "probes must be planted as Probe or GuardedProbe");
  std::vector<IRInst> EntryProbes;

  // Group BeforeInst anchors per block and insert back-to-front so indices
  // stay valid.
  std::vector<instr::ProbeAnchor> Before;
  for (const instr::ProbeAnchor &A : Plan.Anchors) {
    if (A.Kind == instr::AnchorKind::MethodEntry) {
      IRInst P(ProbeOp);
      P.Imm = A.ProbeId;
      EntryProbes.push_back(P);
      continue;
    }
    assert(A.Kind == instr::AnchorKind::BeforeInst &&
           "OnEdge anchors must be rewritten before the transform runs");
    Before.push_back(A);
  }
  std::stable_sort(Before.begin(), Before.end(),
                   [](const instr::ProbeAnchor &A,
                      const instr::ProbeAnchor &B) {
                     if (A.Block != B.Block)
                       return A.Block < B.Block;
                     return A.InstIdx > B.InstIdx; // descending within block
                   });
  for (const instr::ProbeAnchor &A : Before) {
    BasicBlock &BB = Ctx.F.Blocks[A.Block + BlockOffset];
    assert(A.InstIdx >= 0 &&
           A.InstIdx <= static_cast<int>(BB.Insts.size()) &&
           "anchor index out of range");
    IRInst P(ProbeOp);
    P.Imm = A.ProbeId;
    BB.Insts.insert(BB.Insts.begin() + A.InstIdx, P);
    if (ProbeOp == IROp::Probe)
      ++Ctx.Result.Stats.Probes;
    else
      ++Ctx.Result.Stats.GuardedProbes;
  }
  return EntryProbes;
}

std::vector<char> instrumentedBlocks(const TransformContext &Ctx,
                                     const instr::FunctionPlan &Plan) {
  std::vector<char> Marked(Ctx.N, 0);
  for (const instr::ProbeAnchor &A : Plan.Anchors) {
    if (A.Kind == instr::AnchorKind::MethodEntry)
      continue; // entry probes live in the DupPreEntry block, not a node
    assert(A.Block >= 0 && A.Block < Ctx.N && "anchor outside original CFG");
    Marked[A.Block] = 1;
  }
  return Marked;
}

void buildPreEntry(TransformContext &Ctx, int DupEntryTarget,
                   bool WithYieldpoint, bool WithCheck,
                   std::vector<ir::IRInst> ExtraLeading) {
  if (!WithYieldpoint && !WithCheck && ExtraLeading.empty())
    return;
  int OldEntry = Ctx.F.Entry;
  int E = Ctx.newBlock(BlockRole::PreEntry);
  BasicBlock &BB = Ctx.F.Blocks[E];
  BB.Insts = std::move(ExtraLeading);
  if (WithYieldpoint)
    BB.Insts.push_back(IRInst(IROp::Yieldpoint));
  if (WithCheck) {
    IRInst Check(IROp::SampleCheck);
    Check.Imm = DupEntryTarget >= 0 ? DupEntryTarget : OldEntry;
    Check.Aux = OldEntry;
    BB.Insts.push_back(Check);
    ++Ctx.Result.Stats.EntryChecks;
  } else {
    IRInst Jump(IROp::Jump);
    Jump.Imm = OldEntry;
    BB.Insts.push_back(Jump);
  }
  Ctx.F.Entry = E;
}

void splitCheckingBackedges(TransformContext &Ctx, bool WithYieldpoint,
                            bool WithChecks,
                            const std::vector<char> *DupHeaderKept) {
  Ctx.BackedgeReturn.clear();
  for (const analysis::Edge &E : Ctx.BI.Backedges) {
    bool Check = WithChecks;
    if (Check && DupHeaderKept && !(*DupHeaderKept)[E.To])
      Check = false; // Partial-Duplication removed this check's target
    if (!Check && !WithYieldpoint) {
      Ctx.BackedgeReturn.push_back(E.To);
      continue; // nothing to place on this backedge
    }

    int C = Ctx.newBlock(BlockRole::Check);
    BasicBlock &BB = Ctx.F.Blocks[C];
    if (WithYieldpoint)
      BB.Insts.push_back(IRInst(IROp::Yieldpoint));
    if (Check) {
      IRInst CheckInst(IROp::SampleCheck);
      CheckInst.Imm = Ctx.Opts.DuplicateCode ? E.To + Ctx.N : E.To;
      CheckInst.Aux = E.To;
      BB.Insts.push_back(CheckInst);
      ++Ctx.Result.Stats.BackedgeChecks;
    } else {
      IRInst Jump(IROp::Jump);
      Jump.Imm = E.To;
      BB.Insts.push_back(Jump);
    }
    ir::retargetTerminator(Ctx.F.Blocks[E.From].terminator(), E.To, C);
    Ctx.BackedgeReturn.push_back(C);
  }
}

void redirectDupBackedges(TransformContext &Ctx,
                          const std::vector<char> *DupHeaderKept) {
  assert(Ctx.BackedgeReturn.size() == Ctx.BI.Backedges.size() &&
         "splitCheckingBackedges must run first");
  bool DupYieldpoints = Ctx.Opts.InsertYieldpoints && Ctx.Opts.YieldpointOpt;
  for (size_t I = 0; I != Ctx.BI.Backedges.size(); ++I) {
    const analysis::Edge &E = Ctx.BI.Backedges[I];
    int DupFrom = E.From + Ctx.N;
    int DupTo = E.To + Ctx.N;
    int Return = Ctx.BackedgeReturn[I];
    bool HeaderKept = !DupHeaderKept || (*DupHeaderKept)[E.To];
    bool WantBurst = Ctx.Opts.BurstLength > 0 && HeaderKept;

    if (!DupYieldpoints && !WantBurst) {
      // The edge carries nothing: return to checking code directly.
      ir::retargetTerminator(Ctx.F.Blocks[DupFrom].terminator(), DupTo,
                             Return);
      continue;
    }
    int T = Ctx.newBlock(BlockRole::Transfer);
    BasicBlock &BB = Ctx.F.Blocks[T];
    if (DupYieldpoints)
      BB.Insts.push_back(IRInst(IROp::Yieldpoint));
    if (WantBurst) {
      IRInst Burst(IROp::BurstTransfer);
      Burst.Imm = DupTo;  // stay in duplicated code while the burst lasts
      Burst.Aux = Return; // then return to the checking code
      BB.Insts.push_back(Burst);
    } else {
      IRInst Jump(IROp::Jump);
      Jump.Imm = Return;
      BB.Insts.push_back(Jump);
    }
    ir::retargetTerminator(Ctx.F.Blocks[DupFrom].terminator(), DupTo, T);
  }
}

void compactReachable(TransformContext &Ctx) {
  ir::IRFunction &F = Ctx.F;
  int Total = F.numBlocks();
  std::vector<char> Reachable(Total, 0);
  std::vector<int> Work;
  Reachable[F.Entry] = 1;
  Work.push_back(F.Entry);
  while (!Work.empty()) {
    int B = Work.back();
    Work.pop_back();
    int Targets[2];
    int Count = 0;
    ir::terminatorTargets(F.Blocks[B].terminator(), Targets, &Count);
    for (int T = 0; T != Count; ++T)
      if (!Reachable[Targets[T]]) {
        Reachable[Targets[T]] = 1;
        Work.push_back(Targets[T]);
      }
  }

  std::vector<int> NewId(Total, -1);
  int Next = 0;
  for (int B = 0; B != Total; ++B)
    if (Reachable[B])
      NewId[B] = Next++;
  if (Next == Total)
    return;

  std::vector<BasicBlock> Kept;
  std::vector<BlockRole> KeptRoles;
  Kept.reserve(Next);
  KeptRoles.reserve(Next);
  for (int B = 0; B != Total; ++B) {
    if (!Reachable[B])
      continue;
    BasicBlock BB = std::move(F.Blocks[B]);
    BB.Id = NewId[B];
    ir::remapTerminatorTargets(BB.terminator(), NewId);
    Kept.push_back(std::move(BB));
    KeptRoles.push_back(Ctx.Result.Roles[B]);
  }
  F.Blocks = std::move(Kept);
  F.Entry = NewId[F.Entry];
  Ctx.Result.Roles = std::move(KeptRoles);
}

} // namespace sampling
} // namespace ars
