//===- sampling/Property1.cpp ---------------------------------*- C++ -*-===//

#include "sampling/Property1.h"

#include "support/Support.h"

#include <vector>

using ars::support::formatString;

namespace ars {
namespace sampling {

using ir::BasicBlock;
using ir::IRInst;
using ir::IROp;

int countOps(const ir::IRFunction &F, IROp Op) {
  int Count = 0;
  for (const BasicBlock &BB : F.Blocks)
    for (const IRInst &I : BB.Insts)
      if (I.Op == Op)
        ++Count;
  return Count;
}

namespace {

bool isDupRole(BlockRole R) {
  return R == BlockRole::Duplicated || R == BlockRole::DupPreEntry;
}

/// Cycle detection over the duplicated-code subgraph.  BurstTransfer edges
/// back into duplicated code are the deliberate counted backedges of the
/// N-iteration extension and are excluded.
bool dupCodeHasCycle(const ir::IRFunction &F,
                     const std::vector<BlockRole> &Roles) {
  int N = F.numBlocks();
  // Colors: 0 = unvisited, 1 = on stack, 2 = done.
  std::vector<char> Color(N, 0);
  for (int Start = 0; Start != N; ++Start) {
    if (!isDupRole(Roles[Start]) || Color[Start])
      continue;
    std::vector<std::pair<int, int>> Stack; // (block, next target index)
    Color[Start] = 1;
    Stack.emplace_back(Start, 0);
    while (!Stack.empty()) {
      int B = Stack.back().first;
      int Targets[2];
      int Count = 0;
      ir::terminatorTargets(F.Blocks[B].terminator(), Targets, &Count);
      bool Pushed = false;
      while (Stack.back().second < Count) {
        int T = Targets[Stack.back().second++];
        // Follow only edges that stay inside duplicated code.  Edges into
        // Transfer blocks exit the duplicated code (their BurstTransfer
        // re-entry is the intentional counted backedge of the N-iteration
        // extension and is not traversed because Transfer blocks are never
        // visited here).
        if (!isDupRole(Roles[T]))
          continue;
        if (Color[T] == 1)
          return true;
        if (Color[T] == 0) {
          Color[T] = 1;
          Stack.emplace_back(T, 0);
          Pushed = true;
          break;
        }
      }
      if (!Pushed && Stack.back().second >= Count) {
        Color[B] = 2;
        Stack.pop_back();
      }
    }
  }
  return false;
}

} // namespace

std::string checkProperty1Static(const ir::IRFunction &F,
                                 const TransformResult &Result,
                                 const Options &Opts) {
  const std::vector<BlockRole> &Roles = Result.Roles;
  if (Roles.size() != static_cast<size_t>(F.numBlocks()))
    return formatString("%s: role map size %zu != block count %d",
                        F.Name.c_str(), Roles.size(), F.numBlocks());

  bool Dup = Opts.M == Mode::FullDuplication ||
             Opts.M == Mode::PartialDuplication ||
             Opts.M == Mode::Combined;

  for (const BasicBlock &BB : F.Blocks) {
    BlockRole Role = Roles[BB.Id];
    int Checks = 0, Yields = 0;
    for (const IRInst &I : BB.Insts) {
      switch (I.Op) {
      case IROp::SampleCheck: {
        ++Checks;
        if (Role != BlockRole::Check && Role != BlockRole::PreEntry)
          return formatString("%s bb%d: check outside a check/entry block",
                              F.Name.c_str(), BB.Id);
        if (Dup && Opts.DuplicateCode) {
          int Taken = static_cast<int>(I.Imm);
          if (!isDupRole(Roles[Taken]))
            return formatString("%s bb%d: check taken-target bb%d is not "
                                "duplicated code",
                                F.Name.c_str(), BB.Id, Taken);
          if (Roles[I.Aux] != BlockRole::Checking)
            return formatString("%s bb%d: check continue-target bb%d is "
                                "not checking code",
                                F.Name.c_str(), BB.Id, I.Aux);
        }
        break;
      }
      case IROp::Probe:
        if (Dup && !isDupRole(Role))
          return formatString("%s bb%d: probe outside duplicated code",
                              F.Name.c_str(), BB.Id);
        if (Opts.M == Mode::NoDuplication)
          return formatString("%s bb%d: unguarded probe under "
                              "No-Duplication",
                              F.Name.c_str(), BB.Id);
        break;
      case IROp::GuardedProbe:
        if (Opts.M != Mode::NoDuplication && Opts.M != Mode::Combined)
          return formatString("%s bb%d: guarded probe outside "
                              "No-Duplication/Combined",
                              F.Name.c_str(), BB.Id);
        if (Opts.M == Mode::Combined && isDupRole(Role))
          return formatString("%s bb%d: guarded probe inside duplicated "
                              "code",
                              F.Name.c_str(), BB.Id);
        break;
      case IROp::Yieldpoint:
        ++Yields;
        if (Opts.YieldpointOpt && Dup &&
            (Role == BlockRole::Checking || Role == BlockRole::Check ||
             Role == BlockRole::PreEntry))
          return formatString("%s bb%d: yieldpoint left in checking code "
                              "despite the yieldpoint optimization",
                              F.Name.c_str(), BB.Id);
        break;
      default:
        break;
      }
    }
    if (Checks > 1)
      return formatString("%s bb%d: multiple checks in one block",
                          F.Name.c_str(), BB.Id);
    if (Yields > 1)
      return formatString("%s bb%d: multiple yieldpoints in one block",
                          F.Name.c_str(), BB.Id);
  }

  if (Dup && dupCodeHasCycle(F, Roles))
    return formatString("%s: duplicated code contains a backedge",
                        F.Name.c_str());

  return std::string();
}

} // namespace sampling
} // namespace ars
