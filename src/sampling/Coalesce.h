//===- sampling/Coalesce.h - Check coalescing and probe hoisting *- C++ -*-===//
///
/// \file
/// Post-transform pass that cuts the number of dynamic sample checks
/// without changing what gets recorded:
///
///  * Check coalescing - several GuardedProbes in the same basic block
///    whose bodies have equal multiplicity merge into one GuardedProbe
///    that decrements the sample counter by the group's combined static
///    weight and, when it fires, runs every body.  k checks become 1.
///
///  * Loop probe hoisting - a probe in an exactly-counted loop (see
///    analysis/TripCount.h) moves to a new preheader on the loop's entry
///    edge, with its check weight set to the trip count: one execution
///    records trip-count-many events.
///
/// Both are exact at sample interval 1 (a weighted decrement of W >= 1
/// drives a counter at 1 nonpositive, exactly as W unit decrements fire W
/// times) and only ever *reduce* CheckExecs, so Property 1 is preserved.
/// At larger intervals the sampled profile remains an unbiased weighting
/// of the same events; only the clustering of samples changes.
///
/// The pass runs on transformed IR.  Duplicated code is acyclic after
/// duplication and Full/Partial-Duplication checking loops carry
/// SampleCheck exits on their backedges, so hoisting naturally applies
/// only to Exhaustive probes and No-Duplication/Combined guarded probes
/// in checking code; it never touches the duplicated-code invariants the
/// Property-1 checker enforces.
///
//===----------------------------------------------------------------------===//

#ifndef ARS_SAMPLING_COALESCE_H
#define ARS_SAMPLING_COALESCE_H

#include "ir/IR.h"
#include "sampling/Transform.h"

namespace ars {
namespace sampling {

/// Applies the check optimizer to \p F in place, honouring
/// \p Opts.CoalesceChecks and \p Opts.HoistLoopProbes.  Updates
/// \p Result's statistics (ChecksCoalesced / ChecksHoisted /
/// ProbesHoisted / ProbesDropped) and extends Result.Roles for any
/// preheader blocks it creates.  No-op when both options are off.
void coalesceChecks(ir::IRFunction &F, const instr::ProbeRegistry &Probes,
                    const Options &Opts, TransformResult &Result);

} // namespace sampling
} // namespace ars

#endif // ARS_SAMPLING_COALESCE_H
