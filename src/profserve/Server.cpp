//===- profserve/Server.cpp -----------------------------------*- C++ -*-===//

#include "profserve/Server.h"

#include "profstore/ProfileIO.h"
#include "profstore/ProfileStore.h"
#include "support/Binary.h"
#include "support/Compress.h"
#include "support/Support.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <exception>

namespace ars {
namespace profserve {

ProfileServer::ProfileServer(std::unique_ptr<Listener> L, ServerConfig C)
    : L(std::move(L)), Config(C), Agg(C.Stripes) {
  FingerprintValue = Config.Fingerprint;
}

ProfileServer::~ProfileServer() { stop(); }

void ProfileServer::start() {
  if (Config.RecoverOnStart &&
      (!Config.SnapshotPath.empty() || !Config.JournalPath.empty()))
    recoverOnStart();

  if (!Config.JournalPath.empty()) {
    if (!Config.RecoverOnStart)
      // A fresh-state server must not later replay another lifetime's
      // records on top of state they are not relative to.
      profstore::Journal::wipe(Config.JournalPath);
    profstore::Journal::Config JC;
    JC.BasePath = Config.JournalPath;
    JC.MaxSegmentBytes = Config.JournalMaxSegmentBytes;
    JC.Fsync = Config.JournalFsync;
    JC.CrashHook = Config.CrashHook;
    Wal = std::make_unique<profstore::Journal>(JC);
    std::string JErr;
    profstore::AppliedSeqMap Applied;
    {
      std::lock_guard<std::mutex> Lock(StateMu);
      Applied = AppliedSeqs;
    }
    if (!Wal->open(RecoveredSnapHash, Applied, &JErr)) {
      // Serving without the journal beats not serving; the operator
      // sees the degradation in STATS (JournalFailures) and stderr.
      if (Config.LogToStderr)
        std::fprintf(stderr, "profserve: journal open failed: %s\n",
                     JErr.c_str());
      std::lock_guard<std::mutex> Lock(StateMu);
      ++Stats.JournalFailures;
      Wal.reset();
    }
  }

  if (Config.Policy.Enabled)
    Watcher =
        std::make_unique<policy::ConvergenceWatcher>(Config.Policy.Watcher);

  if (Config.Relay.enabled()) {
    ClientConfig CC = Config.Relay.Client;
    if (CC.Fingerprint == 0)
      CC.Fingerprint = Config.Fingerprint;
    if (CC.SessionId == 0)
      // Derive a stable nonzero id.  Siblings under one parent must not
      // collide (dedup keys on it), so real deployments configure it;
      // the derivation covers single-relay setups.
      CC.SessionId =
          0xA5A5000000000000ULL |
          support::crc32(Config.SnapshotPath.data(),
                         Config.SnapshotPath.size());
    if (CC.SpillPath.empty())
      // Exactly-once needs the spill: a delta whose push half-landed may
      // only be retried under its ORIGINAL sequence number.
      CC.SpillPath = Config.SnapshotPath.empty()
                         ? "arsc-relay.spill"
                         : Config.SnapshotPath + ".relay-spill";
    std::vector<Dialer> Parents;
    Parents.push_back(Config.Relay.Dial);
    Parents.insert(Parents.end(), Config.Relay.BackupDials.begin(),
                   Config.Relay.BackupDials.end());
    Upstream = std::make_unique<ProfileClient>(std::move(Parents), CC);
    // Relay-tree push-down: POLICY frames the parent sends during our
    // upstream flushes are re-broadcast to our own children.  The
    // handler runs on whatever thread drives the upstream client (the
    // flusher, or stop()'s final flush) — forwardPolicy only takes
    // PolicyMu and the reactor's queue locks, so there is no cycle.
    Upstream->onPolicy(
        [this](const PolicyMsg &M) { forwardPolicy(M); });
  }

  Reactor::Config RC;
  RC.Threads = Config.Workers;
  RC.RecvTimeoutMs = Config.RecvTimeoutMs;
  RC.SendTimeoutMs = Config.SendTimeoutMs;
  RC.MaxFramePayload = Config.MaxFramePayload;
  Reactor::Hooks H;
  H.OnFrame = [this](Reactor::Conn &C, Frame &&F) -> Reactor::FrameAction {
    try {
      return handleFrame(C, std::move(F));
    } catch (const std::exception &E) {
      // Never let a handler exception take a reactor thread (and every
      // connection it owns) down with it.
      std::string Why = std::string("handler exception: ") + E.what();
      bumpReject(Why, C.peer());
      Reactor::FrameAction A;
      A.Reply =
          encodeFrame(MsgType::Error, encodeError(ErrCode::Generic, Why));
      A.Close = true;
      return A;
    }
  };
  H.OnStreamError = [this](Reactor::Conn &C, FrameStatus,
                           const std::string &Why) {
    // Timeout, truncation, CRC mismatch, oversized length, transport
    // death: the byte stream can no longer be trusted to be framed, so
    // answer with a diagnostic (best effort) and drop the connection.
    bumpReject(Why, C.peer());
    return encodeFrame(MsgType::Error, encodeError(ErrCode::BadFrame, Why));
  };
  R = std::make_unique<Reactor>(RC, std::move(H));
  R->start();

  Acceptor = std::thread([this] { acceptLoop(); });
  if (Config.SnapshotIntervalMs > 0 && !Config.SnapshotPath.empty())
    Snapshotter = std::thread([this] { snapshotLoop(); });
  if (Upstream && (Config.Relay.FlushIntervalMs > 0 ||
                   Config.Relay.FlushEveryMerges > 0))
    Flusher = std::thread([this] { flusherLoop(); });
  Started = true;
}

void ProfileServer::stop() {
  {
    std::lock_guard<std::mutex> Lock(SnapMu);
    if (Stopping)
      return;
    Stopping = true;
    SnapCv.notify_all();
  }
  if (!Started)
    return;
  // Intake first, then the reactors (closing every live connection with
  // its OnClose bookkeeping), then the background threads.
  L->shutdown();
  if (Acceptor.joinable())
    Acceptor.join();
  if (R)
    R->stop();
  {
    std::lock_guard<std::mutex> Lock(FlushMu);
    FlushStop = true;
  }
  FlushCv.notify_all();
  if (Flusher.joinable())
    Flusher.join();
  if (Snapshotter.joinable())
    Snapshotter.join();
  // Relay: push whatever the reactors merged since the last flush, so a
  // graceful shutdown never strands a delta below the root.
  if (Upstream) {
    std::string Error;
    if (!flushUpstream(&Error) && Config.LogToStderr)
      std::fprintf(stderr, "profserve: final upstream flush failed: %s\n",
                   Error.c_str());
    std::lock_guard<std::mutex> Lock(UpstreamMu);
    Upstream->close();
  }
  // Final snapshot (with a journal: also checkpoint + truncate) after
  // the drain, so the last accepted pushes are in.
  if (!Config.SnapshotPath.empty()) {
    std::string Error;
    if (!snapshotNow(&Error) && Config.LogToStderr)
      std::fprintf(stderr, "profserve: final snapshot failed: %s\n",
                   Error.c_str());
  }
  if (Wal)
    Wal->close();
}

void ProfileServer::kill() {
  {
    std::lock_guard<std::mutex> Lock(SnapMu);
    if (Stopping)
      return;
    Stopping = true;
    SnapCv.notify_all();
  }
  if (!Started)
    return;
  L->shutdown();
  if (Acceptor.joinable())
    Acceptor.join();
  if (R)
    R->stop();
  {
    std::lock_guard<std::mutex> Lock(FlushMu);
    FlushStop = true;
  }
  FlushCv.notify_all();
  if (Flusher.joinable())
    Flusher.join();
  if (Snapshotter.joinable())
    Snapshotter.join();
  // No drain, no farewell, no snapshot, no checkpoint: what the journal
  // and snapshot files hold right now is all a successor gets.
  if (Upstream) {
    std::lock_guard<std::mutex> Lock(UpstreamMu);
    Upstream->close();
  }
  if (Wal)
    Wal->close();
}

void ProfileServer::recoverOnStart() {
  if (!Config.SnapshotPath.empty()) {
    // A crash mid-save can leave a stale tmp file; never valid state.
    std::remove((Config.SnapshotPath + ".tmp").c_str());
    const std::string Candidates[] = {Config.SnapshotPath,
                                      Config.SnapshotPath + ".prev"};
    for (const std::string &Path : Candidates) {
      // loadBundle validates magic, CRC and (when pinned) the
      // fingerprint; a torn or corrupt file falls through to .prev.
      profstore::DecodeResult D =
          profstore::loadBundle(Path, Config.Fingerprint);
      if (!D.Ok)
        continue;
      // The journal's checkpoints name snapshots by the CRC of their
      // raw file bytes; remember which one we actually loaded so the
      // replay starts at the matching checkpoint.
      std::string Raw;
      if (profstore::ioutil::readFileRaw(Path, &Raw))
        // fnv1a64, not crc32: the snapshot's own CRC trailer makes
        // crc32-of-file the constant residue 0x2144DF1C for EVERY valid
        // snapshot, which would match every checkpoint record (see
        // Journal.h).
        RecoveredSnapHash = support::fnv1a64(Raw.data(), Raw.size());
      std::lock_guard<std::mutex> Lock(StateMu);
      EpochBase = std::move(D.Bundle);
      if (FingerprintValue == 0)
        FingerprintValue = D.Fingerprint;
      ++Stats.Recovered;
      if (Config.LogToStderr)
        std::fprintf(stderr, "profserve: recovered snapshot from %s\n",
                     Path.c_str());
      break;
    }
  }

  if (Config.JournalPath.empty())
    return;
  profstore::Journal::Recovery Rec =
      profstore::Journal::recover(Config.JournalPath, RecoveredSnapHash);
  if (!Rec.HadSegments)
    return;
  if (!Rec.Matched) {
    // The journal does not correspond to the snapshot we loaded (e.g.
    // the snapshot survived a wiped journal, or vice versa).  Replaying
    // unrelated records would corrupt the aggregate; drop the journal
    // and continue from the snapshot alone.
    if (Config.LogToStderr)
      std::fprintf(stderr,
                   "profserve: journal at %s matches no loaded snapshot "
                   "(%s); discarding it\n",
                   Config.JournalPath.c_str(), Rec.Error.c_str());
    profstore::Journal::wipe(Config.JournalPath);
    std::lock_guard<std::mutex> Lock(StateMu);
    ++Stats.JournalFailures;
    return;
  }
  {
    std::lock_guard<std::mutex> Lock(StateMu);
    AppliedSeqs = Rec.Applied;
  }
  for (const profstore::Journal::Record &R : Rec.Records) {
    if (R.RecKind == profstore::Journal::Record::Kind::Epoch) {
      // Re-apply the decay in journaled order, exactly where the
      // original rotation fell between the replayed shards.
      profile::ProfileBundle Drained = Agg.drain();
      std::lock_guard<std::mutex> Lock(StateMu);
      profstore::mergeBundle(EpochBase, Drained);
      profstore::decayBundle(EpochBase, R.KeepPct);
      ++Stats.Epochs;
      continue;
    }
    profstore::DecodeResult D = profstore::decodeBundle(R.Arsp, 0);
    if (!D.Ok) {
      // The record's frame CRC held but the shard doesn't decode: it
      // could never have been merged originally either.
      std::lock_guard<std::mutex> Lock(StateMu);
      ++Stats.JournalFailures;
      continue;
    }
    {
      std::lock_guard<std::mutex> Lock(StateMu);
      if (FingerprintValue == 0)
        FingerprintValue = D.Fingerprint;
      else if (D.Fingerprint != FingerprintValue) {
        ++Stats.JournalFailures;
        continue;
      }
    }
    Agg.flush(NextFlushKey.fetch_add(1, std::memory_order_relaxed),
              D.Bundle);
    std::lock_guard<std::mutex> Lock(StateMu);
    ++Stats.Merges;
    ++Stats.JournalReplayed;
  }
  if (Config.LogToStderr)
    std::fprintf(stderr,
                 "profserve: replayed %llu journaled shard(s) from %s\n",
                 static_cast<unsigned long long>(Rec.Records.size()),
                 Config.JournalPath.c_str());
}

void ProfileServer::acceptLoop() {
  for (;;) {
    std::unique_ptr<Transport> T = L->accept();
    if (!T)
      return; // listener shut down
    if (Config.MaxConnections > 0 &&
        R->active() >= static_cast<size_t>(Config.MaxConnections)) {
      // The live-connection budget is spent: refuse loudly now instead
      // of admitting unbounded per-connection state.  RETRY_AFTER tells
      // the client it is transient.
      {
        std::lock_guard<std::mutex> Lock(StateMu);
        ++Stats.Shed;
      }
      writeFrame(*T, MsgType::Error,
                 encodeError(ErrCode::RetryAfter,
                             "server overloaded: connection backlog full"));
      T->close();
      continue;
    }
    R->adopt(std::move(T));
  }
}

void ProfileServer::snapshotLoop() {
  std::unique_lock<std::mutex> Lock(SnapMu);
  while (!Stopping) {
    SnapCv.wait_for(Lock,
                    std::chrono::milliseconds(Config.SnapshotIntervalMs));
    if (Stopping)
      return;
    Lock.unlock();
    std::string Error;
    if (!snapshotNow(&Error) && Config.LogToStderr)
      std::fprintf(stderr, "profserve: snapshot failed: %s\n",
                   Error.c_str());
    Lock.lock();
  }
}

void ProfileServer::flusherLoop() {
  std::unique_lock<std::mutex> Lock(FlushMu);
  for (;;) {
    if (Config.Relay.FlushIntervalMs > 0)
      // A timeout here is the interval trigger: flush anyway.
      FlushCv.wait_for(Lock,
                       std::chrono::milliseconds(Config.Relay.FlushIntervalMs),
                       [this] { return FlushStop || FlushAsked; });
    else
      FlushCv.wait(Lock, [this] { return FlushStop || FlushAsked; });
    if (FlushStop)
      return;
    FlushAsked = false;
    Lock.unlock();
    std::string Error;
    if (!flushUpstream(&Error) && Config.LogToStderr)
      std::fprintf(stderr, "profserve: upstream flush failed: %s\n",
                   Error.c_str());
    Lock.lock();
  }
}

void ProfileServer::bumpReject(const std::string &Why,
                               const std::string &Peer) {
  {
    std::lock_guard<std::mutex> Lock(StateMu);
    ++Stats.Rejects;
  }
  if (Config.LogToStderr)
    std::fprintf(stderr, "profserve: rejected %s: %s\n", Peer.c_str(),
                 Why.c_str());
}

int ProfileServer::registerShard(uint64_t SessionId, uint64_t Seq,
                                 const profstore::DecodeResult &D,
                                 uint64_t *MergesOut) {
  std::lock_guard<std::mutex> Lock(StateMu);
  if (FingerprintValue == 0)
    FingerprintValue = D.Fingerprint; // first shard pins the module
  else if (D.Fingerprint != FingerprintValue) {
    // Raced with another first-pusher for a different module.
    ++Stats.Rejects;
    *MergesOut = Stats.Merges;
    return 2;
  }
  // Dedup runs even for the fingerprint-pinning first shard — a lost
  // ack on shard #1 retries like any other and must not double-merge.
  if (SessionId && Seq && !AppliedSeqs[SessionId].insert(Seq).second) {
    // A retry of a shard that already merged (the original ack was
    // lost mid-wire).  Acknowledge without merging — exactly-once.
    // Registration-before-merge means a racing retry on another
    // connection always lands here rather than double-merging.
    ++Stats.Duplicates;
    *MergesOut = Stats.Merges;
    return 1;
  }
  return 0;
}

void ProfileServer::unregisterShard(uint64_t SessionId, uint64_t Seq) {
  if (!SessionId || !Seq)
    return;
  std::lock_guard<std::mutex> Lock(StateMu);
  auto It = AppliedSeqs.find(SessionId);
  if (It != AppliedSeqs.end())
    It->second.erase(Seq);
}

bool ProfileServer::applyShard(const profstore::DecodeResult &D,
                               uint64_t *MergesOut) {
  Agg.flush(NextFlushKey.fetch_add(1, std::memory_order_relaxed),
            D.Bundle);
  uint64_t Merges;
  {
    std::lock_guard<std::mutex> Lock(StateMu);
    Merges = ++Stats.Merges;
  }
  MergesSinceFlush.fetch_add(1, std::memory_order_acq_rel);
  *MergesOut = Merges;
  return Config.RotateEveryMerges &&
         Merges % Config.RotateEveryMerges == 0;
}

bool ProfileServer::journalSync() {
  if (!Wal)
    return true;
  std::string Error;
  if (Wal->sync(&Error))
    return true;
  if (Config.LogToStderr)
    std::fprintf(stderr, "profserve: journal commit failed: %s\n",
                 Error.c_str());
  return false;
}

int ProfileServer::mergeShard(uint64_t SessionId, uint64_t Seq,
                              const std::string &Arsp,
                              const profstore::DecodeResult &D,
                              uint64_t *MergesOut, bool SyncJournal) {
  bool RotateDue = false;
  {
    // Shared: many pushes journal + merge concurrently; a checkpoint
    // (snapshotNow) or epoch record (rotateEpoch) excludes them all so
    // the journal can never be truncated past an unmerged record.
    std::shared_lock<std::shared_mutex> Gate(ApplyGate);
    int Registered = registerShard(SessionId, Seq, D, MergesOut);
    if (Registered != 0)
      return Registered;
    if (Wal) {
      std::string Error;
      bool Ok = Wal->appendShard(SessionId, Seq, Arsp, &Error) &&
                (!SyncJournal || Wal->sync(&Error));
      if (!Ok) {
        // Durability failed, so the shard must not be merged or acked:
        // roll the registration back and make the client retry (or
        // spill) — it can land once the journal heals or the restarted
        // server replays whatever did reach the disk.
        unregisterShard(SessionId, Seq);
        if (Config.LogToStderr)
          std::fprintf(stderr, "profserve: journal append failed: %s\n",
                       Error.c_str());
        std::lock_guard<std::mutex> Lock(StateMu);
        *MergesOut = Stats.Merges;
        return 3;
      }
    }
    RotateDue = applyShard(D, MergesOut);
  }
  // Rotation re-takes the gate exclusively, so it must run outside it.
  if (RotateDue)
    rotateEpoch();
  return 0;
}

void ProfileServer::maybeTriggerRelayFlush() {
  if (!Upstream || !Config.Relay.FlushEveryMerges)
    return;
  uint64_t N = MergesSinceFlush.load(std::memory_order_acquire);
  if (N < Config.Relay.FlushEveryMerges)
    return;
  if (!MergesSinceFlush.compare_exchange_strong(
          N, 0, std::memory_order_acq_rel))
    return; // another reactor thread claimed this trigger
  {
    std::lock_guard<std::mutex> Lock(FlushMu);
    FlushAsked = true;
  }
  FlushCv.notify_all();
}

Reactor::FrameAction ProfileServer::handleFrame(Reactor::Conn &Conn,
                                                Frame &&F) {
  {
    std::lock_guard<std::mutex> Lock(StateMu);
    ++Stats.Frames;
    Stats.Bytes += FrameHeaderSize + F.Payload.size() + FrameTrailerSize;
  }

  auto reply = [](MsgType Type, const std::string &Payload,
                  bool Close = false) {
    Reactor::FrameAction A;
    A.Reply = encodeFrame(Type, Payload);
    A.Close = Close;
    return A;
  };
  auto replyError = [&](ErrCode Code, const std::string &Why,
                        bool KeepOpen) {
    bumpReject(Why, Conn.peer());
    return reply(MsgType::Error, encodeError(Code, Why), !KeepOpen);
  };

  if (F.Type == MsgType::Hello) {
    HelloMsg Hello;
    if (!decodeHello(F.Payload, &Hello))
      return replyError(ErrCode::BadHandshake, "malformed HELLO payload",
                        false);
    if (Hello.Version < MinWireVersion || Hello.Version > WireVersion)
      return replyError(
          ErrCode::BadHandshake,
          support::formatString(
              "wire version mismatch: client speaks v%u, server v%u "
              "(accepts v%u..v%u)",
              Hello.Version, WireVersion, MinWireVersion, WireVersion),
          false);
    uint64_t Pinned = fingerprint();
    if (Hello.Fingerprint && Pinned && Hello.Fingerprint != Pinned)
      return replyError(
          ErrCode::BadHandshake,
          support::formatString(
              "module fingerprint mismatch: client %016llx, server "
              "%016llx",
              static_cast<unsigned long long>(Hello.Fingerprint),
              static_cast<unsigned long long>(Pinned)),
          false);
    Conn.SawHello = true;
    Conn.SessionId = Hello.SessionId;
    Conn.Negotiated = Hello.Version;
    HelloAckMsg Ack;
    // Echo the client's version: the session runs at ITS dialect.
    Ack.Version = Hello.Version;
    Ack.Fingerprint = Pinned;
    if (Hello.Version >= 5 && Hello.SessionId) {
      // Sequence continuity for restarted pushers: tell the session the
      // highest seq we already applied (journal recovery repopulates
      // the ledger, so this survives OUR restarts too), and the client
      // resumes past it instead of colliding with its own history.
      std::lock_guard<std::mutex> Lock(StateMu);
      auto It = AppliedSeqs.find(Hello.SessionId);
      if (It != AppliedSeqs.end())
        for (uint64_t Seq : It->second)
          Ack.LastSeq = std::max(Ack.LastSeq, Seq);
    }
    Reactor::FrameAction A =
        reply(MsgType::HelloAck, encodeHelloAck(Ack));
    if (Conn.Negotiated >= 4) {
      // Late joiner on a policy-pushing server: the current table rides
      // right behind the ack, so an engine that connects after
      // convergence starts at the decided intervals instead of the
      // static one.  v2/v3 sessions never reach here — negotiation IS
      // the policy gate.
      PolicyMsg Current = currentPolicy();
      if (Current.PolicyVersion != 0)
        A.Reply += encodeFrame(MsgType::Policy, encodePolicy(Current));
    }
    return A;
  }

  if (!Conn.SawHello)
    return replyError(ErrCode::BadHandshake,
                      support::formatString("expected HELLO before %s",
                                            msgTypeName(F.Type)),
                      false);

  switch (F.Type) {
  case MsgType::Push:
    return handlePush(Conn, F);

  case MsgType::PushBatch:
    return handlePushBatch(Conn, F);

  case MsgType::Pull: {
    std::string Bytes = profstore::encodeBundle(merged(), fingerprint());
    if (Bytes.size() > Config.MaxFramePayload)
      return replyError(
          ErrCode::Generic,
          support::formatString(
              "merged profile (%zu bytes) exceeds the %zu-byte frame cap",
              Bytes.size(), Config.MaxFramePayload),
          true);
    {
      std::lock_guard<std::mutex> Lock(StateMu);
      ++Stats.Pulls;
    }
    return reply(MsgType::PullReply, Bytes);
  }

  case MsgType::StatsReq:
    // A v2 session gets a v2-shaped payload (its decoder rejects
    // trailing bytes); v3 sessions see the batch/relay counters too.
    return reply(MsgType::StatsReply,
                 encodeStats(stats(), Conn.Negotiated ? Conn.Negotiated
                                                      : WireVersion));

  case MsgType::SnapshotReq: {
    std::string Error;
    if (!snapshotNow(&Error))
      return replyError(ErrCode::Generic, "snapshot failed: " + Error,
                        true);
    return reply(MsgType::SnapshotAck, encodeText(Config.SnapshotPath));
  }

  case MsgType::Bye: {
    Reactor::FrameAction A;
    A.Close = true;
    return A;
  }

  default:
    // Server-bound streams must never carry server-to-client types.
    return replyError(ErrCode::Generic,
                      support::formatString("unexpected %s from a client",
                                            msgTypeName(F.Type)),
                      false);
  }
}

Reactor::FrameAction ProfileServer::handlePush(Reactor::Conn &Conn,
                                               const Frame &F) {
  auto reply = [](MsgType Type, const std::string &Payload,
                  bool Close = false) {
    Reactor::FrameAction A;
    A.Reply = encodeFrame(Type, Payload);
    A.Close = Close;
    return A;
  };
  auto replyError = [&](ErrCode Code, const std::string &Why,
                        bool KeepOpen) {
    bumpReject(Why, Conn.peer());
    return reply(MsgType::Error, encodeError(Code, Why), !KeepOpen);
  };

  uint64_t Seq = 0;
  std::string Arsp;
  if (!decodePush(F.Payload, &Seq, &Arsp))
    // The frame was intact, so the stream is still in sync.
    return replyError(ErrCode::BadShard, "malformed PUSH payload", true);
  profstore::DecodeResult D = profstore::decodeBundle(Arsp, fingerprint());
  if (!D.Ok)
    // The frame itself was intact, so the stream is still in sync:
    // report the bad shard and keep serving this client.
    return replyError(ErrCode::BadShard, "rejected shard: " + D.Error,
                      true);
  uint64_t Merges = 0;
  switch (mergeShard(Conn.SessionId, Seq, Arsp, D, &Merges)) {
  case 2:
    return reply(MsgType::Error,
                 encodeError(ErrCode::BadShard,
                             "rejected shard: fingerprint lost the "
                             "adoption race"));
  case 3:
    // Journal write failed: the shard is NOT durable and was not
    // merged.  RETRY_AFTER makes the client retry (or spill) under the
    // same sequence number — exactly-once either way.
    return replyError(ErrCode::RetryAfter,
                      "shard not durable: journal write failed", true);
  case 1: {
    PushAckMsg Ack;
    Ack.Merges = Merges;
    Ack.Fingerprint = fingerprint();
    Ack.Seq = Seq;
    Ack.Duplicate = true;
    return reply(MsgType::PushAck, encodePushAck(Ack));
  }
  default: {
    maybeTriggerRelayFlush();
    PushAckMsg Ack;
    Ack.Merges = Merges;
    Ack.Fingerprint = D.Fingerprint;
    Ack.Seq = Seq;
    return reply(MsgType::PushAck, encodePushAck(Ack));
  }
  }
}

Reactor::FrameAction
ProfileServer::handlePushBatch(Reactor::Conn &Conn, const Frame &F) {
  auto reply = [](MsgType Type, const std::string &Payload,
                  bool Close = false) {
    Reactor::FrameAction A;
    A.Reply = encodeFrame(Type, Payload);
    A.Close = Close;
    return A;
  };
  auto replyError = [&](ErrCode Code, const std::string &Why,
                        bool KeepOpen) {
    bumpReject(Why, Conn.peer());
    return reply(MsgType::Error, encodeError(Code, Why), !KeepOpen);
  };

  if (Conn.Negotiated != 0 && Conn.Negotiated < 3)
    return replyError(
        ErrCode::BadShard,
        support::formatString(
            "PUSH_BATCH requires wire v3; session negotiated v%u",
            Conn.Negotiated),
        true);
  std::vector<BatchShard> Shards;
  if (!decodePushBatch(F.Payload, &Shards))
    return replyError(ErrCode::BadShard, "malformed PUSH_BATCH payload",
                      true);

  PushBatchAckMsg Ack;
  Ack.Count = Shards.size();
  uint64_t Merges = 0;
  bool SawMerge = false;
  {
    // The whole batch applies under one shared gate hold, and — the
    // point of group commit — its journal records share ONE fsync:
    // every shard is appended unsynced, then a single journalSync()
    // makes the batch durable before any of it is merged or acked.
    std::shared_lock<std::shared_mutex> Gate(ApplyGate);
    struct PendingShard {
      uint64_t Seq = 0;
      profstore::DecodeResult D;
    };
    std::vector<PendingShard> Pending;
    Pending.reserve(Shards.size());
    bool JournalFailed = false;
    for (const BatchShard &S : Shards) {
      profstore::DecodeResult D =
          profstore::decodeBundle(S.Arsp, fingerprint());
      if (!D.Ok) {
        ++Ack.Rejected;
        if (Ack.FirstError.empty())
          Ack.FirstError = "rejected shard: " + D.Error;
        bumpReject("rejected batched shard: " + D.Error, Conn.peer());
        continue;
      }
      switch (registerShard(Conn.SessionId, S.Seq, D, &Merges)) {
      case 1:
        ++Ack.Duplicates;
        SawMerge = true;
        continue;
      case 2:
        ++Ack.Rejected;
        if (Ack.FirstError.empty())
          Ack.FirstError =
              "rejected shard: fingerprint lost the adoption race";
        continue;
      default:
        break;
      }
      if (Wal) {
        std::string Error;
        if (!Wal->appendShard(Conn.SessionId, S.Seq, S.Arsp, &Error)) {
          if (Config.LogToStderr)
            std::fprintf(stderr,
                         "profserve: journal append failed: %s\n",
                         Error.c_str());
          unregisterShard(Conn.SessionId, S.Seq);
          JournalFailed = true;
          break;
        }
      }
      Pending.push_back({S.Seq, std::move(D)});
    }
    if (!JournalFailed && !journalSync())
      JournalFailed = true;
    if (JournalFailed) {
      // None of the registered-but-unmerged shards is durable; roll
      // them all back and fail the whole batch so the client retries
      // it under the same sequence numbers (duplicates dedup away).
      for (const PendingShard &P : Pending)
        unregisterShard(Conn.SessionId, P.Seq);
      return replyError(ErrCode::RetryAfter,
                        "batch not durable: journal write failed", true);
    }
    for (const PendingShard &P : Pending) {
      applyShard(P.D, &Merges);
      ++Ack.Merged;
      SawMerge = true;
    }
  }
  if (Config.RotateEveryMerges) {
    // Rotation checks ran nowhere above (the gate was held); catch up
    // on any boundary the batch crossed.
    uint64_t Now;
    {
      std::lock_guard<std::mutex> Lock(StateMu);
      Now = Stats.Merges;
    }
    if (Ack.Merged &&
        Now / Config.RotateEveryMerges !=
            (Now - Ack.Merged) / Config.RotateEveryMerges)
      rotateEpoch();
  }
  if (!SawMerge) {
    std::lock_guard<std::mutex> Lock(StateMu);
    Merges = Stats.Merges;
  }
  Ack.Merges = Merges;
  Ack.Fingerprint = fingerprint();
  {
    std::lock_guard<std::mutex> Lock(StateMu);
    ++Stats.Batches;
  }
  maybeTriggerRelayFlush();
  return reply(MsgType::PushBatchAck, encodePushBatchAck(Ack));
}

ServerStats ProfileServer::stats() const {
  ServerStats Out;
  {
    std::lock_guard<std::mutex> Lock(StateMu);
    Out = Stats;
  }
  // Live connections are the reactor's truth, sampled rather than
  // double-counted here; ditto the journal's own counters.
  Out.ActiveConnections = R ? R->active() : 0;
  if (Wal) {
    profstore::JournalStats J = Wal->stats();
    Out.JournalRecords = J.Records;
    Out.JournalSyncs = J.Syncs;
    Out.JournalFailures += J.Failures;
  }
  return Out;
}

uint64_t ProfileServer::fingerprint() const {
  std::lock_guard<std::mutex> Lock(StateMu);
  return FingerprintValue;
}

profile::ProfileBundle ProfileServer::merged() const {
  profile::ProfileBundle Out;
  {
    std::lock_guard<std::mutex> Lock(StateMu);
    Out = EpochBase;
  }
  profstore::mergeBundle(Out, Agg.merged());
  return Out;
}

void ProfileServer::rotateEpoch() {
  // Exclusive: no shard may sit journaled-but-unmerged while the decay
  // record lands, or replay would decay it on the wrong side of the
  // boundary.  (Only taken when a journal exists — rotation is already
  // racy-by-design about which side concurrent shards land on.)
  std::unique_lock<std::shared_mutex> Gate(ApplyGate, std::defer_lock);
  if (Wal) {
    Gate.lock();
    std::string Error;
    if (!Wal->appendEpoch(Config.EpochKeepPct, &Error) ||
        !Wal->sync(&Error)) {
      // Skip the decay rather than apply one that replay would miss:
      // counts stay a little stale, but recovery stays byte-identical.
      if (Config.LogToStderr)
        std::fprintf(stderr,
                     "profserve: journal epoch record failed, rotation "
                     "skipped: %s\n",
                     Error.c_str());
      return;
    }
  }
  profile::ProfileBundle Drained = Agg.drain();
  {
    std::lock_guard<std::mutex> Lock(StateMu);
    profstore::mergeBundle(EpochBase, Drained);
    profstore::decayBundle(EpochBase, Config.EpochKeepPct);
    ++Stats.Epochs;
  }
  // The pre-decay delta is exactly one epoch's worth of new samples —
  // the watcher's unit of observation.
  if (Watcher)
    observePolicyEpoch(Drained);
}

void ProfileServer::observePolicyEpoch(
    const profile::ProfileBundle &Delta) {
  PolicyMsg ToSend;
  size_t NewDecisions = 0;
  {
    std::lock_guard<std::mutex> Lock(PolicyMu);
    NewDecisions = Watcher->observeEpoch(Delta).size();
    if (NewDecisions == 0)
      return;
    // Broadcast the FULL table, not the diff: a frame is droppable
    // (chaos does drop them), so each one must be a complete statement
    // a receiver at any older version can apply alone.
    LastPolicy.PolicyVersion = Watcher->policyVersion();
    LastPolicy.Entries.clear();
    for (const policy::Decision &D : Watcher->currentPolicy())
      LastPolicy.Entries.push_back(
          {static_cast<uint64_t>(D.Method),
           static_cast<uint64_t>(D.Interval)});
    ToSend = LastPolicy;
  }
  {
    std::lock_guard<std::mutex> Lock(StateMu);
    Stats.PolicyDecisions += NewDecisions;
  }
  broadcastPolicy(ToSend, /*Wait=*/false);
}

void ProfileServer::forwardPolicy(const PolicyMsg &M) {
  {
    std::lock_guard<std::mutex> Lock(PolicyMu);
    // A local watcher is authoritative for this subtree; and an
    // upstream version not strictly newer than what we already hold is
    // a reorder/duplicate.
    if (Watcher || M.PolicyVersion <= LastPolicy.PolicyVersion)
      return;
    LastPolicy = M;
  }
  broadcastPolicy(M, /*Wait=*/false);
}

size_t ProfileServer::broadcastPolicy(const PolicyMsg &M, bool Wait) {
  if (!R || M.PolicyVersion == 0)
    return 0;
  std::string Bytes = encodeFrame(MsgType::Policy, encodePolicy(M));
  size_t Delivered = R->broadcast(
      Bytes,
      [](const Reactor::Conn &C) {
        return C.SawHello && C.Negotiated >= 4;
      },
      Wait);
  {
    std::lock_guard<std::mutex> Lock(StateMu);
    ++Stats.PolicyPushes;
  }
  return Delivered;
}

PolicyMsg ProfileServer::currentPolicy() const {
  std::lock_guard<std::mutex> Lock(PolicyMu);
  return LastPolicy;
}

size_t ProfileServer::pushPolicy(bool Wait) {
  return broadcastPolicy(currentPolicy(), Wait);
}

bool ProfileServer::flushUpstream(std::string *Error) {
  if (!Upstream)
    return true; // not a relay: nothing upstream of the root
  std::lock_guard<std::mutex> Lock(UpstreamMu);
  bool Ok = true;
  std::string Err;
  // Earlier spilled deltas go first, with their original sequence
  // numbers — the parent's dedup makes this safe even when the original
  // push half-landed before the fault.
  if (Upstream->spillCount() > 0) {
    ClientResult RS = Upstream->replaySpill();
    if (!RS.Ok) {
      Ok = false;
      Err = RS.Error;
    }
  }
  MergesSinceFlush.store(0, std::memory_order_release);
  profile::ProfileBundle Delta = Agg.drain();
  static const std::string EmptyBundleBytes =
      profile::serializeBundle(profile::ProfileBundle());
  if (profile::serializeBundle(Delta) != EmptyBundleBytes) {
    ClientResult RP = Upstream->push(Delta, fingerprint());
    {
      std::lock_guard<std::mutex> SLock(StateMu);
      if (RP.Ok)
        ++Stats.RelayFlushes;
      else
        ++Stats.RelayFailures;
    }
    if (!RP.Ok) {
      Ok = false;
      Err = RP.Error;
    }
  }
  if (!Ok && Error)
    *Error = Err;
  return Ok;
}

bool ProfileServer::snapshotNow(std::string *Error) {
  if (Config.SnapshotPath.empty()) {
    if (Error)
      *Error = "no snapshot path configured";
    return false;
  }
  std::string Bytes;
  if (Wal) {
    // Checkpoint-then-truncate.  The exclusive gate freezes the
    // journal/aggregate pair, so the checkpoint record (snapshot CRC +
    // dedup ledger) describes EXACTLY the bundle encoded here; recovery
    // matches the snapshot it loads against a checkpoint by that CRC
    // and replays only the records behind it.  The snapshot write and
    // the truncation run after the gate drops — a crash in any window
    // recovers to either this state (new snapshot ↔ new checkpoint) or
    // the previous one (old/.prev snapshot ↔ old checkpoint + longer
    // replay), never a torn mix.
    std::unique_lock<std::shared_mutex> Gate(ApplyGate);
    Bytes = profstore::encodeBundle(merged(), fingerprint());
    if (Config.CompressSnapshots)
      Bytes = support::compressBlocks(Bytes);
    profstore::AppliedSeqMap Applied;
    {
      std::lock_guard<std::mutex> Lock(StateMu);
      Applied = AppliedSeqs;
    }
    if (!Wal->checkpoint(support::fnv1a64(Bytes.data(), Bytes.size()),
                         Applied, Error))
      return false;
  } else {
    Bytes = profstore::encodeBundle(merged(), fingerprint());
    if (Config.CompressSnapshots)
      // loadBundle / recoverOnStart detect the ARSZ container by magic,
      // so flipping this flag never invalidates snapshots on disk.
      Bytes = support::compressBlocks(Bytes);
  }
  // Crash-safe write: tmp + fsync(file) + fsync(dir) + rename, keeping
  // the displaced snapshot as ".prev" so that even a crash between the
  // two renames leaves a recoverable copy (see atomicSaveFile).
  if (!profstore::atomicSaveFile(Config.SnapshotPath, Bytes, Error,
                                 /*KeepPrevious=*/true))
    return false;
  if (Wal) {
    // The snapshot is durable; the segments it checkpointed are dead
    // weight now.  Failure here only delays reclamation.
    std::string TruncErr;
    Wal->truncate(&TruncErr);
  }
  std::lock_guard<std::mutex> Lock(StateMu);
  ++Stats.Snapshots;
  return true;
}

} // namespace profserve
} // namespace ars
