//===- profserve/Server.cpp -----------------------------------*- C++ -*-===//

#include "profserve/Server.h"

#include "profstore/ProfileIO.h"
#include "profstore/ProfileStore.h"
#include "support/Support.h"

#include <chrono>
#include <cstdio>
#include <exception>

namespace ars {
namespace profserve {

ProfileServer::ProfileServer(std::unique_ptr<Listener> L, ServerConfig C)
    : L(std::move(L)), Config(C), Agg(C.Stripes) {
  FingerprintValue = Config.Fingerprint;
}

ProfileServer::~ProfileServer() { stop(); }

void ProfileServer::start() {
  if (Config.RecoverOnStart && !Config.SnapshotPath.empty())
    recoverOnStart();
  Pool = std::make_unique<support::ThreadPool>(Config.Workers);
  Acceptor = std::thread([this] { acceptLoop(); });
  if (Config.SnapshotIntervalMs > 0 && !Config.SnapshotPath.empty())
    Snapshotter = std::thread([this] { snapshotLoop(); });
  Started = true;
}

void ProfileServer::stop() {
  {
    std::lock_guard<std::mutex> Lock(SnapMu);
    if (Stopping)
      return;
    Stopping = true;
    SnapCv.notify_all();
  }
  if (!Started)
    return;
  // Stop the intake first, then unblock every live handler by closing
  // its transport; the pool then drains naturally — no connection leaks.
  L->shutdown();
  {
    std::lock_guard<std::mutex> Lock(ConnMu);
    for (Transport *T : Active)
      T->close();
  }
  if (Acceptor.joinable())
    Acceptor.join();
  Pool->wait();
  if (Snapshotter.joinable())
    Snapshotter.join();
  // Final snapshot after the drain, so the last accepted pushes are in.
  if (!Config.SnapshotPath.empty()) {
    std::string Error;
    if (!snapshotNow(&Error) && Config.LogToStderr)
      std::fprintf(stderr, "profserve: final snapshot failed: %s\n",
                   Error.c_str());
  }
  Pool.reset();
}

void ProfileServer::recoverOnStart() {
  // A crash mid-save can leave a stale tmp file; it is never valid state.
  std::remove((Config.SnapshotPath + ".tmp").c_str());
  const std::string Candidates[] = {Config.SnapshotPath,
                                    Config.SnapshotPath + ".prev"};
  for (const std::string &Path : Candidates) {
    // loadBundle validates magic, CRC and (when pinned) the fingerprint;
    // a torn or corrupt file falls through to the .prev copy.
    profstore::DecodeResult D =
        profstore::loadBundle(Path, Config.Fingerprint);
    if (!D.Ok)
      continue;
    std::lock_guard<std::mutex> Lock(StateMu);
    EpochBase = std::move(D.Bundle);
    if (FingerprintValue == 0)
      FingerprintValue = D.Fingerprint;
    ++Stats.Recovered;
    if (Config.LogToStderr)
      std::fprintf(stderr, "profserve: recovered snapshot from %s\n",
                   Path.c_str());
    return;
  }
}

void ProfileServer::acceptLoop() {
  for (;;) {
    std::unique_ptr<Transport> T = L->accept();
    if (!T)
      return; // listener shut down
    if (Config.MaxPendingConnections > 0 &&
        Pending.load(std::memory_order_acquire) >=
            Config.MaxPendingConnections) {
      // Every worker is busy and the backlog is full: refuse loudly now
      // instead of letting queue depth (and every client's latency) grow
      // without bound.  RETRY_AFTER tells the client it is transient.
      {
        std::lock_guard<std::mutex> Lock(StateMu);
        ++Stats.Shed;
      }
      writeFrame(*T, MsgType::Error,
                 encodeError(ErrCode::RetryAfter,
                             "server overloaded: connection backlog full"));
      T->close();
      continue;
    }
    Pending.fetch_add(1, std::memory_order_acq_rel);
    std::shared_ptr<Transport> Conn(std::move(T));
    {
      std::lock_guard<std::mutex> Lock(ConnMu);
      Active.insert(Conn.get());
    }
    {
      std::lock_guard<std::mutex> Lock(StateMu);
      ++Stats.ActiveConnections;
    }
    Pool->submit([this, Conn] {
      Pending.fetch_sub(1, std::memory_order_acq_rel);
      try {
        handleConnection(Conn.get());
      } catch (const std::exception &E) {
        // Keep the bookkeeping below intact; ThreadPool::wait() would
        // otherwise surface this from stop() with the connection leaked.
        bumpReject(std::string("handler exception: ") + E.what(),
                   Conn->peer());
      }
      Conn->close();
      {
        std::lock_guard<std::mutex> Lock(ConnMu);
        Active.erase(Conn.get());
      }
      {
        std::lock_guard<std::mutex> Lock(StateMu);
        --Stats.ActiveConnections;
      }
    });
  }
}

void ProfileServer::snapshotLoop() {
  std::unique_lock<std::mutex> Lock(SnapMu);
  while (!Stopping) {
    SnapCv.wait_for(Lock,
                    std::chrono::milliseconds(Config.SnapshotIntervalMs));
    if (Stopping)
      return;
    Lock.unlock();
    std::string Error;
    if (!snapshotNow(&Error) && Config.LogToStderr)
      std::fprintf(stderr, "profserve: snapshot failed: %s\n",
                   Error.c_str());
    Lock.lock();
  }
}

void ProfileServer::bumpReject(const std::string &Why,
                               const std::string &Peer) {
  {
    std::lock_guard<std::mutex> Lock(StateMu);
    ++Stats.Rejects;
  }
  if (Config.LogToStderr)
    std::fprintf(stderr, "profserve: rejected %s: %s\n", Peer.c_str(),
                 Why.c_str());
}

void ProfileServer::handleConnection(Transport *T) {
  ConnState Conn;
  for (;;) {
    FrameResult FR =
        readFrame(*T, Config.RecvTimeoutMs, Config.MaxFramePayload);
    if (FR.Status == FrameStatus::Eof)
      return; // clean disconnect (BYE is polite, EOF is legal)
    if (!FR.ok()) {
      // Timeout, truncation, CRC mismatch, oversized length, transport
      // death: the byte stream can no longer be trusted to be framed, so
      // answer with a diagnostic (best effort) and drop the connection.
      bumpReject(FR.Error, T->peer());
      writeFrame(*T, MsgType::Error,
                 encodeError(ErrCode::BadFrame, FR.Error));
      return;
    }
    {
      std::lock_guard<std::mutex> Lock(StateMu);
      ++Stats.Frames;
      Stats.Bytes +=
          FrameHeaderSize + FR.F.Payload.size() + FrameTrailerSize;
    }
    if (!handleFrame(*T, FR.F, Conn))
      return;
  }
}

bool ProfileServer::handleFrame(Transport &T, const Frame &F,
                                ConnState &Conn) {
  auto replyError = [&](ErrCode Code, const std::string &Why,
                        bool KeepOpen) {
    bumpReject(Why, T.peer());
    IoResult IO = writeFrame(T, MsgType::Error, encodeError(Code, Why));
    return KeepOpen && IO.ok();
  };

  if (F.Type == MsgType::Hello) {
    HelloMsg Hello;
    if (!decodeHello(F.Payload, &Hello))
      return replyError(ErrCode::BadHandshake, "malformed HELLO payload",
                        false);
    if (Hello.Version != WireVersion)
      return replyError(
          ErrCode::BadHandshake,
          support::formatString(
              "wire version mismatch: client speaks v%u, server v%u",
              Hello.Version, WireVersion),
          false);
    uint64_t Pinned = fingerprint();
    if (Hello.Fingerprint && Pinned && Hello.Fingerprint != Pinned)
      return replyError(
          ErrCode::BadHandshake,
          support::formatString(
              "module fingerprint mismatch: client %016llx, server "
              "%016llx",
              static_cast<unsigned long long>(Hello.Fingerprint),
              static_cast<unsigned long long>(Pinned)),
          false);
    Conn.SawHello = true;
    Conn.SessionId = Hello.SessionId;
    HelloAckMsg Ack;
    Ack.Version = WireVersion;
    Ack.Fingerprint = Pinned;
    return writeFrame(T, MsgType::HelloAck, encodeHelloAck(Ack)).ok();
  }

  if (!Conn.SawHello)
    return replyError(ErrCode::BadHandshake,
                      support::formatString("expected HELLO before %s",
                                            msgTypeName(F.Type)),
                      false);

  switch (F.Type) {
  case MsgType::Push: {
    uint64_t Seq = 0;
    std::string Arsp;
    if (!decodePush(F.Payload, &Seq, &Arsp))
      // The frame was intact, so the stream is still in sync.
      return replyError(ErrCode::BadShard, "malformed PUSH payload", true);
    if (Config.MaxActivePushes &&
        ActivePushes.fetch_add(1, std::memory_order_acq_rel) >=
            Config.MaxActivePushes) {
      ActivePushes.fetch_sub(1, std::memory_order_acq_rel);
      {
        std::lock_guard<std::mutex> Lock(StateMu);
        ++Stats.Shed;
      }
      // Deliberate shedding, not a protocol failure: no reject counted,
      // connection stays open, client backs off and retries.
      return writeFrame(T, MsgType::Error,
                        encodeError(ErrCode::RetryAfter,
                                    "server overloaded: too many "
                                    "concurrent pushes"))
          .ok();
    }
    struct PushGate {
      std::atomic<uint64_t> *C;
      ~PushGate() {
        if (C)
          C->fetch_sub(1, std::memory_order_acq_rel);
      }
    } Gate{Config.MaxActivePushes ? &ActivePushes : nullptr};

    uint64_t Expect = fingerprint();
    profstore::DecodeResult D = profstore::decodeBundle(Arsp, Expect);
    if (!D.Ok)
      // The frame itself was intact, so the stream is still in sync:
      // report the bad shard and keep serving this client.
      return replyError(ErrCode::BadShard, "rejected shard: " + D.Error,
                        true);
    uint64_t Merges;
    bool AdoptionRace = false;
    bool Duplicate = false;
    PushAckMsg DupAck;
    {
      std::lock_guard<std::mutex> Lock(StateMu);
      if (FingerprintValue == 0)
        FingerprintValue = D.Fingerprint; // first shard pins the module
      else if (D.Fingerprint != FingerprintValue) {
        // Raced with another first-pusher for a different module.
        ++Stats.Rejects;
        AdoptionRace = true;
      } else if (Conn.SessionId && Seq &&
                 !AppliedSeqs[Conn.SessionId].insert(Seq).second) {
        // A retry of a shard that already merged (the original ack was
        // lost mid-wire).  Acknowledge without merging — exactly-once.
        // Registration-before-merge means a racing retry on another
        // connection always lands here rather than double-merging.
        ++Stats.Duplicates;
        Duplicate = true;
        DupAck.Merges = Stats.Merges;
        DupAck.Fingerprint = FingerprintValue;
        DupAck.Seq = Seq;
        DupAck.Duplicate = true;
      }
    }
    if (AdoptionRace)
      return writeFrame(T, MsgType::Error,
                        encodeError(ErrCode::BadShard,
                                    "rejected shard: fingerprint lost "
                                    "the adoption race"))
          .ok();
    if (Duplicate)
      return writeFrame(T, MsgType::PushAck, encodePushAck(DupAck)).ok();
    Agg.flush(NextFlushKey.fetch_add(1, std::memory_order_relaxed),
              D.Bundle);
    {
      std::lock_guard<std::mutex> Lock(StateMu);
      Merges = ++Stats.Merges;
    }
    if (Config.RotateEveryMerges && Merges % Config.RotateEveryMerges == 0)
      rotateEpoch();
    PushAckMsg Ack;
    Ack.Merges = Merges;
    Ack.Fingerprint = D.Fingerprint;
    Ack.Seq = Seq;
    return writeFrame(T, MsgType::PushAck, encodePushAck(Ack)).ok();
  }

  case MsgType::Pull: {
    std::string Bytes = profstore::encodeBundle(merged(), fingerprint());
    if (Bytes.size() > Config.MaxFramePayload)
      return replyError(
          ErrCode::Generic,
          support::formatString(
              "merged profile (%zu bytes) exceeds the %zu-byte frame cap",
              Bytes.size(), Config.MaxFramePayload),
          true);
    {
      std::lock_guard<std::mutex> Lock(StateMu);
      ++Stats.Pulls;
    }
    return writeFrame(T, MsgType::PullReply, Bytes).ok();
  }

  case MsgType::StatsReq:
    return writeFrame(T, MsgType::StatsReply, encodeStats(stats())).ok();

  case MsgType::SnapshotReq: {
    std::string Error;
    if (!snapshotNow(&Error))
      return replyError(ErrCode::Generic, "snapshot failed: " + Error,
                        true);
    return writeFrame(T, MsgType::SnapshotAck,
                      encodeText(Config.SnapshotPath))
        .ok();
  }

  case MsgType::Bye:
    return false;

  default:
    // Server-bound streams must never carry server-to-client types.
    return replyError(ErrCode::Generic,
                      support::formatString("unexpected %s from a client",
                                            msgTypeName(F.Type)),
                      false);
  }
}

ServerStats ProfileServer::stats() const {
  std::lock_guard<std::mutex> Lock(StateMu);
  return Stats;
}

uint64_t ProfileServer::fingerprint() const {
  std::lock_guard<std::mutex> Lock(StateMu);
  return FingerprintValue;
}

profile::ProfileBundle ProfileServer::merged() const {
  profile::ProfileBundle Out;
  {
    std::lock_guard<std::mutex> Lock(StateMu);
    Out = EpochBase;
  }
  profstore::mergeBundle(Out, Agg.merged());
  return Out;
}

void ProfileServer::rotateEpoch() {
  profile::ProfileBundle Drained = Agg.drain();
  std::lock_guard<std::mutex> Lock(StateMu);
  profstore::mergeBundle(EpochBase, Drained);
  profstore::decayBundle(EpochBase, Config.EpochKeepPct);
  ++Stats.Epochs;
}

bool ProfileServer::snapshotNow(std::string *Error) {
  if (Config.SnapshotPath.empty()) {
    if (Error)
      *Error = "no snapshot path configured";
    return false;
  }
  std::string Bytes = profstore::encodeBundle(merged(), fingerprint());
  // Crash-safe write: tmp + fsync(file) + fsync(dir) + rename, keeping
  // the displaced snapshot as ".prev" so that even a crash between the
  // two renames leaves a recoverable copy (see atomicSaveFile).
  if (!profstore::atomicSaveFile(Config.SnapshotPath, Bytes, Error,
                                 /*KeepPrevious=*/true))
    return false;
  std::lock_guard<std::mutex> Lock(StateMu);
  ++Stats.Snapshots;
  return true;
}

} // namespace profserve
} // namespace ars
