//===- profserve/Client.cpp -----------------------------------*- C++ -*-===//

#include "profserve/Client.h"

#include "profstore/ProfileIO.h"
#include "support/Binary.h"
#include "support/Support.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <thread>
#include <utility>
#include <vector>

namespace ars {
namespace profserve {

namespace {

ClientResult serverError(ErrCode Code, std::string Message) {
  ClientResult R;
  R.Error = std::move(Message);
  R.ServerReply = true;
  R.Code = Code;
  return R;
}

/// Spill records reuse the PUSH payload encoding (varint seq + shard),
/// wrapped in a length prefix and CRC so a crash mid-append only costs
/// the torn tail record, never the earlier ones.
std::string encodeSpillRecord(uint64_t Seq, const std::string &ArspBytes) {
  std::string Rec = encodePush(Seq, ArspBytes);
  std::string Out;
  support::appendFixed32(Out, static_cast<uint32_t>(Rec.size()));
  Out.append(Rec);
  support::appendFixed32(Out, support::crc32(Rec.data(), Rec.size()));
  return Out;
}

/// Parses every intact spill record.  A record whose CRC or payload does
/// not check out is skipped by resynchronizing one byte at a time until
/// the next parseable record, so one corrupt entry never strands the
/// valid records appended after it; each contiguous corrupt stretch
/// counts once into \p *CorruptRuns.  A cleanly truncated tail (the torn
/// final record of a crashed append) still just stops the scan, exactly
/// as before — torn tails are expected, not corruption.
std::vector<std::pair<uint64_t, std::string>>
parseSpill(const std::string &Bytes, uint64_t *CorruptRuns) {
  std::vector<std::pair<uint64_t, std::string>> Out;
  size_t Off = 0;
  bool InBadRun = false;
  while (Bytes.size() - Off >= 8) {
    support::ByteReader R(Bytes.data() + Off, Bytes.size() - Off);
    uint32_t Len = 0;
    uint64_t Seq = 0;
    std::string Arsp;
    bool RecordOk = false;
    if (R.readFixed32(&Len) &&
        R.remaining() >= static_cast<uint64_t>(Len) + 4) {
      const char *Data = nullptr;
      uint32_t Stored = 0;
      if (R.readBytes(&Data, Len) && R.readFixed32(&Stored) &&
          support::crc32(Data, Len) == Stored &&
          decodePush(std::string(Data, Len), &Seq, &Arsp))
        RecordOk = true;
    } else if (!InBadRun) {
      // The length prefix claims more bytes than the file holds.  With
      // no damage seen yet this is the ordinary torn tail of a crashed
      // append: stop quietly.  Mid-resync it is just more garbage to
      // slide past.
      break;
    }
    if (RecordOk) {
      Off += 8 + Len;
      Out.emplace_back(Seq, std::move(Arsp));
      InBadRun = false;
      continue;
    }
    if (!InBadRun && CorruptRuns)
      ++*CorruptRuns;
    InBadRun = true;
    ++Off; // resync: slide one byte and rescan
  }
  return Out;
}

} // namespace

ProfileClient::ProfileClient(Dialer D, ClientConfig C)
    : ProfileClient(std::vector<Dialer>(), std::move(C)) {
  Dials.push_back(std::move(D));
}

ProfileClient::ProfileClient(std::vector<Dialer> D, ClientConfig C)
    : Dials(std::move(D)), Config(std::move(C)),
      Jitter(Config.JitterSeed
                 ? Config.JitterSeed
                 : Config.SessionId * 0x9E3779B97F4A7C15ULL + 1) {}

ProfileClient::~ProfileClient() { close(); }

void ProfileClient::close() {
  if (Conn) {
    writeFrame(*Conn, MsgType::Bye, std::string()); // best effort
    Conn->close();
    Conn.reset();
  }
}

void ProfileClient::backoff(int Attempt) {
  // 50ms, 100ms, 200ms, ... capped so MaxRetries can't stall a caller
  // for longer than ~2s per retry.
  int64_t Ms = static_cast<int64_t>(Config.BackoffMs) << Attempt;
  if (Ms > 2000)
    Ms = 2000;
  if (Config.BackoffJitterPct && Ms > 0) {
    // ±Pct% seeded jitter: a fleet of clients that failed together (one
    // server restart) must not retry in lockstep and re-overload it.
    int64_t Span = Ms * 2 * Config.BackoffJitterPct / 100;
    if (Span > 0)
      Ms += static_cast<int64_t>(
                Jitter.nextBelow(static_cast<uint64_t>(Span) + 1)) -
            Span / 2;
  }
  if (Ms < 1)
    Ms = 1;
  std::this_thread::sleep_for(std::chrono::milliseconds(Ms));
}

bool ProfileClient::breakerAllows() {
  if (!Config.BreakerThreshold || !BreakerIsOpen)
    return true;
  if (Config.BreakerCooldownOps > 0) {
    // Deterministic cooldown: deny this many operations, then probe.
    if (CooldownOpsLeft > 0) {
      --CooldownOpsLeft;
      return false;
    }
    return true; // half-open probe
  }
  auto Elapsed = std::chrono::steady_clock::now() - BreakerOpenedAt;
  return Elapsed >= std::chrono::milliseconds(Config.BreakerCooldownMs);
}

void ProfileClient::recordFailure() {
  if (!Config.BreakerThreshold)
    return;
  if (++ConsecutiveFailures >= Config.BreakerThreshold && !BreakerIsOpen) {
    BreakerIsOpen = true;
    CooldownOpsLeft = Config.BreakerCooldownOps;
    BreakerOpenedAt = std::chrono::steady_clock::now();
  } else if (BreakerIsOpen) {
    // A failed half-open probe re-arms the cooldown.
    CooldownOpsLeft = Config.BreakerCooldownOps;
    BreakerOpenedAt = std::chrono::steady_clock::now();
  }
}

void ProfileClient::recordSuccess() {
  ConsecutiveFailures = 0;
  BreakerIsOpen = false;
}

void ProfileClient::advanceParent() {
  if (Dials.size() < 2)
    return;
  ActiveDial = (ActiveDial + 1) % Dials.size();
  ++Failovers;
}

ClientResult ProfileClient::connect() {
  if (Conn)
    return {true, ""};
  if (Dials.empty())
    return {false, "no dialers configured"};
  std::string LastError = "dialer failed";
  // Every configured parent deserves at least one try, even when the
  // caller set MaxRetries below the parent count.
  int MaxAttempts = Config.MaxRetries + 1;
  if (static_cast<size_t>(MaxAttempts) < Dials.size())
    MaxAttempts = static_cast<int>(Dials.size());
  for (int Attempt = 0; Attempt < MaxAttempts; ++Attempt) {
    if (Attempt)
      backoff(Attempt - 1);
    ++DialAttempts;
    std::string DialError;
    std::unique_ptr<Transport> T = Dials[ActiveDial](&DialError);
    if (!T) {
      LastError = DialError.empty() ? "dial failed" : DialError;
      advanceParent();
      continue;
    }
    // Handshake on the fresh connection.
    HelloMsg Hello;
    Hello.Version = WireVersion;
    Hello.Fingerprint = Config.Fingerprint;
    Hello.ClientName = Config.Name;
    Hello.SessionId = Config.SessionId;
    IoResult IO = writeFrame(*T, MsgType::Hello, encodeHello(Hello));
    if (!IO.ok()) {
      LastError = "HELLO write failed: " + IO.Message;
      T->close();
      advanceParent();
      continue;
    }
    FrameResult FR =
        readFrame(*T, Config.TimeoutMs, Config.MaxFramePayload);
    if (!FR.ok()) {
      LastError = "HELLO reply: " + FR.Error;
      T->close();
      advanceParent();
      continue;
    }
    if (FR.F.Type == MsgType::Error) {
      ErrorMsg E;
      if (!decodeError(FR.F.Payload, &E))
        E.Text = "malformed ERROR payload";
      T->close();
      // Shedding and stream damage are transient; a deliberate server
      // rejection (version/fingerprint) will not improve on retry.
      if (E.Code == ErrCode::RetryAfter || E.Code == ErrCode::BadFrame) {
        LastError = "server: " + E.Text;
        advanceParent(); // a shedding parent: try a backup
        continue;
      }
      return serverError(E.Code, "server rejected handshake: " + E.Text);
    }
    HelloAckMsg Ack;
    if (FR.F.Type != MsgType::HelloAck ||
        !decodeHelloAck(FR.F.Payload, &Ack)) {
      LastError = "malformed HELLO_ACK";
      T->close();
      advanceParent();
      continue;
    }
    if (Ack.Version < MinWireVersion || Ack.Version > WireVersion) {
      // The ack must echo a dialect we actually speak; anything else is
      // a confused (or hostile) server.
      LastError = support::formatString(
          "server negotiated unsupported wire v%u", Ack.Version);
      T->close();
      advanceParent();
      continue;
    }
    Negotiated = Ack.Version;
    ServerFingerprint = Ack.Fingerprint;
    // v5 sequence continuity: never assign a sequence number at or below
    // what this server already applied for our session.  A failover to a
    // parent that saw our earlier pushes — or a restart of this client
    // against a server that recovered its dedup table from the journal —
    // must not reuse sequence numbers, or the dedup table would silently
    // swallow the brand-new shard as a "duplicate".
    if (Config.SessionId && Ack.LastSeq > NextSeq)
      NextSeq = Ack.LastSeq;
    Conn = std::move(T);
    return {true, ""};
  }
  return {false, support::formatString("connect failed after %d attempts: "
                                       "%s",
                                       DialAttempts, LastError.c_str())};
}

ClientResult ProfileClient::exchange(MsgType ReqType,
                                     const std::string &ReqPayload,
                                     MsgType WantReply, Frame *Reply) {
  IoResult IO = writeFrame(*Conn, ReqType, ReqPayload);
  if (!IO.ok()) {
    Conn->close();
    Conn.reset();
    return {false, std::string(msgTypeName(ReqType)) +
                       " write failed: " + IO.Message};
  }
  FrameResult FR;
  for (;;) {
    FR = readFrame(*Conn, Config.TimeoutMs, Config.MaxFramePayload);
    if (FR.ok() && FR.F.Type == MsgType::Policy) {
      // A server-initiated POLICY push (wire v4) queued ahead of our
      // reply: apply it (corrupt payloads are dropped — degrade to the
      // static interval) and keep waiting for the reply proper.
      handlePolicyPayload(FR.F.Payload);
      continue;
    }
    break;
  }
  if (!FR.ok()) {
    Conn->close();
    Conn.reset();
    return {false, std::string(msgTypeName(ReqType)) +
                       " reply: " + FR.Error};
  }
  if (FR.F.Type == MsgType::Error) {
    ErrorMsg E;
    if (!decodeError(FR.F.Payload, &E)) {
      Conn->close();
      Conn.reset();
      return {false, "malformed ERROR payload"};
    }
    // The server replied coherently.  After BAD_FRAME it closes its end
    // (the stream desynchronized), so drop ours too; other codes leave
    // the connection usable.
    if (E.Code == ErrCode::BadFrame) {
      Conn->close();
      Conn.reset();
    }
    return serverError(E.Code, "server: " + E.Text);
  }
  if (FR.F.Type != WantReply) {
    Conn->close();
    Conn.reset();
    return {false, support::formatString("expected %s, got %s",
                                         msgTypeName(WantReply),
                                         msgTypeName(FR.F.Type))};
  }
  *Reply = std::move(FR.F);
  return {true, ""};
}

ClientResult ProfileClient::connectGated() {
  if (Conn)
    return {true, ""};
  if (!breakerAllows())
    return {false, "circuit breaker open"};
  ClientResult C = connect();
  if (!C.Ok && !C.ServerReply)
    recordFailure();
  return C;
}

ClientResult ProfileClient::exchangeRetry(MsgType ReqType,
                                          const std::string &ReqPayload,
                                          MsgType WantReply,
                                          Frame *Reply) {
  ClientResult Last;
  for (int Attempt = 0; Attempt <= Config.MaxRetries; ++Attempt) {
    if (Attempt)
      backoff(Attempt - 1);
    ClientResult C = connect();
    if (!C.Ok) {
      Last = C;
      continue;
    }
    Last = exchange(ReqType, ReqPayload, WantReply, Reply);
    if (Last.Ok)
      return Last;
    // A coherent server-side ERROR is a final answer — except shedding
    // (RETRY_AFTER) and stream damage (BAD_FRAME), which a retry on a
    // fresh attempt can cure.
    if (Last.ServerReply && Last.Code != ErrCode::RetryAfter &&
        Last.Code != ErrCode::BadFrame)
      return Last;
  }
  return Last;
}

ClientResult ProfileClient::pushSequenced(uint64_t Seq,
                                          const std::string &ArspBytes) {
  std::string Payload = encodePush(Seq, ArspBytes);
  ClientResult Last;
  for (int Attempt = 0; Attempt <= Config.MaxRetries; ++Attempt) {
    if (Attempt)
      backoff(Attempt - 1);
    if (!breakerAllows()) {
      Last = {false, "circuit breaker open"};
      continue;
    }
    ClientResult C = connect();
    if (!C.Ok) {
      if (!C.ServerReply)
        recordFailure();
      Last = C;
      if (C.ServerReply)
        return Last; // deliberate handshake rejection: final
      continue;
    }
    Frame Reply;
    Last = exchange(MsgType::Push, Payload, MsgType::PushAck, &Reply);
    if (Last.Ok) {
      PushAckMsg Ack;
      if (!decodePushAck(Reply.Payload, &Ack)) {
        // Wire damage on the ack; the retry is safe — the server
        // deduplicates this (session, seq).
        if (Conn) {
          Conn->close();
          Conn.reset();
        }
        recordFailure();
        Last = {false, "malformed PUSH_ACK"};
        continue;
      }
      LastMerges = Ack.Merges;
      if (Ack.Duplicate)
        ++DupAcks;
      recordSuccess();
      return {true, ""};
    }
    if (Last.ServerReply) {
      if (Last.Code == ErrCode::RetryAfter)
        continue; // deliberate shedding: back off, not a breaker strike
      if (Last.Code == ErrCode::BadFrame) {
        recordFailure(); // corruption en route; reconnect and retry
        continue;
      }
      return Last; // BAD_SHARD etc.: retrying identical bytes cannot help
    }
    recordFailure(); // transport-level failure; retry is dedup-safe
  }
  return Last;
}

ClientResult ProfileClient::pushEncoded(const std::string &ArspBytes) {
  if (Config.SessionId == 0) {
    // Legacy sessionless path: retries cover connection establishment
    // only.  Once the PUSH frame starts onto the wire, a lost ack is
    // indistinguishable from a lost request, and without sequence
    // numbers a blind resend could double-count the shard.
    ClientResult C = connect();
    if (!C.Ok)
      return C;
    Frame Reply;
    ClientResult R = exchange(MsgType::Push, encodePush(0, ArspBytes),
                              MsgType::PushAck, &Reply);
    if (!R.Ok)
      return R;
    PushAckMsg Ack;
    if (!decodePushAck(Reply.Payload, &Ack))
      return {false, "malformed PUSH_ACK"};
    LastMerges = Ack.Merges;
    return {true, ""};
  }

  // Establish the session BEFORE numbering the shard: the v5 HELLO_ACK
  // LastSeq floor adjusts NextSeq during the handshake, and a seq fixed
  // ahead of it would reuse a number the server already applied — the
  // shard would be silently swallowed as a duplicate.  (When the
  // connect fails, the shard still gets a seq so it can spill; the
  // floor re-applies on the reconnect that replays it.)
  ClientResult C = connectGated();
  uint64_t Seq = ++NextSeq;
  ClientResult R = C.Ok ? pushSequenced(Seq, ArspBytes) : C;
  if (!R.Ok && !Config.SpillPath.empty()) {
    std::string SpillError;
    if (appendSpill(Seq, ArspBytes, &SpillError)) {
      R.Spilled = true;
      R.Error += " (shard spilled for replay)";
    } else {
      R.Error += "; spill also failed: " + SpillError;
    }
  }
  return R;
}

ClientResult ProfileClient::push(const profile::ProfileBundle &B,
                                 uint64_t Fingerprint) {
  return pushEncoded(profstore::encodeBundle(B, Fingerprint));
}

ClientResult
ProfileClient::pushBatchSequenced(const std::vector<BatchShard> &Batch) {
  std::string Payload = encodePushBatch(Batch);
  ClientResult Last;
  for (int Attempt = 0; Attempt <= Config.MaxRetries; ++Attempt) {
    if (Attempt)
      backoff(Attempt - 1);
    if (!breakerAllows()) {
      Last = {false, "circuit breaker open"};
      continue;
    }
    ClientResult C = connect();
    if (!C.Ok) {
      if (!C.ServerReply)
        recordFailure();
      Last = C;
      if (C.ServerReply)
        return Last; // deliberate handshake rejection: final
      continue;
    }
    if (Negotiated < 3) {
      // v2 server: degrade to per-shard sequenced pushes.  The sequence
      // numbers were assigned up front, so shards that already landed
      // through an earlier (half-acked) batch attempt deduplicate.
      Last = {true, ""};
      for (const BatchShard &S : Batch) {
        ClientResult R1 = pushSequenced(S.Seq, S.Arsp);
        if (!R1.Ok) {
          Last = R1;
          break;
        }
      }
      return Last;
    }
    Frame Reply;
    Last = exchange(MsgType::PushBatch, Payload, MsgType::PushBatchAck,
                    &Reply);
    if (Last.Ok) {
      PushBatchAckMsg Ack;
      if (!decodePushBatchAck(Reply.Payload, &Ack)) {
        // Wire damage on the ack; the retry is safe — the server
        // deduplicates every (session, seq) in the batch.
        if (Conn) {
          Conn->close();
          Conn.reset();
        }
        recordFailure();
        Last = {false, "malformed PUSH_BATCH_ACK"};
        continue;
      }
      LastMerges = Ack.Merges;
      DupAcks += Ack.Duplicates;
      recordSuccess();
      if (Ack.Rejected)
        return serverError(
            ErrCode::BadShard,
            support::formatString(
                "%llu of %llu batched shards rejected: %s",
                static_cast<unsigned long long>(Ack.Rejected),
                static_cast<unsigned long long>(Ack.Count),
                Ack.FirstError.c_str()));
      return {true, ""};
    }
    if (Last.ServerReply) {
      if (Last.Code == ErrCode::RetryAfter)
        continue; // deliberate shedding: back off, not a breaker strike
      if (Last.Code == ErrCode::BadFrame) {
        recordFailure(); // corruption en route; reconnect and retry
        continue;
      }
      return Last; // BAD_SHARD etc.: retrying identical bytes cannot help
    }
    recordFailure(); // transport-level failure; retry is dedup-safe
  }
  return Last;
}

ClientResult
ProfileClient::pushBatch(const std::vector<std::string> &ArspShards) {
  if (ArspShards.empty())
    return {true, ""};
  if (Config.SessionId == 0) {
    // Sessionless pushes cannot be deduplicated server-side, so a batch
    // retry could double-count a half-landed prefix; fall back to the
    // conservative one-at-a-time legacy path.
    for (const std::string &S : ArspShards) {
      ClientResult R = pushEncoded(S);
      if (!R.Ok)
        return R;
    }
    return {true, ""};
  }
  // Session first, then stable sequence numbers across every retry of
  // this batch (same LastSeq-floor ordering as pushEncoded).
  ClientResult C = connectGated();
  std::vector<BatchShard> Batch;
  Batch.reserve(ArspShards.size());
  for (const std::string &S : ArspShards)
    Batch.push_back({++NextSeq, S});
  ClientResult R = C.Ok ? pushBatchSequenced(Batch) : C;
  if (!R.Ok && !Config.SpillPath.empty()) {
    size_t Spilled = 0;
    std::string SpillError;
    for (const BatchShard &S : Batch)
      if (appendSpill(S.Seq, S.Arsp, &SpillError))
        ++Spilled;
    if (Spilled == Batch.size()) {
      // Replays that already merged just earn duplicate acks.
      R.Spilled = true;
      R.Error += " (batch spilled for replay)";
    } else {
      R.Error += "; spill also failed: " + SpillError;
    }
  }
  return R;
}

bool ProfileClient::appendSpill(uint64_t Seq, const std::string &ArspBytes,
                                std::string *Error) {
  std::string Rec = encodeSpillRecord(Seq, ArspBytes);
  std::ofstream Out(Config.SpillPath,
                    std::ios::binary | std::ios::app);
  if (!Out ||
      !Out.write(Rec.data(), static_cast<std::streamsize>(Rec.size())) ||
      !Out.flush()) {
    if (Error)
      *Error = "cannot append to " + Config.SpillPath;
    return false;
  }
  return true;
}

size_t ProfileClient::spillCount() const {
  if (Config.SpillPath.empty())
    return 0;
  std::ifstream In(Config.SpillPath, std::ios::binary);
  if (!In)
    return 0;
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  return parseSpill(Buffer.str(), &SpillCorrupt).size();
}

ClientResult ProfileClient::replaySpill() {
  if (Config.SpillPath.empty() || Config.SessionId == 0)
    return {true, ""};
  std::string Bytes;
  {
    std::ifstream In(Config.SpillPath, std::ios::binary);
    if (!In)
      return {true, ""}; // nothing spilled
    std::ostringstream Buffer;
    Buffer << In.rdbuf();
    Bytes = Buffer.str();
  }
  std::vector<std::pair<uint64_t, std::string>> Records =
      parseSpill(Bytes, &SpillCorrupt);
  // Sequence numbers must stay unique within the session even if more
  // pushes follow the replay.
  for (const auto &[Seq, Arsp] : Records)
    if (Seq > NextSeq)
      NextSeq = Seq;
  std::vector<std::pair<uint64_t, std::string>> Left;
  std::string LastError;
  for (auto &[Seq, Arsp] : Records) {
    ClientResult R = pushSequenced(Seq, Arsp);
    if (!R.Ok) {
      LastError = R.Error;
      Left.emplace_back(Seq, std::move(Arsp));
    }
  }
  if (Left.empty()) {
    std::remove(Config.SpillPath.c_str());
    return {true, ""};
  }
  // Rewrite the file with only the survivors (atomically, so a crash
  // mid-rewrite cannot lose them).
  std::string Out;
  for (const auto &[Seq, Arsp] : Left)
    Out += encodeSpillRecord(Seq, Arsp);
  std::string SaveError;
  if (!profstore::atomicSaveFile(Config.SpillPath, Out, &SaveError)) {
    ClientResult R;
    R.Error = "cannot rewrite spill file: " + SaveError;
    R.Spilled = true;
    return R;
  }
  ClientResult R;
  R.Error = support::formatString(
      "%zu spilled shards still unpushed: %s", Left.size(),
      LastError.c_str());
  R.Spilled = true;
  return R;
}

ProfileClient::PullResult ProfileClient::pull() {
  PullResult Out;
  Frame Reply;
  ClientResult R = exchangeRetry(MsgType::Pull, std::string(),
                                 MsgType::PullReply, &Reply);
  if (!R.Ok) {
    Out.Error = R.Error;
    return Out;
  }
  profstore::DecodeResult D = profstore::decodeBundle(Reply.Payload);
  if (!D.Ok) {
    Out.Error = "server sent an undecodable bundle: " + D.Error;
    return Out;
  }
  Out.Ok = true;
  Out.Fingerprint = D.Fingerprint;
  Out.Bundle = std::move(D.Bundle);
  Out.RawBytes = std::move(Reply.Payload);
  return Out;
}

ProfileClient::StatsResult ProfileClient::stats() {
  StatsResult Out;
  Frame Reply;
  ClientResult R = exchangeRetry(MsgType::StatsReq, std::string(),
                                 MsgType::StatsReply, &Reply);
  if (!R.Ok) {
    Out.Error = R.Error;
    return Out;
  }
  if (!decodeStats(Reply.Payload, &Out.Stats)) {
    Out.Error = "malformed STATS_REPLY";
    return Out;
  }
  Out.Ok = true;
  return Out;
}

ClientResult ProfileClient::snapshot(std::string *PathOut) {
  Frame Reply;
  ClientResult R = exchangeRetry(MsgType::SnapshotReq, std::string(),
                                 MsgType::SnapshotAck, &Reply);
  if (!R.Ok)
    return R;
  std::string Path;
  if (!decodeText(Reply.Payload, &Path))
    return {false, "malformed SNAPSHOT_ACK"};
  if (PathOut)
    *PathOut = Path;
  return {true, ""};
}

void ProfileClient::onPolicy(
    std::function<void(const PolicyMsg &)> Handler) {
  PolicyHandler = std::move(Handler);
}

bool ProfileClient::handlePolicyPayload(const std::string &Payload) {
  PolicyMsg M;
  if (!decodePolicy(Payload, &M))
    return false; // corrupt: keep the current intervals
  ++PolicyFrames;
  if (PolicyHandler)
    PolicyHandler(M);
  return true;
}

int ProfileClient::pollPolicy(int TimeoutMs) {
  if (!Conn || Negotiated < 4)
    return 0;
  int Seen = 0;
  for (;;) {
    FrameResult FR = readFrame(*Conn, TimeoutMs, Config.MaxFramePayload);
    if (!FR.ok()) {
      // Silence is the normal end of a poll; anything else (EOF, frame
      // damage, transport death) means the stream is no longer usable.
      if (FR.Status != FrameStatus::Timeout) {
        Conn->close();
        Conn.reset();
      }
      return Seen;
    }
    if (FR.F.Type == MsgType::Policy) {
      if (handlePolicyPayload(FR.F.Payload))
        ++Seen;
      continue;
    }
    // No request is outstanding, so any other type desynchronizes the
    // request/reply rhythm; reconnect lazily on the next operation.
    Conn->close();
    Conn.reset();
    return Seen;
  }
}

bool parseHostPort(const std::string &Text, std::string *Host,
                   uint16_t *Port) {
  size_t Colon = Text.rfind(':');
  if (Colon == std::string::npos || Colon + 1 == Text.size())
    return false;
  std::string PortText = Text.substr(Colon + 1);
  char *End = nullptr;
  unsigned long P = std::strtoul(PortText.c_str(), &End, 10);
  if (*End != '\0' || P == 0 || P > 65535)
    return false;
  *Host = Colon ? Text.substr(0, Colon) : std::string();
  if (Host->empty())
    *Host = "127.0.0.1";
  *Port = static_cast<uint16_t>(P);
  return true;
}

Dialer tcpDialer(std::string Host, uint16_t Port, int TimeoutMs) {
  return [Host = std::move(Host), Port,
          TimeoutMs](std::string *Error) -> std::unique_ptr<Transport> {
    return connectTcp(Host, Port, TimeoutMs, Error);
  };
}

Dialer loopbackDialer(LoopbackListener &L) {
  return [&L](std::string *Error) -> std::unique_ptr<Transport> {
    std::unique_ptr<Transport> T = L.connect();
    if (!T && Error)
      *Error = "loopback listener is shut down";
    return T;
  };
}

} // namespace profserve
} // namespace ars
