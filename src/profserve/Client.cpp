//===- profserve/Client.cpp -----------------------------------*- C++ -*-===//

#include "profserve/Client.h"

#include "profstore/ProfileIO.h"
#include "support/Support.h"

#include <chrono>
#include <cstdlib>
#include <thread>

namespace ars {
namespace profserve {

ProfileClient::ProfileClient(Dialer D, ClientConfig C)
    : Dial(std::move(D)), Config(C) {}

ProfileClient::~ProfileClient() { close(); }

void ProfileClient::close() {
  if (Conn) {
    writeFrame(*Conn, MsgType::Bye, std::string()); // best effort
    Conn->close();
    Conn.reset();
  }
}

void ProfileClient::backoff(int Attempt) {
  // 50ms, 100ms, 200ms, ... capped so MaxRetries can't stall a caller
  // for longer than ~2s per retry.
  int64_t Ms = static_cast<int64_t>(Config.BackoffMs) << Attempt;
  if (Ms > 2000)
    Ms = 2000;
  std::this_thread::sleep_for(std::chrono::milliseconds(Ms));
}

ClientResult ProfileClient::connect() {
  if (Conn)
    return {true, ""};
  std::string LastError = "dialer failed";
  for (int Attempt = 0; Attempt <= Config.MaxRetries; ++Attempt) {
    if (Attempt)
      backoff(Attempt - 1);
    ++DialAttempts;
    std::string DialError;
    std::unique_ptr<Transport> T = Dial(&DialError);
    if (!T) {
      LastError = DialError.empty() ? "dial failed" : DialError;
      continue;
    }
    // Handshake on the fresh connection.
    HelloMsg Hello;
    Hello.Version = WireVersion;
    Hello.Fingerprint = Config.Fingerprint;
    Hello.ClientName = Config.Name;
    IoResult IO = writeFrame(*T, MsgType::Hello, encodeHello(Hello));
    if (!IO.ok()) {
      LastError = "HELLO write failed: " + IO.Message;
      T->close();
      continue;
    }
    FrameResult FR =
        readFrame(*T, Config.TimeoutMs, Config.MaxFramePayload);
    if (!FR.ok()) {
      LastError = "HELLO reply: " + FR.Error;
      T->close();
      continue;
    }
    if (FR.F.Type == MsgType::Error) {
      std::string Why;
      decodeText(FR.F.Payload, &Why);
      // A deliberate server rejection (version/fingerprint mismatch)
      // will not improve on retry.
      return {false, "server rejected handshake: " + Why};
    }
    HelloAckMsg Ack;
    if (FR.F.Type != MsgType::HelloAck ||
        !decodeHelloAck(FR.F.Payload, &Ack)) {
      LastError = "malformed HELLO_ACK";
      T->close();
      continue;
    }
    ServerFingerprint = Ack.Fingerprint;
    Conn = std::move(T);
    return {true, ""};
  }
  return {false, support::formatString("connect failed after %d attempts: "
                                       "%s",
                                       DialAttempts, LastError.c_str())};
}

ClientResult ProfileClient::exchange(MsgType ReqType,
                                     const std::string &ReqPayload,
                                     MsgType WantReply, Frame *Reply) {
  IoResult IO = writeFrame(*Conn, ReqType, ReqPayload);
  if (!IO.ok()) {
    Conn->close();
    Conn.reset();
    return {false, std::string(msgTypeName(ReqType)) +
                       " write failed: " + IO.Message};
  }
  FrameResult FR =
      readFrame(*Conn, Config.TimeoutMs, Config.MaxFramePayload);
  if (!FR.ok()) {
    Conn->close();
    Conn.reset();
    return {false, std::string(msgTypeName(ReqType)) +
                       " reply: " + FR.Error};
  }
  if (FR.F.Type == MsgType::Error) {
    std::string Why;
    decodeText(FR.F.Payload, &Why);
    // The server replied coherently; the connection may still be usable.
    return {false, "server: " + Why};
  }
  if (FR.F.Type != WantReply) {
    Conn->close();
    Conn.reset();
    return {false, support::formatString("expected %s, got %s",
                                         msgTypeName(WantReply),
                                         msgTypeName(FR.F.Type))};
  }
  *Reply = std::move(FR.F);
  return {true, ""};
}

ClientResult ProfileClient::exchangeRetry(MsgType ReqType,
                                          const std::string &ReqPayload,
                                          MsgType WantReply,
                                          Frame *Reply) {
  ClientResult Last;
  for (int Attempt = 0; Attempt <= Config.MaxRetries; ++Attempt) {
    if (Attempt)
      backoff(Attempt - 1);
    ClientResult C = connect();
    if (!C.Ok) {
      Last = C;
      continue;
    }
    Last = exchange(ReqType, ReqPayload, WantReply, Reply);
    if (Last.Ok)
      return Last;
    // A coherent server-side ERROR ("server: ...") is a final answer,
    // not a flaky transport; don't hammer the server with retries.
    if (Last.Error.compare(0, 8, "server: ") == 0)
      return Last;
  }
  return Last;
}

ClientResult ProfileClient::pushEncoded(const std::string &ArspBytes) {
  // Retries cover connection establishment only: once the PUSH frame
  // starts onto the wire, a lost ack is indistinguishable from a lost
  // request, and a blind resend could double-count the shard.
  ClientResult C = connect();
  if (!C.Ok)
    return C;
  Frame Reply;
  ClientResult R =
      exchange(MsgType::Push, ArspBytes, MsgType::PushAck, &Reply);
  if (!R.Ok)
    return R;
  PushAckMsg Ack;
  if (!decodePushAck(Reply.Payload, &Ack))
    return {false, "malformed PUSH_ACK"};
  LastMerges = Ack.Merges;
  return {true, ""};
}

ClientResult ProfileClient::push(const profile::ProfileBundle &B,
                                 uint64_t Fingerprint) {
  return pushEncoded(profstore::encodeBundle(B, Fingerprint));
}

ProfileClient::PullResult ProfileClient::pull() {
  PullResult Out;
  Frame Reply;
  ClientResult R = exchangeRetry(MsgType::Pull, std::string(),
                                 MsgType::PullReply, &Reply);
  if (!R.Ok) {
    Out.Error = R.Error;
    return Out;
  }
  profstore::DecodeResult D = profstore::decodeBundle(Reply.Payload);
  if (!D.Ok) {
    Out.Error = "server sent an undecodable bundle: " + D.Error;
    return Out;
  }
  Out.Ok = true;
  Out.Fingerprint = D.Fingerprint;
  Out.Bundle = std::move(D.Bundle);
  Out.RawBytes = std::move(Reply.Payload);
  return Out;
}

ProfileClient::StatsResult ProfileClient::stats() {
  StatsResult Out;
  Frame Reply;
  ClientResult R = exchangeRetry(MsgType::StatsReq, std::string(),
                                 MsgType::StatsReply, &Reply);
  if (!R.Ok) {
    Out.Error = R.Error;
    return Out;
  }
  if (!decodeStats(Reply.Payload, &Out.Stats)) {
    Out.Error = "malformed STATS_REPLY";
    return Out;
  }
  Out.Ok = true;
  return Out;
}

ClientResult ProfileClient::snapshot(std::string *PathOut) {
  Frame Reply;
  ClientResult R = exchangeRetry(MsgType::SnapshotReq, std::string(),
                                 MsgType::SnapshotAck, &Reply);
  if (!R.Ok)
    return R;
  std::string Path;
  if (!decodeText(Reply.Payload, &Path))
    return {false, "malformed SNAPSHOT_ACK"};
  if (PathOut)
    *PathOut = Path;
  return {true, ""};
}

bool parseHostPort(const std::string &Text, std::string *Host,
                   uint16_t *Port) {
  size_t Colon = Text.rfind(':');
  if (Colon == std::string::npos || Colon + 1 == Text.size())
    return false;
  std::string PortText = Text.substr(Colon + 1);
  char *End = nullptr;
  unsigned long P = std::strtoul(PortText.c_str(), &End, 10);
  if (*End != '\0' || P == 0 || P > 65535)
    return false;
  *Host = Colon ? Text.substr(0, Colon) : std::string();
  if (Host->empty())
    *Host = "127.0.0.1";
  *Port = static_cast<uint16_t>(P);
  return true;
}

Dialer tcpDialer(std::string Host, uint16_t Port, int TimeoutMs) {
  return [Host = std::move(Host), Port,
          TimeoutMs](std::string *Error) -> std::unique_ptr<Transport> {
    return connectTcp(Host, Port, TimeoutMs, Error);
  };
}

Dialer loopbackDialer(LoopbackListener &L) {
  return [&L](std::string *Error) -> std::unique_ptr<Transport> {
    std::unique_ptr<Transport> T = L.connect();
    if (!T && Error)
      *Error = "loopback listener is shut down";
    return T;
  };
}

} // namespace profserve
} // namespace ars
