//===- profserve/Transport.h - Byte transports for profserve --*- C++ -*-===//
///
/// \file
/// The byte-stream abstraction the profile collection protocol runs over,
/// with two implementations:
///
///  * Loopback — an in-memory, socket-free pair of bounded byte pipes.
///    Deterministic and dependency-free, so every protocol/server test
///    (including the ThreadSanitizer suites) runs without touching the
///    network stack.
///  * TCP — POSIX sockets on 127.0.0.1/anywhere, non-blocking under the
///    hood so every read AND write honors a timeout and a concurrent
///    close() always unblocks a stalled peer.
///
/// Contract notes shared by both:
///
///  * writeAll delivers every byte or reports why it could not; partial
///    writes are looped internally and never leak to the caller.
///  * readSome returns at least one byte, or Timeout/Eof/Closed; readAll
///    (non-virtual, built on readSome) reads exactly N bytes under one
///    deadline and reports partial progress so framing code can tell a
///    clean end-of-stream from a truncated frame.
///  * close() is idempotent and thread-safe, and wakes any thread blocked
///    in readSome/writeAll on the same transport — the server's shutdown
///    path relies on this to never leak a connection.
///
//===----------------------------------------------------------------------===//

#ifndef ARS_PROFSERVE_TRANSPORT_H
#define ARS_PROFSERVE_TRANSPORT_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>

namespace ars {
namespace profserve {

enum class IoStatus : uint8_t {
  Ok,
  Eof,     ///< peer closed cleanly (no more bytes will arrive)
  Timeout, ///< deadline expired before the requested bytes arrived
  Closed,  ///< this endpoint was close()d (locally) mid-operation
  Error,   ///< transport failure; see Message
};

struct IoResult {
  IoStatus Status = IoStatus::Ok;
  std::string Message; ///< diagnostic for Error (and some Eof) outcomes
  bool ok() const { return Status == IoStatus::Ok; }
};

const char *ioStatusName(IoStatus S);

/// A reliable, ordered, bidirectional byte stream.
class Transport {
public:
  virtual ~Transport() = default;

  /// Writes all \p Size bytes, looping over partial writes.  Blocks at
  /// most the implementation's write timeout per progress step.
  virtual IoResult writeAll(const char *Data, size_t Size) = 0;

  /// Reads 1..\p Max bytes into \p Data, waiting up to \p TimeoutMs
  /// (<= 0 = wait forever) for the first byte.  \p *Read is the byte
  /// count actually delivered (0 on any non-Ok status).
  virtual IoResult readSome(char *Data, size_t Max, int TimeoutMs,
                            size_t *Read) = 0;

  /// Shuts the stream down in both directions.  Idempotent; safe to call
  /// from any thread; unblocks concurrent readSome/writeAll calls.
  virtual void close() = 0;

  /// Human-readable peer label for diagnostics ("loopback", "1.2.3.4:90").
  virtual std::string peer() const = 0;

  /// Reads exactly \p Size bytes under a single \p TimeoutMs deadline.
  /// On failure \p *Read (when non-null) holds the bytes read before the
  /// failure, letting framing code distinguish "clean EOF between frames"
  /// (Eof with 0 read) from "stream died mid-frame".
  IoResult readAll(char *Data, size_t Size, int TimeoutMs,
                   size_t *Read = nullptr);
};

/// Accepts inbound connections for a server.
class Listener {
public:
  virtual ~Listener() = default;

  /// Blocks for the next connection; returns nullptr once shutdown() has
  /// been called (and never a spurious nullptr before that).
  virtual std::unique_ptr<Transport> accept() = 0;

  /// Stops accept(): current and future calls return nullptr.
  virtual void shutdown() = 0;

  /// Where this listener can be reached ("loopback", "127.0.0.1:4817").
  virtual std::string address() const = 0;
};

/// An in-process connection: two Transports joined by a pair of in-memory
/// pipes.  first <-> second; bytes written to one are read from the other.
std::pair<std::unique_ptr<Transport>, std::unique_ptr<Transport>>
makeLoopbackPair();

/// In-memory listener: connect() hands the server end to accept() and
/// returns the client end, with no sockets involved.
class LoopbackListener : public Listener {
public:
  LoopbackListener();
  ~LoopbackListener() override;

  std::unique_ptr<Transport> accept() override;
  void shutdown() override;
  std::string address() const override { return "loopback"; }

  /// Client side of a fresh connection; nullptr after shutdown().
  std::unique_ptr<Transport> connect();

private:
  struct Impl;
  std::shared_ptr<Impl> I;
};

/// TCP listener bound to 127.0.0.1:\p Port (0 = pick an ephemeral port,
/// readable via port()).  Returns nullptr and fills \p Error on failure —
/// e.g. in sandboxes that forbid sockets, which callers should treat as
/// "TCP unavailable", not as a bug.
class TcpListener : public Listener {
public:
  ~TcpListener() override;

  std::unique_ptr<Transport> accept() override;
  void shutdown() override;
  std::string address() const override;
  uint16_t port() const { return Port; }

private:
  friend std::unique_ptr<TcpListener> listenTcp(uint16_t, std::string *);
  TcpListener(int Fd, uint16_t Port) : Fd(Fd), Port(Port) {}

  int Fd;
  uint16_t Port;
  std::shared_ptr<struct TcpShutdownFlag> Stop;
};

std::unique_ptr<TcpListener> listenTcp(uint16_t Port, std::string *Error);

/// Connects to \p Host:\p Port within \p TimeoutMs; nullptr + \p Error on
/// failure.
std::unique_ptr<Transport> connectTcp(const std::string &Host,
                                      uint16_t Port, int TimeoutMs,
                                      std::string *Error);

} // namespace profserve
} // namespace ars

#endif // ARS_PROFSERVE_TRANSPORT_H
