//===- profserve/Transport.h - Byte transports for profserve --*- C++ -*-===//
///
/// \file
/// The byte-stream abstraction the profile collection protocol runs over,
/// with two implementations:
///
///  * Loopback — an in-memory, socket-free pair of bounded byte pipes.
///    Deterministic and dependency-free, so every protocol/server test
///    (including the ThreadSanitizer suites) runs without touching the
///    network stack.
///  * TCP — POSIX sockets on 127.0.0.1/anywhere, non-blocking under the
///    hood so every read AND write honors a timeout and a concurrent
///    close() always unblocks a stalled peer.
///
/// Contract notes shared by both:
///
///  * writeAll delivers every byte or reports why it could not; partial
///    writes are looped internally and never leak to the caller.
///  * readSome returns at least one byte, or Timeout/Eof/Closed; readAll
///    (non-virtual, built on readSome) reads exactly N bytes under one
///    deadline and reports partial progress so framing code can tell a
///    clean end-of-stream from a truncated frame.
///  * close() is idempotent and thread-safe, and wakes any thread blocked
///    in readSome/writeAll on the same transport — the server's shutdown
///    path relies on this to never leak a connection.
///
/// Reactor interface (see EventLoop.h): in addition to the blocking
/// calls, both implementations expose non-blocking readNow/writeNow that
/// report WouldBlock instead of waiting, plus one of two readiness
/// mechanisms — a pollable fd (TCP) or a ready-signal callback fired on
/// any state change (loopback).  A transport that supports neither (the
/// base-class defaults) cannot be driven by the event loop.
///
//===----------------------------------------------------------------------===//

#ifndef ARS_PROFSERVE_TRANSPORT_H
#define ARS_PROFSERVE_TRANSPORT_H

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>

namespace ars {
namespace profserve {

enum class IoStatus : uint8_t {
  Ok,
  Eof,        ///< peer closed cleanly (no more bytes will arrive)
  Timeout,    ///< deadline expired before the requested bytes arrived
  Closed,     ///< this endpoint was close()d (locally) mid-operation
  Error,      ///< transport failure; see Message
  WouldBlock, ///< non-blocking op made no progress; try again when ready
};

struct IoResult {
  IoStatus Status = IoStatus::Ok;
  std::string Message; ///< diagnostic for Error (and some Eof) outcomes
  bool ok() const { return Status == IoStatus::Ok; }
};

const char *ioStatusName(IoStatus S);

/// Fired (from any thread, possibly while transport-internal locks are
/// held) whenever a transport MAY have become readable, writable or
/// closed.  Spurious fires are allowed; the receiver re-polls with
/// readNow/writeNow.  Implementations must not call back into the
/// transport from the signal.  Held by shared_ptr so a peer that
/// outlives the watched endpoint fires into an expired weak_ptr, never
/// a dangling callback.
using ReadySignal = std::shared_ptr<std::function<void()>>;

/// A reliable, ordered, bidirectional byte stream.
class Transport {
public:
  virtual ~Transport() = default;

  /// Writes all \p Size bytes, looping over partial writes.  Blocks at
  /// most the implementation's write timeout per progress step.
  virtual IoResult writeAll(const char *Data, size_t Size) = 0;

  /// Reads 1..\p Max bytes into \p Data, waiting up to \p TimeoutMs
  /// (<= 0 = wait forever) for the first byte.  \p *Read is the byte
  /// count actually delivered (0 on any non-Ok status).
  virtual IoResult readSome(char *Data, size_t Max, int TimeoutMs,
                            size_t *Read) = 0;

  /// Non-blocking read: delivers 1..\p Max immediately-available bytes
  /// (Ok), or WouldBlock/Eof/Closed/Error without waiting.
  virtual IoResult readNow(char *Data, size_t Max, size_t *Read);

  /// Non-blocking write: accepts as many of the \p Size bytes as fit
  /// right now.  Ok with \p *Written in [1, Size] on any progress
  /// (possibly partial); WouldBlock with 0 written when nothing fits.
  virtual IoResult writeNow(const char *Data, size_t Size,
                            size_t *Written);

  /// Readiness fd for poll(2); -1 when this transport signals readiness
  /// through watch() instead (or supports neither).
  virtual int pollFd() const { return -1; }

  /// Registers \p Signal to fire on any readability/writability/close
  /// transition.  The transport holds only a weak reference; dropping
  /// the shared_ptr unregisters.  Default: unsupported no-op.
  virtual void watch(const ReadySignal &Signal) { (void)Signal; }

  /// Shuts the stream down in both directions.  Idempotent; safe to call
  /// from any thread; unblocks concurrent readSome/writeAll calls.
  virtual void close() = 0;

  /// Human-readable peer label for diagnostics ("loopback", "1.2.3.4:90").
  virtual std::string peer() const = 0;

  /// Reads exactly \p Size bytes under a single \p TimeoutMs deadline.
  /// On failure \p *Read (when non-null) holds the bytes read before the
  /// failure, letting framing code distinguish "clean EOF between frames"
  /// (Eof with 0 read) from "stream died mid-frame".
  IoResult readAll(char *Data, size_t Size, int TimeoutMs,
                   size_t *Read = nullptr);
};

/// Accepts inbound connections for a server.
class Listener {
public:
  virtual ~Listener() = default;

  /// Blocks for the next connection; returns nullptr once shutdown() has
  /// been called (and never a spurious nullptr before that).
  virtual std::unique_ptr<Transport> accept() = 0;

  /// Stops accept(): current and future calls return nullptr.
  virtual void shutdown() = 0;

  /// Where this listener can be reached ("loopback", "127.0.0.1:4817").
  virtual std::string address() const = 0;
};

/// An in-process connection: two Transports joined by a pair of in-memory
/// pipes.  first <-> second; bytes written to one are read from the other.
/// \p CapBytes bounds each pipe's buffered bytes (0 = unbounded): a full
/// pipe blocks writeAll (up to its write timeout) and turns writeNow into
/// WouldBlock — how tests exercise real write-backpressure in memory.
std::pair<std::unique_ptr<Transport>, std::unique_ptr<Transport>>
makeLoopbackPair(size_t CapBytes = 0);

/// In-memory listener: connect() hands the server end to accept() and
/// returns the client end, with no sockets involved.
class LoopbackListener : public Listener {
public:
  LoopbackListener();
  ~LoopbackListener() override;

  std::unique_ptr<Transport> accept() override;
  void shutdown() override;
  std::string address() const override { return "loopback"; }

  /// Client side of a fresh connection; nullptr after shutdown().
  std::unique_ptr<Transport> connect();

  /// Pipe capacity for connections made after this call (0 = unbounded;
  /// see makeLoopbackPair).  Backpressure tests set a tiny cap so a
  /// reply larger than the pipe genuinely blocks the server's writer.
  void setPipeCapacity(size_t CapBytes);

private:
  struct Impl;
  std::shared_ptr<Impl> I;
};

/// TCP listener bound to 127.0.0.1:\p Port (0 = pick an ephemeral port,
/// readable via port()).  Returns nullptr and fills \p Error on failure —
/// e.g. in sandboxes that forbid sockets, which callers should treat as
/// "TCP unavailable", not as a bug.
class TcpListener : public Listener {
public:
  ~TcpListener() override;

  std::unique_ptr<Transport> accept() override;
  void shutdown() override;
  std::string address() const override;
  uint16_t port() const { return Port; }

private:
  friend std::unique_ptr<TcpListener> listenTcp(uint16_t, std::string *);
  TcpListener(int Fd, uint16_t Port) : Fd(Fd), Port(Port) {}

  int Fd;
  uint16_t Port;
  std::shared_ptr<struct TcpShutdownFlag> Stop;
};

std::unique_ptr<TcpListener> listenTcp(uint16_t Port, std::string *Error);

/// Connects to \p Host:\p Port within \p TimeoutMs; nullptr + \p Error on
/// failure.
std::unique_ptr<Transport> connectTcp(const std::string &Host,
                                      uint16_t Port, int TimeoutMs,
                                      std::string *Error);

} // namespace profserve
} // namespace ars

#endif // ARS_PROFSERVE_TRANSPORT_H
