//===- profserve/Client.h - Collection client library ---------*- C++ -*-===//
///
/// \file
/// The client side of the profile collection protocol: what an
/// instrumented process (or `arsc push`/`pull`) uses to stream its
/// profile to a collection server instead of — or in addition to —
/// writing a file.
///
/// The client dials through a caller-supplied Dialer (a factory of
/// Transports), so the same code drives TCP, the in-memory loopback, and
/// the fault-injecting decorator (src/faultinject).  Connection
/// establishment (dial + HELLO/HELLO_ACK) retries with bounded
/// exponential backoff plus ±BackoffJitterPct seeded jitter, so a fleet
/// of clients recovering from one server restart does not retry in
/// lockstep; every request runs under a deadline.
///
/// Retry semantics by operation:
///
///  * connect / pull / stats / snapshot-request — idempotent, retried up
///    to MaxRetries times (reconnecting as needed).
///  * push with SessionId == 0 (legacy) — retried only while
///    establishing the connection.  Once the PUSH frame has started onto
///    the wire a failure is REPORTED, never blindly retried: the server
///    may have merged the shard before the ack was lost, and a resend
///    would double-count it.
///  * push with SessionId != 0 — exactly-once: every shard gets a fresh
///    per-session sequence number, and the server deduplicates retried
///    (session, seq) pairs, so a push whose ack was lost mid-wire IS
///    retried and merges exactly once.  A server ERROR(RETRY_AFTER)
///    (load shedding) is also retried after backoff.
///
/// Failure containment:
///
///  * Circuit breaker — after BreakerThreshold consecutive transport
///    failures the client stops dialing for a cooldown (wall-clock ms,
///    or a deterministic count of skipped operations for replayable
///    tests), then probes again half-open.  0 disables it.
///  * Spill file — a sequenced push that exhausts its retries (or hits
///    an open breaker) is appended to SpillPath with its sequence number
///    and replayed by replaySpill() on reconnect; the server's dedup
///    makes the replay safe even when the original push half-landed.
///
//===----------------------------------------------------------------------===//

#ifndef ARS_PROFSERVE_CLIENT_H
#define ARS_PROFSERVE_CLIENT_H

#include "profserve/Protocol.h"
#include "profserve/Transport.h"
#include "profile/Profiles.h"
#include "support/Support.h"

#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace ars {
namespace profserve {

/// Creates a fresh connection to the server, or nullptr + \p *Error.
using Dialer =
    std::function<std::unique_ptr<Transport>(std::string *Error)>;

struct ClientConfig {
  int TimeoutMs = 5000;   ///< per-request deadline (dial, write, reply)
  int MaxRetries = 3;     ///< additional attempts after the first failure
  int BackoffMs = 50;     ///< first retry delay; doubles per retry
  /// Seeded jitter applied to every backoff sleep: the delay is drawn
  /// uniformly from ±this percent around the exponential value.  0 =
  /// lockstep (deterministic timing for tests that need it).
  uint32_t BackoffJitterPct = 25;
  /// Seed for the jitter PRNG; 0 derives one from SessionId so distinct
  /// clients jitter differently by default.
  uint64_t JitterSeed = 0;
  std::string Name = "arsc"; ///< diagnostic label sent in HELLO
  /// Module fingerprint announced in HELLO (0 = none).  The server
  /// rejects the handshake if it is pinned to a different module.
  uint64_t Fingerprint = 0;
  /// Client-chosen session id announced in HELLO; nonzero enables
  /// sequenced, exactly-once pushes (see file comment).  Must be stable
  /// across reconnects of the same logical pusher.
  uint64_t SessionId = 0;
  /// Consecutive transport failures that open the circuit breaker
  /// (0 = breaker disabled).
  int BreakerThreshold = 0;
  /// Wall-clock cooldown before a half-open probe.
  int BreakerCooldownMs = 1000;
  /// When nonzero, the cooldown is instead this many DENIED operations —
  /// a deterministic, wall-clock-free policy for replayable chaos tests.
  int BreakerCooldownOps = 0;
  /// Where unpushable sequenced shards spill (empty = spilling off).
  std::string SpillPath;
  size_t MaxFramePayload = DefaultMaxFramePayload;
};

struct ClientResult {
  bool Ok = false;
  std::string Error;
  bool Spilled = false;     ///< the shard was saved to SpillPath
  bool ServerReply = false; ///< Error came from a coherent server ERROR
  ErrCode Code = ErrCode::Generic; ///< valid when ServerReply
};

class ProfileClient {
public:
  ProfileClient(Dialer D, ClientConfig C);

  /// Multi-homed client: \p Dials is an ordered parent list.  connect()
  /// always tries the current parent first (sticky on success) and
  /// advances to the next — wrapping — whenever a dial or handshake
  /// fails, so a client survives the death of its parent by failing over
  /// to a backup.  Sequence numbers continue across parents: the v5
  /// HELLO_ACK LastSeq floor (below) plus server-side (session, seq)
  /// dedup keep the failover exactly-once.
  ProfileClient(std::vector<Dialer> Dials, ClientConfig C);

  /// Sends BYE (best effort) and closes.
  ~ProfileClient();

  ProfileClient(const ProfileClient &) = delete;
  ProfileClient &operator=(const ProfileClient &) = delete;

  /// Ensures a live, HELLO-negotiated connection (dial + handshake with
  /// retry/backoff).  The other operations call this implicitly.
  ClientResult connect();

  /// connect() behind the circuit breaker: denied while the breaker is
  /// cooling down, and a transport-level failure counts as a strike.
  /// The session-before-seq paths (pushEncoded/pushBatch) use this so a
  /// dead server can't be dialed past the breaker just because the
  /// handshake now happens ahead of sequence numbering.
  ClientResult connectGated();

  /// Uploads one already-encoded .arsp shard (see retry semantics in the
  /// file comment; exactly-once when SessionId != 0).
  ClientResult pushEncoded(const std::string &ArspBytes);

  /// encodeBundle + pushEncoded.
  ClientResult push(const profile::ProfileBundle &B, uint64_t Fingerprint);

  /// Uploads many encoded shards in one wire-v3 PUSH_BATCH frame (one
  /// cumulative ack — round trips amortize over the batch).  Sequence
  /// numbers are assigned up front and stable across retries, so the
  /// server's (session, seq) dedup keeps a retried batch whose prefix
  /// half-landed exactly-once.  Against a server that negotiated wire v2
  /// the batch transparently degrades to per-shard sequenced pushes with
  /// the same sequence numbers.  Ok iff every shard merged or
  /// deduplicated; on failure the whole batch spills for replaySpill().
  ClientResult pushBatch(const std::vector<std::string> &ArspShards);

  /// Re-pushes every shard in SpillPath (with its original sequence
  /// number, so server-side dedup applies), rewriting the file with
  /// whatever still cannot be pushed.  Ok when the spill is empty after
  /// the pass.  No-op (Ok) when spilling is not configured.
  ClientResult replaySpill();

  /// Parses SpillPath and returns the number of spilled shards (0 when
  /// missing/unconfigured; corrupt tail records are not counted).
  size_t spillCount() const;

  struct PullResult {
    bool Ok = false;
    std::string Error;
    uint64_t Fingerprint = 0;
    profile::ProfileBundle Bundle;
    std::string RawBytes; ///< the .arsp exactly as the server sent it
  };
  /// Downloads and decodes the merged bundle.
  PullResult pull();

  struct StatsResult {
    bool Ok = false;
    std::string Error;
    StatsMsg Stats;
  };
  StatsResult stats();

  /// Asks the server to snapshot now; \p *PathOut (optional) receives the
  /// path the server reports.
  ClientResult snapshot(std::string *PathOut);

  /// Registers the handler for unsolicited POLICY frames (wire v4, the
  /// closed-loop sampling push-down).  The handler runs inline on
  /// whatever thread is reading the connection — during any exchange
  /// that finds a POLICY frame queued ahead of its reply, and during
  /// pollPolicy().  A POLICY frame whose payload fails to decode is
  /// dropped without invoking the handler: the receiver silently keeps
  /// its current (static) intervals — corruption degrades, never
  /// misconfigures.
  void onPolicy(std::function<void(const PolicyMsg &)> Handler);

  /// Drains server-initiated POLICY frames queued on the live
  /// connection, invoking the onPolicy handler per well-formed frame,
  /// until a read deadline of \p TimeoutMs passes with nothing to read.
  /// Returns the number of well-formed POLICY frames seen.  Any other
  /// frame type here is unsolicited and desynchronizing, so the
  /// connection is dropped (the next operation reconnects).  No-op (0)
  /// when disconnected or the session negotiated below v4.
  int pollPolicy(int TimeoutMs);

  /// Well-formed POLICY frames received over the client's lifetime.
  uint64_t policyFramesSeen() const { return PolicyFrames; }

  /// Total merges the server reported in the last PUSH_ACK.
  uint64_t lastServerMerges() const { return LastMerges; }

  /// The server's pinned/adopted fingerprint from the last HELLO_ACK.
  uint64_t serverFingerprint() const { return ServerFingerprint; }

  /// Wire version the server echoed in the last HELLO_ACK (the session's
  /// dialect); 0 before the first successful handshake.
  uint32_t negotiatedVersion() const { return Negotiated; }

  /// Dial attempts made (for tests asserting the backoff path).
  int dialAttempts() const { return DialAttempts; }

  /// Times connect() advanced to a different parent after a dial or
  /// handshake failure (multi-homed clients only).
  uint64_t failovers() const { return Failovers; }

  /// Index into the parent list of the parent currently in use.
  size_t activeParent() const { return ActiveDial; }

  /// Spill-file records dropped because their CRC did not match
  /// (replaySpill/spillCount resync past them instead of aborting the
  /// replay — one corrupt record never strands the valid ones after it).
  uint64_t spillCorrupt() const { return SpillCorrupt; }

  /// PUSH_ACKs that reported Duplicate — retries the server deduplicated.
  uint64_t duplicateAcks() const { return DupAcks; }

  /// Whether the circuit breaker is currently open.
  bool breakerOpen() const { return BreakerIsOpen; }

  void close();

private:
  /// One request/reply exchange on the live connection; no reconnection.
  ClientResult exchange(MsgType ReqType, const std::string &ReqPayload,
                        MsgType WantReply, Frame *Reply);
  /// exchange() with reconnect-and-retry for idempotent requests.
  ClientResult exchangeRetry(MsgType ReqType,
                             const std::string &ReqPayload,
                             MsgType WantReply, Frame *Reply);
  /// The exactly-once retry loop for one sequenced shard.
  ClientResult pushSequenced(uint64_t Seq, const std::string &ArspBytes);
  /// The exactly-once retry loop for one already-sequenced batch.
  ClientResult pushBatchSequenced(const std::vector<BatchShard> &Batch);
  bool appendSpill(uint64_t Seq, const std::string &ArspBytes,
                   std::string *Error);
  /// Rotates ActiveDial to the next parent after a failed attempt
  /// (no-op for single-homed clients).
  void advanceParent();
  void backoff(int Attempt);
  /// Decodes and dispatches one POLICY payload; false = corrupt
  /// (silently dropped — the degrade-to-static contract).
  bool handlePolicyPayload(const std::string &Payload);

  // Circuit breaker bookkeeping.
  bool breakerAllows();
  void recordFailure();
  void recordSuccess();

  /// Ordered parent list (size 1 for the single-homed ctor).  ActiveDial
  /// indexes the parent in use; it only moves on failure (sticky).
  std::vector<Dialer> Dials;
  size_t ActiveDial = 0;
  uint64_t Failovers = 0;
  ClientConfig Config;
  std::unique_ptr<Transport> Conn;
  support::Xorshift64 Jitter;
  uint64_t LastMerges = 0;
  uint64_t ServerFingerprint = 0;
  uint32_t Negotiated = 0;
  int DialAttempts = 0;
  uint64_t NextSeq = 0; ///< last assigned push sequence number
  uint64_t DupAcks = 0;
  /// mutable: spillCount() is a const observer but still tallies the
  /// corrupt records it resyncs past.
  mutable uint64_t SpillCorrupt = 0;
  std::function<void(const PolicyMsg &)> PolicyHandler;
  uint64_t PolicyFrames = 0;
  int ConsecutiveFailures = 0;
  bool BreakerIsOpen = false;
  int CooldownOpsLeft = 0;
  std::chrono::steady_clock::time_point BreakerOpenedAt;
};

/// Parses "host:port" (host may be empty = 127.0.0.1).  False on a
/// missing/invalid port.
bool parseHostPort(const std::string &Text, std::string *Host,
                   uint16_t *Port);

/// Dialer for a TCP server at \p Host:\p Port.
Dialer tcpDialer(std::string Host, uint16_t Port, int TimeoutMs);

/// Dialer for an in-process LoopbackListener (which must outlive it).
Dialer loopbackDialer(LoopbackListener &L);

} // namespace profserve
} // namespace ars

#endif // ARS_PROFSERVE_CLIENT_H
