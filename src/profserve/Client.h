//===- profserve/Client.h - Collection client library ---------*- C++ -*-===//
///
/// \file
/// The client side of the profile collection protocol: what an
/// instrumented process (or `arsc push`/`pull`) uses to stream its
/// profile to a collection server instead of — or in addition to —
/// writing a file.
///
/// The client dials through a caller-supplied Dialer (a factory of
/// Transports), so the same code drives TCP and the in-memory loopback.
/// Connection establishment (dial + HELLO/HELLO_ACK) retries with
/// bounded exponential backoff; every request runs under a deadline.
///
/// Retry semantics by operation:
///
///  * connect / pull / stats / snapshot-request — idempotent, retried up
///    to MaxRetries times (reconnecting as needed).
///  * push — retried only while establishing the connection.  Once the
///    PUSH frame has started onto the wire a failure is REPORTED, never
///    blindly retried: the server may have merged the shard before the
///    ack was lost, and a resend would double-count it.  Callers that
///    need at-least-once semantics re-push explicitly and accept the
///    skew (the profile algebra tolerates it; exactness does not).
///
//===----------------------------------------------------------------------===//

#ifndef ARS_PROFSERVE_CLIENT_H
#define ARS_PROFSERVE_CLIENT_H

#include "profserve/Protocol.h"
#include "profserve/Transport.h"
#include "profile/Profiles.h"

#include <functional>
#include <memory>
#include <string>

namespace ars {
namespace profserve {

/// Creates a fresh connection to the server, or nullptr + \p *Error.
using Dialer =
    std::function<std::unique_ptr<Transport>(std::string *Error)>;

struct ClientConfig {
  int TimeoutMs = 5000;   ///< per-request deadline (dial, write, reply)
  int MaxRetries = 3;     ///< additional attempts after the first failure
  int BackoffMs = 50;     ///< first retry delay; doubles per retry
  std::string Name = "arsc"; ///< diagnostic label sent in HELLO
  /// Module fingerprint announced in HELLO (0 = none).  The server
  /// rejects the handshake if it is pinned to a different module.
  uint64_t Fingerprint = 0;
  size_t MaxFramePayload = DefaultMaxFramePayload;
};

struct ClientResult {
  bool Ok = false;
  std::string Error;
};

class ProfileClient {
public:
  ProfileClient(Dialer D, ClientConfig C);

  /// Sends BYE (best effort) and closes.
  ~ProfileClient();

  ProfileClient(const ProfileClient &) = delete;
  ProfileClient &operator=(const ProfileClient &) = delete;

  /// Ensures a live, HELLO-negotiated connection (dial + handshake with
  /// retry/backoff).  The other operations call this implicitly.
  ClientResult connect();

  /// Uploads one already-encoded .arsp shard (see retry caveat above).
  ClientResult pushEncoded(const std::string &ArspBytes);

  /// encodeBundle + pushEncoded.
  ClientResult push(const profile::ProfileBundle &B, uint64_t Fingerprint);

  struct PullResult {
    bool Ok = false;
    std::string Error;
    uint64_t Fingerprint = 0;
    profile::ProfileBundle Bundle;
    std::string RawBytes; ///< the .arsp exactly as the server sent it
  };
  /// Downloads and decodes the merged bundle.
  PullResult pull();

  struct StatsResult {
    bool Ok = false;
    std::string Error;
    StatsMsg Stats;
  };
  StatsResult stats();

  /// Asks the server to snapshot now; \p *PathOut (optional) receives the
  /// path the server reports.
  ClientResult snapshot(std::string *PathOut);

  /// Total merges the server reported in the last PUSH_ACK.
  uint64_t lastServerMerges() const { return LastMerges; }

  /// The server's pinned/adopted fingerprint from the last HELLO_ACK.
  uint64_t serverFingerprint() const { return ServerFingerprint; }

  /// Dial attempts made (for tests asserting the backoff path).
  int dialAttempts() const { return DialAttempts; }

  void close();

private:
  /// One request/reply exchange on the live connection; no reconnection.
  ClientResult exchange(MsgType ReqType, const std::string &ReqPayload,
                        MsgType WantReply, Frame *Reply);
  /// exchange() with reconnect-and-retry for idempotent requests.
  ClientResult exchangeRetry(MsgType ReqType,
                             const std::string &ReqPayload,
                             MsgType WantReply, Frame *Reply);
  void backoff(int Attempt);

  Dialer Dial;
  ClientConfig Config;
  std::unique_ptr<Transport> Conn;
  uint64_t LastMerges = 0;
  uint64_t ServerFingerprint = 0;
  int DialAttempts = 0;
};

/// Parses "host:port" (host may be empty = 127.0.0.1).  False on a
/// missing/invalid port.
bool parseHostPort(const std::string &Text, std::string *Host,
                   uint16_t *Port);

/// Dialer for a TCP server at \p Host:\p Port.
Dialer tcpDialer(std::string Host, uint16_t Port, int TimeoutMs);

/// Dialer for an in-process LoopbackListener (which must outlive it).
Dialer loopbackDialer(LoopbackListener &L);

} // namespace profserve
} // namespace ars

#endif // ARS_PROFSERVE_CLIENT_H
