//===- profserve/Transport.cpp --------------------------------*- C++ -*-===//

#include "profserve/Transport.h"

#include "support/Support.h"

#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <deque>
#include <vector>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace ars {
namespace profserve {

const char *ioStatusName(IoStatus S) {
  switch (S) {
  case IoStatus::Ok:         return "ok";
  case IoStatus::Eof:        return "eof";
  case IoStatus::Timeout:    return "timeout";
  case IoStatus::Closed:     return "closed";
  case IoStatus::Error:      return "error";
  case IoStatus::WouldBlock: return "would-block";
  }
  return "?";
}

namespace {

using Clock = std::chrono::steady_clock;

IoResult makeError(IoStatus S, std::string Message) {
  IoResult R;
  R.Status = S;
  R.Message = std::move(Message);
  return R;
}

int remainingMs(Clock::time_point Deadline) {
  auto Left = std::chrono::duration_cast<std::chrono::milliseconds>(
                  Deadline - Clock::now())
                  .count();
  return Left > 0 ? static_cast<int>(Left) : 0;
}

} // namespace

IoResult Transport::readNow(char *, size_t, size_t *Read) {
  *Read = 0;
  return makeError(IoStatus::Error,
                   "non-blocking read unsupported by this transport");
}

IoResult Transport::writeNow(const char *, size_t, size_t *Written) {
  *Written = 0;
  return makeError(IoStatus::Error,
                   "non-blocking write unsupported by this transport");
}

IoResult Transport::readAll(char *Data, size_t Size, int TimeoutMs,
                            size_t *Read) {
  size_t Got = 0;
  Clock::time_point Deadline =
      Clock::now() + std::chrono::milliseconds(TimeoutMs > 0 ? TimeoutMs : 0);
  while (Got != Size) {
    int Left = TimeoutMs > 0 ? remainingMs(Deadline) : 0;
    if (TimeoutMs > 0 && Left == 0) {
      if (Read)
        *Read = Got;
      return makeError(IoStatus::Timeout, "read deadline expired");
    }
    size_t N = 0;
    IoResult R = readSome(Data + Got, Size - Got, TimeoutMs > 0 ? Left : 0,
                          &N);
    Got += N;
    if (!R.ok()) {
      if (Read)
        *Read = Got;
      return R;
    }
  }
  if (Read)
    *Read = Got;
  return IoResult();
}

//===----------------------------------------------------------------------===//
// Loopback: two in-memory pipes.
//===----------------------------------------------------------------------===//

namespace {

/// Fired after the pipe lock is released — a watcher may grab unrelated
/// (reactor) locks of its own, and must never be invoked under Mu while
/// a reactor thread holds its own lock and waits for Mu.
using WatcherFires = std::vector<std::shared_ptr<std::function<void()>>>;

void fireAll(const WatcherFires &Fires) {
  for (const auto &F : Fires)
    if (*F)
      (*F)();
}

/// One direction of a loopback connection.
struct Pipe {
  std::mutex Mu;
  std::condition_variable Cv;
  std::string Buf;
  size_t Off = 0;  ///< consumed prefix of Buf (compacted when drained)
  size_t Cap = 0;  ///< max buffered bytes; 0 = unbounded
  bool Closed = false;
  /// Ready-signals of both endpoints (weak: an endpoint that died simply
  /// stops being notified; see ReadySignal in Transport.h).
  std::vector<std::weak_ptr<std::function<void()>>> Watchers;

  size_t buffered() const { return Buf.size() - Off; }

  /// Locks every live watcher (pruning the expired) — call under Mu,
  /// invoke the result after unlocking.
  WatcherFires snapshotWatchers() {
    WatcherFires Live;
    size_t Keep = 0;
    for (size_t I = 0; I != Watchers.size(); ++I)
      if (auto S = Watchers[I].lock()) {
        Live.push_back(std::move(S));
        if (Keep != I) // guard: self-move-assignment empties a weak_ptr
          Watchers[Keep] = std::move(Watchers[I]);
        ++Keep;
      }
    Watchers.resize(Keep);
    return Live;
  }

  void close() {
    WatcherFires Fires;
    {
      std::lock_guard<std::mutex> Lock(Mu);
      if (Closed)
        return;
      Closed = true;
      Cv.notify_all();
      Fires = snapshotWatchers();
    }
    fireAll(Fires);
  }
};

class LoopbackTransport : public Transport {
public:
  LoopbackTransport(std::shared_ptr<Pipe> In, std::shared_ptr<Pipe> Out)
      : In(std::move(In)), Out(std::move(Out)) {}
  ~LoopbackTransport() override { close(); }

  IoResult writeAll(const char *Data, size_t Size) override {
    size_t Done = 0;
    while (Done != Size) {
      WatcherFires Fires;
      {
        std::unique_lock<std::mutex> Lock(Out->Mu);
        if (Out->Closed)
          return makeError(IoStatus::Closed, "loopback pipe closed");
        if (Out->Cap) {
          // Bounded pipe: genuine backpressure.  Wait for the reader to
          // drain below the cap (or for a close), bounded like TCP's
          // write timeout so one stalled reader can't pin us forever.
          if (!Out->Cv.wait_for(Lock,
                                std::chrono::milliseconds(WriteTimeoutMs),
                                [&] {
                                  return Out->Closed ||
                                         Out->buffered() < Out->Cap;
                                }))
            return makeError(IoStatus::Timeout,
                             "loopback write timed out (pipe full)");
          if (Out->Closed)
            return makeError(IoStatus::Closed, "loopback pipe closed");
          size_t Space = Out->Cap - Out->buffered();
          size_t N = Space < Size - Done ? Space : Size - Done;
          Out->Buf.append(Data + Done, N);
          Done += N;
        } else {
          Out->Buf.append(Data + Done, Size - Done);
          Done = Size;
        }
        Out->Cv.notify_all();
        Fires = Out->snapshotWatchers();
      }
      fireAll(Fires);
    }
    return IoResult();
  }

  IoResult writeNow(const char *Data, size_t Size,
                    size_t *Written) override {
    *Written = 0;
    WatcherFires Fires;
    {
      std::lock_guard<std::mutex> Lock(Out->Mu);
      if (Out->Closed)
        return makeError(IoStatus::Closed, "loopback pipe closed");
      size_t Space =
          Out->Cap ? Out->Cap - std::min(Out->Cap, Out->buffered()) : Size;
      if (Space == 0)
        return makeError(IoStatus::WouldBlock, "loopback pipe full");
      size_t N = Space < Size ? Space : Size;
      Out->Buf.append(Data, N);
      *Written = N;
      Out->Cv.notify_all();
      Fires = Out->snapshotWatchers();
    }
    fireAll(Fires);
    return IoResult();
  }

  IoResult readSome(char *Data, size_t Max, int TimeoutMs,
                    size_t *Read) override {
    *Read = 0;
    WatcherFires Fires;
    IoResult Result;
    {
      std::unique_lock<std::mutex> Lock(In->Mu);
      auto HaveDataOrClosed = [&] {
        return In->Off != In->Buf.size() || In->Closed;
      };
      if (TimeoutMs > 0) {
        if (!In->Cv.wait_for(Lock, std::chrono::milliseconds(TimeoutMs),
                             HaveDataOrClosed))
          return makeError(IoStatus::Timeout, "loopback read timed out");
      } else {
        In->Cv.wait(Lock, HaveDataOrClosed);
      }
      // Drain buffered bytes even after a close — a peer that wrote a
      // reply and hung up must still be readable, like TCP.
      size_t Avail = In->buffered();
      if (Avail == 0)
        return makeError(IoStatus::Eof, "loopback peer closed");
      size_t N = Avail < Max ? Avail : Max;
      std::memcpy(Data, In->Buf.data() + In->Off, N);
      In->Off += N;
      if (In->Off == In->Buf.size()) {
        In->Buf.clear();
        In->Off = 0;
      }
      *Read = N;
      if (In->Cap) {
        // Space freed in a bounded pipe: wake writers blocked on the cap.
        In->Cv.notify_all();
        Fires = In->snapshotWatchers();
      }
    }
    fireAll(Fires);
    return Result;
  }

  IoResult readNow(char *Data, size_t Max, size_t *Read) override {
    *Read = 0;
    WatcherFires Fires;
    {
      std::lock_guard<std::mutex> Lock(In->Mu);
      size_t Avail = In->buffered();
      if (Avail == 0) {
        if (In->Closed)
          return makeError(IoStatus::Eof, "loopback peer closed");
        return makeError(IoStatus::WouldBlock, "loopback pipe empty");
      }
      size_t N = Avail < Max ? Avail : Max;
      std::memcpy(Data, In->Buf.data() + In->Off, N);
      In->Off += N;
      if (In->Off == In->Buf.size()) {
        In->Buf.clear();
        In->Off = 0;
      }
      *Read = N;
      if (In->Cap) {
        In->Cv.notify_all();
        Fires = In->snapshotWatchers();
      }
    }
    fireAll(Fires);
    return IoResult();
  }

  void watch(const ReadySignal &Signal) override {
    for (Pipe *P : {In.get(), Out.get()}) {
      std::lock_guard<std::mutex> Lock(P->Mu);
      P->Watchers.push_back(Signal);
    }
  }

  void close() override {
    In->close();
    Out->close();
  }

  std::string peer() const override { return "loopback"; }

private:
  std::shared_ptr<Pipe> In, Out;
  /// Backstop matching TCP's: a bounded pipe whose reader vanished must
  /// not pin a writer forever.
  static constexpr int WriteTimeoutMs = 10000;
};

} // namespace

std::pair<std::unique_ptr<Transport>, std::unique_ptr<Transport>>
makeLoopbackPair(size_t CapBytes) {
  auto AtoB = std::make_shared<Pipe>();
  auto BtoA = std::make_shared<Pipe>();
  AtoB->Cap = CapBytes;
  BtoA->Cap = CapBytes;
  return {std::make_unique<LoopbackTransport>(BtoA, AtoB),
          std::make_unique<LoopbackTransport>(AtoB, BtoA)};
}

struct LoopbackListener::Impl {
  std::mutex Mu;
  std::condition_variable Cv;
  std::deque<std::unique_ptr<Transport>> Pending;
  bool Shutdown = false;
  size_t CapBytes = 0;
};

LoopbackListener::LoopbackListener() : I(std::make_shared<Impl>()) {}
LoopbackListener::~LoopbackListener() { shutdown(); }

std::unique_ptr<Transport> LoopbackListener::accept() {
  std::unique_lock<std::mutex> Lock(I->Mu);
  I->Cv.wait(Lock, [&] { return !I->Pending.empty() || I->Shutdown; });
  if (I->Pending.empty())
    return nullptr;
  std::unique_ptr<Transport> T = std::move(I->Pending.front());
  I->Pending.pop_front();
  return T;
}

void LoopbackListener::shutdown() {
  std::lock_guard<std::mutex> Lock(I->Mu);
  I->Shutdown = true;
  I->Cv.notify_all();
}

void LoopbackListener::setPipeCapacity(size_t CapBytes) {
  std::lock_guard<std::mutex> Lock(I->Mu);
  I->CapBytes = CapBytes;
}

std::unique_ptr<Transport> LoopbackListener::connect() {
  size_t Cap;
  {
    std::lock_guard<std::mutex> Lock(I->Mu);
    if (I->Shutdown)
      return nullptr;
    Cap = I->CapBytes;
  }
  auto [ClientEnd, ServerEnd] = makeLoopbackPair(Cap);
  std::lock_guard<std::mutex> Lock(I->Mu);
  if (I->Shutdown)
    return nullptr;
  I->Pending.push_back(std::move(ServerEnd));
  I->Cv.notify_all();
  return std::move(ClientEnd);
}

//===----------------------------------------------------------------------===//
// TCP: non-blocking sockets + poll, so reads and writes both honor
// timeouts and a cross-thread close()/shutdown() wakes blocked callers.
//===----------------------------------------------------------------------===//

struct TcpShutdownFlag {
  std::atomic<bool> Stop{false};
};

namespace {

bool setNonBlocking(int Fd) {
  int Flags = ::fcntl(Fd, F_GETFL, 0);
  return Flags >= 0 && ::fcntl(Fd, F_SETFL, Flags | O_NONBLOCK) == 0;
}

std::string describePeer(const sockaddr_storage &Addr) {
  char Host[INET6_ADDRSTRLEN] = "?";
  uint16_t Port = 0;
  if (Addr.ss_family == AF_INET) {
    const auto *A = reinterpret_cast<const sockaddr_in *>(&Addr);
    ::inet_ntop(AF_INET, &A->sin_addr, Host, sizeof(Host));
    Port = ntohs(A->sin_port);
  } else if (Addr.ss_family == AF_INET6) {
    const auto *A = reinterpret_cast<const sockaddr_in6 *>(&Addr);
    ::inet_ntop(AF_INET6, &A->sin6_addr, Host, sizeof(Host));
    Port = ntohs(A->sin6_port);
  }
  return support::formatString("%s:%u", Host, Port);
}

class TcpTransport : public Transport {
public:
  TcpTransport(int Fd, std::string Peer)
      : Fd(Fd), PeerName(std::move(Peer)) {}
  ~TcpTransport() override {
    close();
    ::close(Fd);
  }

  IoResult writeAll(const char *Data, size_t Size) override {
    size_t Sent = 0;
    while (Sent != Size) {
      if (ClosedFlag.load(std::memory_order_relaxed))
        return makeError(IoStatus::Closed, "socket closed locally");
      ssize_t N = ::send(Fd, Data + Sent, Size - Sent, MSG_NOSIGNAL);
      if (N > 0) {
        Sent += static_cast<size_t>(N);
        continue;
      }
      if (N < 0 && errno == EINTR)
        continue;
      if (N < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        pollfd P = {Fd, POLLOUT, 0};
        int R = ::poll(&P, 1, WriteTimeoutMs);
        if (R == 0)
          return makeError(IoStatus::Timeout,
                           "write to " + PeerName + " timed out");
        if (R < 0 && errno != EINTR)
          return makeError(IoStatus::Error,
                           support::formatString("poll: %s",
                                                 std::strerror(errno)));
        continue;
      }
      if (N < 0 && (errno == EPIPE || errno == ECONNRESET))
        return makeError(IoStatus::Eof, PeerName + " hung up");
      return makeError(IoStatus::Error,
                       support::formatString("send to %s: %s",
                                             PeerName.c_str(),
                                             std::strerror(errno)));
    }
    return IoResult();
  }

  IoResult writeNow(const char *Data, size_t Size,
                    size_t *Written) override {
    *Written = 0;
    while (*Written != Size) {
      if (ClosedFlag.load(std::memory_order_relaxed))
        return makeError(IoStatus::Closed, "socket closed locally");
      ssize_t N =
          ::send(Fd, Data + *Written, Size - *Written, MSG_NOSIGNAL);
      if (N > 0) {
        *Written += static_cast<size_t>(N);
        continue;
      }
      if (N < 0 && errno == EINTR)
        continue;
      if (N < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        if (*Written)
          return IoResult(); // partial progress is Ok; caller re-arms
        return makeError(IoStatus::WouldBlock, "send buffer full");
      }
      if (N < 0 && (errno == EPIPE || errno == ECONNRESET))
        return makeError(IoStatus::Eof, PeerName + " hung up");
      return makeError(IoStatus::Error,
                       support::formatString("send to %s: %s",
                                             PeerName.c_str(),
                                             std::strerror(errno)));
    }
    return IoResult();
  }

  IoResult readSome(char *Data, size_t Max, int TimeoutMs,
                    size_t *Read) override {
    *Read = 0;
    Clock::time_point Deadline =
        Clock::now() +
        std::chrono::milliseconds(TimeoutMs > 0 ? TimeoutMs : 0);
    for (;;) {
      if (ClosedFlag.load(std::memory_order_relaxed))
        return makeError(IoStatus::Closed, "socket closed locally");
      ssize_t N = ::recv(Fd, Data, Max, 0);
      if (N > 0) {
        *Read = static_cast<size_t>(N);
        return IoResult();
      }
      if (N == 0)
        return makeError(IoStatus::Eof, PeerName + " closed the stream");
      if (errno == EINTR)
        continue;
      if (errno != EAGAIN && errno != EWOULDBLOCK)
        return makeError(IoStatus::Error,
                         support::formatString("recv from %s: %s",
                                               PeerName.c_str(),
                                               std::strerror(errno)));
      int Left = TimeoutMs > 0 ? remainingMs(Deadline) : -1;
      if (TimeoutMs > 0 && Left == 0)
        return makeError(IoStatus::Timeout,
                         "read from " + PeerName + " timed out");
      pollfd P = {Fd, POLLIN, 0};
      int R = ::poll(&P, 1, Left);
      if (R < 0 && errno != EINTR)
        return makeError(IoStatus::Error,
                         support::formatString("poll: %s",
                                               std::strerror(errno)));
    }
  }

  IoResult readNow(char *Data, size_t Max, size_t *Read) override {
    *Read = 0;
    for (;;) {
      if (ClosedFlag.load(std::memory_order_relaxed))
        return makeError(IoStatus::Closed, "socket closed locally");
      ssize_t N = ::recv(Fd, Data, Max, 0);
      if (N > 0) {
        *Read = static_cast<size_t>(N);
        return IoResult();
      }
      if (N == 0)
        return makeError(IoStatus::Eof, PeerName + " closed the stream");
      if (errno == EINTR)
        continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK)
        return makeError(IoStatus::WouldBlock, "no bytes available");
      return makeError(IoStatus::Error,
                       support::formatString("recv from %s: %s",
                                             PeerName.c_str(),
                                             std::strerror(errno)));
    }
  }

  int pollFd() const override { return Fd; }

  void close() override {
    if (!ClosedFlag.exchange(true))
      ::shutdown(Fd, SHUT_RDWR); // wakes poll() in other threads
  }

  std::string peer() const override { return PeerName; }

private:
  int Fd;
  std::string PeerName;
  std::atomic<bool> ClosedFlag{false};
  /// Backstop so one stalled reader can't pin a server worker forever.
  static constexpr int WriteTimeoutMs = 10000;
};

} // namespace

TcpListener::~TcpListener() {
  shutdown();
  ::close(Fd);
}

std::unique_ptr<Transport> TcpListener::accept() {
  for (;;) {
    if (Stop->Stop.load(std::memory_order_relaxed))
      return nullptr;
    pollfd P = {Fd, POLLIN, 0};
    // Short poll slices bound how long shutdown() can go unnoticed even
    // on platforms where shutdown(2) on a listening fd does not wake poll.
    int R = ::poll(&P, 1, 200);
    if (Stop->Stop.load(std::memory_order_relaxed))
      return nullptr;
    if (R <= 0)
      continue;
    sockaddr_storage Addr;
    socklen_t Len = sizeof(Addr);
    int Conn = ::accept(Fd, reinterpret_cast<sockaddr *>(&Addr), &Len);
    if (Conn < 0)
      continue; // transient (EAGAIN, ECONNABORTED, EINTR): keep serving
    if (!setNonBlocking(Conn)) {
      ::close(Conn);
      continue;
    }
    return std::make_unique<TcpTransport>(Conn, describePeer(Addr));
  }
}

void TcpListener::shutdown() {
  if (!Stop->Stop.exchange(true))
    ::shutdown(Fd, SHUT_RDWR);
}

std::string TcpListener::address() const {
  return support::formatString("127.0.0.1:%u", Port);
}

std::unique_ptr<TcpListener> listenTcp(uint16_t Port, std::string *Error) {
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0) {
    if (Error)
      *Error = support::formatString("socket: %s", std::strerror(errno));
    return nullptr;
  }
  int One = 1;
  ::setsockopt(Fd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Addr.sin_port = htons(Port);
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0 ||
      ::listen(Fd, 64) != 0 || !setNonBlocking(Fd)) {
    if (Error)
      *Error = support::formatString("bind/listen on port %u: %s", Port,
                                     std::strerror(errno));
    ::close(Fd);
    return nullptr;
  }
  socklen_t Len = sizeof(Addr);
  if (::getsockname(Fd, reinterpret_cast<sockaddr *>(&Addr), &Len) == 0)
    Port = ntohs(Addr.sin_port);
  auto L = std::unique_ptr<TcpListener>(new TcpListener(Fd, Port));
  L->Stop = std::make_shared<TcpShutdownFlag>();
  return L;
}

std::unique_ptr<Transport> connectTcp(const std::string &Host,
                                      uint16_t Port, int TimeoutMs,
                                      std::string *Error) {
  addrinfo Hints{};
  Hints.ai_family = AF_UNSPEC;
  Hints.ai_socktype = SOCK_STREAM;
  addrinfo *Res = nullptr;
  std::string PortText = support::formatString("%u", Port);
  int G = ::getaddrinfo(Host.c_str(), PortText.c_str(), &Hints, &Res);
  if (G != 0) {
    if (Error)
      *Error = support::formatString("resolve %s: %s", Host.c_str(),
                                     ::gai_strerror(G));
    return nullptr;
  }
  std::string LastError = "no addresses";
  for (addrinfo *A = Res; A; A = A->ai_next) {
    int Fd = ::socket(A->ai_family, A->ai_socktype, A->ai_protocol);
    if (Fd < 0 || !setNonBlocking(Fd)) {
      LastError = support::formatString("socket: %s", std::strerror(errno));
      if (Fd >= 0)
        ::close(Fd);
      continue;
    }
    int C = ::connect(Fd, A->ai_addr, A->ai_addrlen);
    if (C != 0 && errno == EINPROGRESS) {
      pollfd P = {Fd, POLLOUT, 0};
      int R = ::poll(&P, 1, TimeoutMs > 0 ? TimeoutMs : -1);
      if (R > 0) {
        int SoError = 0;
        socklen_t Len = sizeof(SoError);
        ::getsockopt(Fd, SOL_SOCKET, SO_ERROR, &SoError, &Len);
        C = SoError == 0 ? 0 : -1;
        errno = SoError;
      } else {
        C = -1;
        errno = R == 0 ? ETIMEDOUT : errno;
      }
    }
    if (C != 0) {
      LastError = support::formatString("connect %s:%u: %s", Host.c_str(),
                                        Port, std::strerror(errno));
      ::close(Fd);
      continue;
    }
    ::freeaddrinfo(Res);
    return std::make_unique<TcpTransport>(
        Fd, support::formatString("%s:%u", Host.c_str(), Port));
  }
  ::freeaddrinfo(Res);
  if (Error)
    *Error = LastError;
  return nullptr;
}

} // namespace profserve
} // namespace ars
