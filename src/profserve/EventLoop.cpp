//===- profserve/EventLoop.cpp --------------------------------*- C++ -*-===//

#include "profserve/EventLoop.h"

#include "support/Support.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>

#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

namespace ars {
namespace profserve {

namespace {

using Clock = std::chrono::steady_clock;

} // namespace

/// Completion rendezvous for a waited broadcast: one decrement per shard
/// once that shard has executed (or discarded) the enqueue.
struct BroadcastSync {
  std::mutex Mu;
  std::condition_variable Cv;
  int Remaining = 0;
  size_t Delivered = 0;
};

/// One cross-thread broadcast request, as queued per shard.
struct BroadcastOp {
  std::shared_ptr<const std::string> Bytes;
  std::shared_ptr<std::function<bool(const Reactor::Conn &)>> Pred;
  std::shared_ptr<BroadcastSync> Sync; ///< null when the caller isn't waiting
};

namespace {

void completeBroadcast(const BroadcastOp &Op, size_t Delivered) {
  if (!Op.Sync)
    return;
  std::lock_guard<std::mutex> Lock(Op.Sync->Mu);
  Op.Sync->Delivered += Delivered;
  if (--Op.Sync->Remaining == 0)
    Op.Sync->Cv.notify_all();
}

} // namespace

/// One reactor thread's world.  Conns/FreeSlots are touched only by the
/// owning thread; Incoming/ReadySlots/Stop cross threads under QueueMu;
/// the wake pipe makes poll() interruptible from anywhere.
struct Reactor::Shard {
  std::mutex QueueMu;
  std::deque<std::unique_ptr<Transport>> Incoming;
  std::vector<size_t> ReadySlots;
  std::vector<BroadcastOp> Broadcasts;
  bool Stop = false;
  int WakeRead = -1, WakeWrite = -1;
  std::thread Th;

  // Owning-thread-only state.
  std::vector<std::unique_ptr<Conn>> Conns;
  std::vector<size_t> FreeSlots;

  ~Shard() {
    if (WakeRead >= 0)
      ::close(WakeRead);
    if (WakeWrite >= 0)
      ::close(WakeWrite);
  }

  void wake() {
    if (WakeWrite >= 0) {
      char B = 'w';
      // A full pipe already guarantees a pending wakeup.
      (void)!::write(WakeWrite, &B, 1);
    }
  }
};

Reactor::Phase Reactor::Conn::phase() const {
  if (CloseAfterFlush)
    return Phase::Closing;
  if (outPending())
    return Phase::Write;
  return In.size() - InOff >= FrameHeaderSize ? Phase::ReadBody
                                              : Phase::ReadHeader;
}

Reactor::Reactor(Config C, Hooks Hs) : Cfg(C), H(std::move(Hs)) {
  if (Cfg.Threads < 1)
    Cfg.Threads = 1;
  for (int I = 0; I != Cfg.Threads; ++I)
    Shards.push_back(std::make_unique<Shard>());
}

Reactor::~Reactor() { stop(); }

void Reactor::start() {
  if (Started)
    return;
  for (auto &SP : Shards) {
    int Fds[2];
    if (::pipe(Fds) == 0) {
      ::fcntl(Fds[0], F_SETFL, O_NONBLOCK);
      ::fcntl(Fds[1], F_SETFL, O_NONBLOCK);
      SP->WakeRead = Fds[0];
      SP->WakeWrite = Fds[1];
    } // else: the loop falls back to short poll slices
    Shard *S = SP.get();
    SP->Th = std::thread([this, S] { runShard(*S); });
  }
  Started = true;
}

void Reactor::stop() {
  if (Stopped.exchange(true))
    return;
  if (!Started)
    return;
  for (auto &SP : Shards) {
    {
      std::lock_guard<std::mutex> Lock(SP->QueueMu);
      SP->Stop = true;
    }
    SP->wake();
  }
  for (auto &SP : Shards)
    if (SP->Th.joinable())
      SP->Th.join();
}

void Reactor::adopt(std::unique_ptr<Transport> T) {
  if (!T)
    return;
  if (!Started || Stopped.load(std::memory_order_acquire)) {
    T->close();
    return;
  }
  Shard &S = *Shards[NextShard.fetch_add(1, std::memory_order_relaxed) %
                     Shards.size()];
  {
    std::lock_guard<std::mutex> Lock(S.QueueMu);
    if (S.Stop) {
      T->close();
      return;
    }
    ActiveConns.fetch_add(1, std::memory_order_acq_rel);
    S.Incoming.push_back(std::move(T));
  }
  S.wake();
}

size_t Reactor::broadcast(const std::string &Bytes,
                          std::function<bool(const Conn &)> Pred,
                          bool Wait) {
  if (!Started || Stopped.load(std::memory_order_acquire))
    return 0;
  BroadcastOp Op;
  Op.Bytes = std::make_shared<const std::string>(Bytes);
  if (Pred)
    Op.Pred = std::make_shared<std::function<bool(const Conn &)>>(
        std::move(Pred));
  if (Wait) {
    Op.Sync = std::make_shared<BroadcastSync>();
    Op.Sync->Remaining = static_cast<int>(Shards.size());
  }
  for (auto &SP : Shards) {
    bool Enqueued = false;
    {
      std::lock_guard<std::mutex> Lock(SP->QueueMu);
      if (!SP->Stop) {
        SP->Broadcasts.push_back(Op);
        Enqueued = true;
      }
    }
    if (Enqueued)
      SP->wake();
    else
      completeBroadcast(Op, 0); // shard already shut down
  }
  if (!Op.Sync)
    return 0;
  std::unique_lock<std::mutex> Lock(Op.Sync->Mu);
  Op.Sync->Cv.wait(Lock, [&] { return Op.Sync->Remaining == 0; });
  return Op.Sync->Delivered;
}

void Reactor::finish(Conn &C) {
  if (C.Dead)
    return;
  C.Dead = true;
  if (H.OnClose)
    H.OnClose(C);
  C.T->close();
  ActiveConns.fetch_sub(1, std::memory_order_acq_rel);
}

void Reactor::streamError(Conn &C, FrameStatus St,
                          const std::string &Why) {
  if (C.Dead)
    return;
  std::string Farewell;
  if (H.OnStreamError)
    Farewell = H.OnStreamError(C, St, Why);
  // On a transport-level death the stream cannot carry a farewell; and
  // an empty farewell means "just close".
  if (Farewell.empty() || St == FrameStatus::Transport) {
    finish(C);
    return;
  }
  C.Out.append(Farewell);
  if (Cfg.SendTimeoutMs > 0 && !C.HasWriteDeadline) {
    C.HasWriteDeadline = true;
    C.WriteDeadline =
        Clock::now() + std::chrono::milliseconds(Cfg.SendTimeoutMs);
  }
  C.CloseAfterFlush = true;
  flushOut(C); // often completes (and closes) right here
}

void Reactor::flushOut(Conn &C) {
  while (!C.Dead && C.outPending()) {
    size_t W = 0;
    IoResult R =
        C.T->writeNow(C.Out.data() + C.OutOff, C.outPending(), &W);
    C.OutOff += W;
    if (W && Cfg.SendTimeoutMs > 0) {
      // Progress re-arms the stall deadline: "stalled" means the peer
      // took nothing for SendTimeoutMs, not "the reply was large".
      C.HasWriteDeadline = true;
      C.WriteDeadline =
          Clock::now() + std::chrono::milliseconds(Cfg.SendTimeoutMs);
    }
    if (R.Status == IoStatus::Ok)
      continue;
    if (R.Status == IoStatus::WouldBlock)
      return; // poll/signal re-arms us when the peer drains
    finish(C); // Eof/Closed/Error: the reply can no longer be delivered
    return;
  }
  if (C.Dead)
    return;
  C.Out.clear();
  C.OutOff = 0;
  C.HasWriteDeadline = false;
  if (C.CloseAfterFlush)
    finish(C);
}

bool Reactor::parseAvailable(Conn &C) {
  while (!C.Dead && !C.CloseAfterFlush) {
    FrameParse P = parseFrameBytes(C.In.data() + C.InOff,
                                   C.In.size() - C.InOff,
                                   Cfg.MaxFramePayload);
    if (P.NeedMore)
      break;
    if (P.Status != FrameStatus::Ok) {
      streamError(C, P.Status, P.Error);
      return false;
    }
    C.InOff += P.Consumed;
    if (Cfg.RecvTimeoutMs > 0) {
      // The whole-frame deadline restarts at every frame boundary, same
      // contract as the blocking readFrame loop it replaces.
      C.HasReadDeadline = true;
      C.ReadDeadline =
          Clock::now() + std::chrono::milliseconds(Cfg.RecvTimeoutMs);
    }
    FrameAction A =
        H.OnFrame ? H.OnFrame(C, std::move(P.F)) : FrameAction{};
    if (!A.Reply.empty()) {
      if (!C.outPending() && Cfg.SendTimeoutMs > 0) {
        C.HasWriteDeadline = true;
        C.WriteDeadline =
            Clock::now() + std::chrono::milliseconds(Cfg.SendTimeoutMs);
      }
      C.Out.append(A.Reply);
    }
    if (A.Close)
      C.CloseAfterFlush = true;
  }
  // Compact the consumed prefix so a pipelining client cannot grow the
  // buffer without bound.
  if (C.InOff == C.In.size()) {
    C.In.clear();
    C.InOff = 0;
  } else if (C.InOff > 4096) {
    C.In.erase(0, C.InOff);
    C.InOff = 0;
  }
  return !C.Dead;
}

void Reactor::serviceConn(Shard &, Conn &C) {
  if (C.Dead)
    return;
  if (C.outPending()) {
    flushOut(C);
    if (C.Dead)
      return;
  }
  if (C.CloseAfterFlush) {
    if (!C.outPending())
      finish(C);
    return;
  }
  if (C.outPending())
    return; // backpressure: no new requests while a reply is queued
  for (;;) {
    char Buf[16384];
    size_t N = 0;
    IoResult R = C.T->readNow(Buf, sizeof(Buf), &N);
    if (R.Status == IoStatus::Ok) {
      C.In.append(Buf, N);
      if (!parseAvailable(C))
        return;
      flushOut(C);
      if (C.Dead)
        return;
      if (C.CloseAfterFlush) {
        if (!C.outPending())
          finish(C);
        return;
      }
      if (C.outPending())
        return; // wait for writability before consuming more input
      continue;
    }
    if (R.Status == IoStatus::WouldBlock)
      return;
    if (R.Status == IoStatus::Eof) {
      if (C.In.size() != C.InOff)
        streamError(C, FrameStatus::Malformed,
                    support::formatString(
                        "truncated frame: stream ended with %zu "
                        "buffered bytes",
                        C.In.size() - C.InOff));
      else
        finish(C); // clean disconnect at a frame boundary
      return;
    }
    if (R.Status == IoStatus::Closed) {
      finish(C); // closed locally (shutdown)
      return;
    }
    streamError(C, FrameStatus::Transport, R.Message);
    return;
  }
}

void Reactor::runShard(Shard &S) {
  std::vector<pollfd> P;
  std::vector<size_t> PollSlots;
  std::vector<size_t> Ready;
  std::deque<std::unique_ptr<Transport>> Fresh;
  std::vector<BroadcastOp> Casts;

  auto reapDead = [&S] {
    for (auto &CP : S.Conns)
      if (CP && CP->Dead) {
        S.FreeSlots.push_back(CP->Slot);
        CP.reset();
      }
  };

  for (;;) {
    bool Stopping;
    Ready.clear();
    Fresh.clear();
    Casts.clear();
    {
      std::lock_guard<std::mutex> Lock(S.QueueMu);
      Stopping = S.Stop;
      std::swap(Fresh, S.Incoming);
      std::swap(Ready, S.ReadySlots);
      std::swap(Casts, S.Broadcasts);
    }
    if (Stopping) {
      // Waiters must never hang on a shard that is going away.
      for (const BroadcastOp &Op : Casts)
        completeBroadcast(Op, 0);
      break;
    }

    // Adopt fresh connections into free slots.
    for (auto &T : Fresh) {
      size_t Slot;
      if (!S.FreeSlots.empty()) {
        Slot = S.FreeSlots.back();
        S.FreeSlots.pop_back();
      } else {
        Slot = S.Conns.size();
        S.Conns.emplace_back();
      }
      auto C = std::make_unique<Conn>();
      C->T = std::move(T);
      C->Slot = Slot;
      if (Cfg.RecvTimeoutMs > 0) {
        C->HasReadDeadline = true;
        C->ReadDeadline =
            Clock::now() + std::chrono::milliseconds(Cfg.RecvTimeoutMs);
      }
      if (C->T->pollFd() < 0) {
        // Signal-driven transport (loopback): any state change marks the
        // slot ready and pokes the wake pipe.  The signal touches only
        // the shard queue — never transport or reactor internals — so it
        // is safe to fire from any thread, even under a pipe lock.
        C->Signal = std::make_shared<std::function<void()>>(
            [&S, Slot] {
              {
                std::lock_guard<std::mutex> Lock(S.QueueMu);
                if (S.Stop)
                  return;
                S.ReadySlots.push_back(Slot);
              }
              S.wake();
            });
        C->T->watch(C->Signal);
      }
      S.Conns[Slot] = std::move(C);
      Ready.push_back(Slot); // initial service pass
    }

    // Execute queued broadcasts on the owning thread: same deadline
    // arming and flush as a hook reply, so a POLICY frame can never
    // interleave mid-frame with one.
    for (const BroadcastOp &Op : Casts) {
      size_t Delivered = 0;
      for (auto &CP : S.Conns) {
        if (!CP || CP->Dead || CP->CloseAfterFlush)
          continue;
        Conn &C = *CP;
        if (Op.Pred && !(*Op.Pred)(C))
          continue;
        if (!C.outPending() && Cfg.SendTimeoutMs > 0) {
          C.HasWriteDeadline = true;
          C.WriteDeadline =
              Clock::now() + std::chrono::milliseconds(Cfg.SendTimeoutMs);
        }
        C.Out.append(*Op.Bytes);
        flushOut(C);
        if (!C.Dead)
          ++Delivered;
      }
      completeBroadcast(Op, Delivered);
    }
    reapDead();

    // Service signaled slots (deduplication is harmless but cheap).
    std::sort(Ready.begin(), Ready.end());
    Ready.erase(std::unique(Ready.begin(), Ready.end()), Ready.end());
    for (size_t Slot : Ready)
      if (Slot < S.Conns.size() && S.Conns[Slot])
        serviceConn(S, *S.Conns[Slot]);
    reapDead();

    // Build the poll set: wake pipe + every fd-backed connection.
    P.clear();
    PollSlots.clear();
    P.push_back({S.WakeRead, POLLIN, 0});
    bool HasDeadline = false;
    Clock::time_point MinDeadline{};
    for (auto &CP : S.Conns) {
      if (!CP)
        continue;
      Conn &C = *CP;
      int Fd = C.T->pollFd();
      if (Fd >= 0) {
        short Ev = POLLIN;
        if (C.outPending())
          Ev |= POLLOUT;
        P.push_back({Fd, Ev, 0});
        PollSlots.push_back(C.Slot);
      }
      auto consider = [&](Clock::time_point D) {
        if (!HasDeadline || D < MinDeadline) {
          HasDeadline = true;
          MinDeadline = D;
        }
      };
      if (C.outPending() && C.HasWriteDeadline)
        consider(C.WriteDeadline);
      else if (C.HasReadDeadline && !C.CloseAfterFlush)
        consider(C.ReadDeadline);
    }
    int TimeoutMs = -1;
    if (HasDeadline) {
      auto Left = std::chrono::duration_cast<std::chrono::milliseconds>(
                      MinDeadline - Clock::now())
                      .count();
      TimeoutMs = Left < 0 ? 0 : static_cast<int>(Left) + 1;
    }
    if (S.WakeRead < 0 && (TimeoutMs < 0 || TimeoutMs > 50))
      TimeoutMs = 50; // no wake pipe: fall back to short slices
    // EINTR is a normal wakeup (chaos runs deliver signals), not a poll
    // failure: retry with the same timeout — deadlines are re-checked
    // against the clock below, so a shortened sleep only costs an extra
    // loop.  Any other failure leaves revents undefined, so scrub them
    // rather than servicing connections off garbage.
    int PollRc;
    do {
      PollRc = ::poll(P.data(), static_cast<nfds_t>(P.size()), TimeoutMs);
    } while (PollRc < 0 && errno == EINTR);
    if (PollRc < 0)
      for (pollfd &Pf : P)
        Pf.revents = 0;

    if (S.WakeRead >= 0 && (P[0].revents & POLLIN)) {
      char Drain[256];
      while (::read(S.WakeRead, Drain, sizeof(Drain)) > 0) {
      }
    }
    for (size_t I = 1; I < P.size(); ++I)
      if (P[I].revents) {
        size_t Slot = PollSlots[I - 1];
        if (S.Conns[Slot])
          serviceConn(S, *S.Conns[Slot]);
      }

    // Deadlines: reap write-stalled and frame-stalled connections.
    Clock::time_point Now = Clock::now();
    for (auto &CP : S.Conns) {
      if (!CP || CP->Dead)
        continue;
      Conn &C = *CP;
      if (C.outPending() && C.HasWriteDeadline && Now >= C.WriteDeadline) {
        // The peer stopped reading; its pipe is full, so no farewell —
        // the hook just gets to record the reject.
        if (H.OnStreamError)
          H.OnStreamError(C, FrameStatus::Timeout,
                          "reply stalled: peer stopped reading");
        finish(C);
        continue;
      }
      if (!C.CloseAfterFlush && !C.outPending() && C.HasReadDeadline &&
          Now >= C.ReadDeadline)
        streamError(C, FrameStatus::Timeout,
                    C.In.size() != C.InOff
                        ? "frame stalled mid-read"
                        : "no frame within the deadline");
    }
    reapDead();
  }

  // Shutdown: every connection — in whatever state — is closed, its
  // OnClose runs, nothing leaks.  Late arrivals in the incoming queue
  // were counted at adopt() and are uncounted here.
  for (auto &CP : S.Conns)
    if (CP)
      finish(*CP);
  reapDead();
  Fresh.clear();
  {
    std::lock_guard<std::mutex> Lock(S.QueueMu);
    std::swap(Fresh, S.Incoming);
  }
  for (auto &T : Fresh) {
    T->close();
    ActiveConns.fetch_sub(1, std::memory_order_acq_rel);
  }
}

} // namespace profserve
} // namespace ars
