//===- profserve/Protocol.cpp ---------------------------------*- C++ -*-===//

#include "profserve/Protocol.h"

#include "support/Binary.h"
#include "support/Support.h"

using namespace ars::support;

namespace ars {
namespace profserve {

const char *msgTypeName(MsgType T) {
  switch (T) {
  case MsgType::Hello:       return "HELLO";
  case MsgType::HelloAck:    return "HELLO_ACK";
  case MsgType::Push:        return "PUSH";
  case MsgType::PushAck:     return "PUSH_ACK";
  case MsgType::Pull:        return "PULL";
  case MsgType::PullReply:   return "PULL_REPLY";
  case MsgType::StatsReq:    return "STATS_REQ";
  case MsgType::StatsReply:  return "STATS_REPLY";
  case MsgType::SnapshotReq: return "SNAPSHOT_REQ";
  case MsgType::SnapshotAck: return "SNAPSHOT_ACK";
  case MsgType::Error:        return "ERROR";
  case MsgType::Bye:          return "BYE";
  case MsgType::PushBatch:    return "PUSH_BATCH";
  case MsgType::PushBatchAck: return "PUSH_BATCH_ACK";
  case MsgType::Policy:       return "POLICY";
  }
  return "?";
}

bool knownMsgType(uint8_t Raw) {
  return Raw >= static_cast<uint8_t>(MsgType::Hello) &&
         Raw <= static_cast<uint8_t>(MsgType::Policy);
}

std::string encodeFrame(MsgType Type, const std::string &Payload) {
  std::string Out;
  Out.reserve(FrameHeaderSize + Payload.size() + FrameTrailerSize);
  appendFixed32(Out, static_cast<uint32_t>(Payload.size()));
  Out.push_back(static_cast<char>(Type));
  Out.append(Payload);
  appendFixed32(Out, crc32(Out.data(), Out.size()));
  return Out;
}

namespace {

FrameResult failFrame(FrameStatus S, std::string Why) {
  FrameResult R;
  R.Status = S;
  R.Error = std::move(Why);
  return R;
}

} // namespace

FrameResult readFrame(Transport &T, int TimeoutMs, size_t MaxPayload) {
  char Header[FrameHeaderSize];
  size_t Got = 0;
  IoResult IO = T.readAll(Header, sizeof(Header), TimeoutMs, &Got);
  if (!IO.ok()) {
    if (IO.Status == IoStatus::Eof && Got == 0)
      return failFrame(FrameStatus::Eof, "end of stream");
    if (IO.Status == IoStatus::Timeout)
      return failFrame(FrameStatus::Timeout,
                       Got ? "frame header timed out mid-read"
                           : "no frame within the deadline");
    if (IO.Status == IoStatus::Eof)
      return failFrame(FrameStatus::Malformed,
                       support::formatString(
                           "truncated frame header: %zu of %zu bytes",
                           Got, sizeof(Header)));
    return failFrame(FrameStatus::Transport, IO.Message);
  }

  ByteReader R(Header, sizeof(Header));
  uint32_t Len = 0;
  R.readFixed32(&Len);
  uint8_t RawType = static_cast<uint8_t>(Header[4]);
  // The length cap gates the allocation below: an oversized (or hostile)
  // declared length is rejected from the 5 header bytes alone.
  if (Len > MaxPayload)
    return failFrame(FrameStatus::Oversized,
                     support::formatString(
                         "frame payload of %u bytes exceeds the %zu-byte "
                         "cap",
                         Len, MaxPayload));

  std::string Rest(static_cast<size_t>(Len) + FrameTrailerSize, '\0');
  Got = 0;
  IO = T.readAll(Rest.data(), Rest.size(), TimeoutMs, &Got);
  if (!IO.ok()) {
    if (IO.Status == IoStatus::Timeout)
      return failFrame(FrameStatus::Timeout, "frame body timed out");
    if (IO.Status == IoStatus::Eof)
      return failFrame(FrameStatus::Malformed,
                       support::formatString(
                           "truncated frame body: %zu of %zu bytes", Got,
                           Rest.size()));
    return failFrame(FrameStatus::Transport, IO.Message);
  }

  // The CRC spans header + payload; they were read into separate buffers,
  // so stitch the frame image back together for the check.
  std::string Image(Header, sizeof(Header));
  Image.append(Rest, 0, Len);
  uint32_t Computed = crc32(Image.data(), Image.size());
  ByteReader Trailer(Rest.data() + Len, FrameTrailerSize);
  uint32_t Stored = 0;
  Trailer.readFixed32(&Stored);
  if (Stored != Computed)
    return failFrame(FrameStatus::Malformed,
                     support::formatString(
                         "frame CRC mismatch (stored %08x, computed %08x)",
                         Stored, Computed));
  if (!knownMsgType(RawType))
    return failFrame(FrameStatus::Malformed,
                     support::formatString("unknown message type %u",
                                           RawType));

  FrameResult Out;
  Out.Status = FrameStatus::Ok;
  Out.F.Type = static_cast<MsgType>(RawType);
  Out.F.Payload.assign(Rest, 0, Len);
  return Out;
}

IoResult writeFrame(Transport &T, MsgType Type,
                    const std::string &Payload) {
  std::string Bytes = encodeFrame(Type, Payload);
  return T.writeAll(Bytes.data(), Bytes.size());
}

FrameParse parseFrameBytes(const char *Data, size_t Size,
                           size_t MaxPayload) {
  FrameParse Out;
  if (Size < FrameHeaderSize) {
    Out.NeedMore = true;
    return Out;
  }
  ByteReader R(Data, FrameHeaderSize);
  uint32_t Len = 0;
  R.readFixed32(&Len);
  uint8_t RawType = static_cast<uint8_t>(Data[4]);
  // Same discipline as readFrame: the cap gates everything below, so a
  // hostile length prefix is rejected from the 5 header bytes alone and
  // can never make the caller buffer gigabytes waiting for "more".
  if (Len > MaxPayload) {
    Out.Status = FrameStatus::Oversized;
    Out.Error = support::formatString(
        "frame payload of %u bytes exceeds the %zu-byte cap", Len,
        MaxPayload);
    return Out;
  }
  size_t Whole =
      FrameHeaderSize + static_cast<size_t>(Len) + FrameTrailerSize;
  if (Size < Whole) {
    Out.NeedMore = true;
    return Out;
  }
  uint32_t Computed = crc32(Data, FrameHeaderSize + Len);
  ByteReader Trailer(Data + FrameHeaderSize + Len, FrameTrailerSize);
  uint32_t Stored = 0;
  Trailer.readFixed32(&Stored);
  if (Stored != Computed) {
    Out.Status = FrameStatus::Malformed;
    Out.Error = support::formatString(
        "frame CRC mismatch (stored %08x, computed %08x)", Stored,
        Computed);
    return Out;
  }
  if (!knownMsgType(RawType)) {
    Out.Status = FrameStatus::Malformed;
    Out.Error = support::formatString("unknown message type %u", RawType);
    return Out;
  }
  Out.Status = FrameStatus::Ok;
  Out.F.Type = static_cast<MsgType>(RawType);
  Out.F.Payload.assign(Data + FrameHeaderSize, Len);
  Out.Consumed = Whole;
  return Out;
}

//===----------------------------------------------------------------------===//
// Message payloads
//===----------------------------------------------------------------------===//

namespace {

/// Tighter semantic bound than the shared support::MaxLengthPrefixedText
/// cap: a client name is an identifier, not a diagnostic blob.
constexpr uint64_t MaxClientNameLen = 256;
constexpr uint64_t MaxTextLen = support::MaxLengthPrefixedText;

/// Every decoder shares the same tail contract: parsed cleanly, nothing
/// left over.
bool finish(ByteReader &R) { return !R.failed() && R.atEnd(); }

} // namespace

std::string encodeHello(const HelloMsg &M) {
  std::string Out;
  appendVarint(Out, M.Version);
  appendFixed64(Out, M.Fingerprint);
  appendVarint(Out, M.ClientName.size());
  Out.append(M.ClientName);
  appendFixed64(Out, M.SessionId);
  return Out;
}

bool decodeHello(const std::string &Payload, HelloMsg *Out) {
  ByteReader R(Payload);
  uint64_t Version = 0;
  if (!R.readVarint(&Version) || Version > UINT32_MAX ||
      !R.readFixed64(&Out->Fingerprint) ||
      !R.readLengthPrefixed(&Out->ClientName, MaxClientNameLen) ||
      !R.readFixed64(&Out->SessionId))
    return false;
  Out->Version = static_cast<uint32_t>(Version);
  return finish(R);
}

std::string encodeHelloAck(const HelloAckMsg &M) {
  std::string Out;
  appendVarint(Out, M.Version);
  appendFixed64(Out, M.Fingerprint);
  // M.Version is the SESSION's negotiated dialect (the server echoes
  // the client's version), so a pre-v5 client — whose decoder rejects
  // trailing bytes — never sees the tail.
  if (M.Version >= 5)
    appendVarint(Out, M.LastSeq);
  return Out;
}

bool decodeHelloAck(const std::string &Payload, HelloAckMsg *Out) {
  ByteReader R(Payload);
  uint64_t Version = 0;
  if (!R.readVarint(&Version) || Version > UINT32_MAX ||
      !R.readFixed64(&Out->Fingerprint))
    return false;
  Out->Version = static_cast<uint32_t>(Version);
  if (R.atEnd())
    return true; // pre-v5 ack: LastSeq defaults to 0
  return R.readVarint(&Out->LastSeq) && finish(R);
}

std::string encodePush(uint64_t Seq, const std::string &ArspBytes) {
  std::string Out;
  appendVarint(Out, Seq);
  Out.append(ArspBytes);
  return Out;
}

bool decodePush(const std::string &Payload, uint64_t *Seq,
                std::string *ArspBytes) {
  ByteReader R(Payload);
  if (!R.readVarint(Seq))
    return false;
  // Everything after the sequence number is the shard, verbatim; its own
  // magic/CRC validation happens in decodeBundle.
  ArspBytes->assign(Payload, R.position(), std::string::npos);
  return true;
}

std::string encodePushAck(const PushAckMsg &M) {
  std::string Out;
  appendVarint(Out, M.Merges);
  appendFixed64(Out, M.Fingerprint);
  appendVarint(Out, M.Seq);
  Out.push_back(M.Duplicate ? 1 : 0);
  return Out;
}

bool decodePushAck(const std::string &Payload, PushAckMsg *Out) {
  ByteReader R(Payload);
  const char *Flag = nullptr;
  if (!R.readVarint(&Out->Merges) || !R.readFixed64(&Out->Fingerprint) ||
      !R.readVarint(&Out->Seq) || !R.readBytes(&Flag, 1))
    return false;
  Out->Duplicate = *Flag != 0;
  return finish(R);
}

std::string encodePushBatch(const std::vector<BatchShard> &Shards) {
  std::string Out;
  appendVarint(Out, Shards.size());
  for (const BatchShard &S : Shards) {
    appendVarint(Out, S.Seq);
    appendVarint(Out, S.Arsp.size());
    Out.append(S.Arsp);
  }
  return Out;
}

bool decodePushBatch(const std::string &Payload,
                     std::vector<BatchShard> *Out) {
  ByteReader R(Payload);
  uint64_t Count = 0;
  if (!R.readVarint(&Count) || Count > MaxBatchShards)
    return false;
  Out->clear();
  Out->reserve(static_cast<size_t>(Count));
  for (uint64_t I = 0; I != Count; ++I) {
    BatchShard S;
    // Each shard's length is implicitly capped by the already-validated
    // frame payload; Payload.size() is the tightest honest bound.
    if (!R.readVarint(&S.Seq) ||
        !R.readLengthPrefixed(&S.Arsp, Payload.size()))
      return false;
    Out->push_back(std::move(S));
  }
  return finish(R);
}

std::string encodePushBatchAck(const PushBatchAckMsg &M) {
  std::string Out;
  appendVarint(Out, M.Merges);
  appendFixed64(Out, M.Fingerprint);
  appendVarint(Out, M.Count);
  appendVarint(Out, M.Merged);
  appendVarint(Out, M.Duplicates);
  appendVarint(Out, M.Rejected);
  size_t N = M.FirstError.size() < MaxTextLen ? M.FirstError.size()
                                              : MaxTextLen;
  appendVarint(Out, N);
  Out.append(M.FirstError, 0, N);
  return Out;
}

bool decodePushBatchAck(const std::string &Payload, PushBatchAckMsg *Out) {
  ByteReader R(Payload);
  return R.readVarint(&Out->Merges) && R.readFixed64(&Out->Fingerprint) &&
         R.readVarint(&Out->Count) && R.readVarint(&Out->Merged) &&
         R.readVarint(&Out->Duplicates) && R.readVarint(&Out->Rejected) &&
         R.readLengthPrefixed(&Out->FirstError, MaxTextLen) && finish(R);
}

std::string encodePolicy(const PolicyMsg &M) {
  std::string Out;
  appendVarint(Out, M.PolicyVersion);
  appendVarint(Out, M.Entries.size());
  for (const PolicyEntry &E : M.Entries) {
    appendVarint(Out, E.Method);
    appendVarint(Out, E.Interval);
  }
  return Out;
}

bool decodePolicy(const std::string &Payload, PolicyMsg *Out) {
  ByteReader R(Payload);
  uint64_t Count = 0;
  if (!R.readVarint(&Out->PolicyVersion) || !R.readVarint(&Count) ||
      Count > MaxPolicyEntries)
    return false;
  Out->Entries.clear();
  Out->Entries.reserve(static_cast<size_t>(Count));
  for (uint64_t I = 0; I != Count; ++I) {
    PolicyEntry E;
    if (!R.readVarint(&E.Method) || !R.readVarint(&E.Interval))
      return false;
    Out->Entries.push_back(E);
  }
  return finish(R);
}

std::string encodeStats(const StatsMsg &M, uint32_t Version) {
  std::string Out;
  appendVarint(Out, M.Frames);
  appendVarint(Out, M.Bytes);
  appendVarint(Out, M.Merges);
  appendVarint(Out, M.Rejects);
  appendVarint(Out, M.ActiveConnections);
  appendVarint(Out, M.Epochs);
  appendVarint(Out, M.Snapshots);
  appendVarint(Out, M.Pulls);
  appendVarint(Out, M.Shed);
  appendVarint(Out, M.Duplicates);
  appendVarint(Out, M.Recovered);
  if (Version >= 3) {
    appendVarint(Out, M.Batches);
    appendVarint(Out, M.RelayFlushes);
    appendVarint(Out, M.RelayFailures);
  }
  if (Version >= 4) {
    appendVarint(Out, M.PolicyPushes);
    appendVarint(Out, M.PolicyDecisions);
  }
  if (Version >= 5) {
    appendVarint(Out, M.JournalRecords);
    appendVarint(Out, M.JournalSyncs);
    appendVarint(Out, M.JournalReplayed);
    appendVarint(Out, M.JournalFailures);
  }
  return Out;
}

bool decodeStats(const std::string &Payload, StatsMsg *Out) {
  ByteReader R(Payload);
  if (!(R.readVarint(&Out->Frames) && R.readVarint(&Out->Bytes) &&
        R.readVarint(&Out->Merges) && R.readVarint(&Out->Rejects) &&
        R.readVarint(&Out->ActiveConnections) &&
        R.readVarint(&Out->Epochs) && R.readVarint(&Out->Snapshots) &&
        R.readVarint(&Out->Pulls) && R.readVarint(&Out->Shed) &&
        R.readVarint(&Out->Duplicates) && R.readVarint(&Out->Recovered)))
    return false;
  if (R.atEnd())
    return true; // v2 payload: batch/relay counters default to 0
  if (!(R.readVarint(&Out->Batches) && R.readVarint(&Out->RelayFlushes) &&
        R.readVarint(&Out->RelayFailures)))
    return false;
  if (R.atEnd())
    return true; // v3 payload: policy counters default to 0
  if (!(R.readVarint(&Out->PolicyPushes) &&
        R.readVarint(&Out->PolicyDecisions)))
    return false;
  if (R.atEnd())
    return true; // v4 payload: journal counters default to 0
  return R.readVarint(&Out->JournalRecords) &&
         R.readVarint(&Out->JournalSyncs) &&
         R.readVarint(&Out->JournalReplayed) &&
         R.readVarint(&Out->JournalFailures) && finish(R);
}

const char *errCodeName(ErrCode C) {
  switch (C) {
  case ErrCode::Generic:      return "GENERIC";
  case ErrCode::RetryAfter:   return "RETRY_AFTER";
  case ErrCode::BadFrame:     return "BAD_FRAME";
  case ErrCode::BadShard:     return "BAD_SHARD";
  case ErrCode::BadHandshake: return "BAD_HANDSHAKE";
  }
  return "?";
}

std::string encodeError(ErrCode Code, const std::string &Text) {
  std::string Out;
  appendVarint(Out, static_cast<uint64_t>(Code));
  size_t N = Text.size() < MaxTextLen ? Text.size() : MaxTextLen;
  appendVarint(Out, N);
  Out.append(Text, 0, N);
  return Out;
}

bool decodeError(const std::string &Payload, ErrorMsg *Out) {
  ByteReader R(Payload);
  uint64_t Code = 0;
  if (!R.readVarint(&Code) ||
      Code > static_cast<uint64_t>(ErrCode::BadHandshake) ||
      !R.readLengthPrefixed(&Out->Text, MaxTextLen))
    return false;
  Out->Code = static_cast<ErrCode>(Code);
  return finish(R);
}

std::string encodeText(const std::string &Text) {
  std::string Out;
  size_t N = Text.size() < MaxTextLen ? Text.size() : MaxTextLen;
  appendVarint(Out, N);
  Out.append(Text, 0, N);
  return Out;
}

bool decodeText(const std::string &Payload, std::string *Out) {
  ByteReader R(Payload);
  return R.readLengthPrefixed(Out, MaxTextLen) && finish(R);
}

} // namespace profserve
} // namespace ars
