//===- profserve/Protocol.h - Collection wire protocol --------*- C++ -*-===//
///
/// \file
/// The length-prefix-framed, CRC-guarded wire protocol between
/// instrumented processes and the profile collection server.
///
/// Frame layout (fixed fields little-endian, as in the .arsp format):
///
///   u32  payload length N     (capped; validated BEFORE any allocation)
///   u8   message type
///   N    payload bytes
///   u32  CRC32 of every preceding byte of the frame
///
/// The CRC covers the header too, so a flipped bit anywhere — length,
/// type or payload — is detected; CRC32 catches all single-bit and all
/// single-byte errors.  A frame whose declared length exceeds the
/// configured cap is rejected from the 5 header bytes alone, so a hostile
/// length prefix can never drive a huge allocation (the same discipline
/// as support::ByteReader::readLengthPrefixed).
///
/// Conversation: the client opens with HELLO (protocol version + module
/// fingerprint); the server answers HELLO_ACK or ERROR.  Then any number
/// of PUSH (an encoded .arsp bundle, itself fingerprinted and
/// CRC-guarded), PULL, STATS_REQ and SNAPSHOT_REQ exchanges, closed by
/// BYE or plain disconnect.  Every server reply to a broken request is an
/// ERROR frame carrying a diagnostic.
///
//===----------------------------------------------------------------------===//

#ifndef ARS_PROFSERVE_PROTOCOL_H
#define ARS_PROFSERVE_PROTOCOL_H

#include "profserve/Transport.h"

#include <cstdint>
#include <string>
#include <vector>

namespace ars {
namespace profserve {

/// Bumped on any incompatible wire change.  HELLO now NEGOTIATES: the
/// server accepts any client version in [MinWireVersion, WireVersion]
/// and echoes the client's version in HELLO_ACK, so the session runs at
/// the client's dialect; only a version outside the window is rejected
/// with a diagnostic naming both sides' versions.
/// v2: HELLO carries a session id, PUSH carries a per-session sequence
/// number (exactly-once retries), ERROR carries a structured code, and
/// STATS grew shed/duplicate/recovery counters.
/// v3: PUSH_BATCH carries M sequenced shards in one frame with one
/// cumulative PUSH_BATCH_ACK (client round-trips amortize over the
/// batch), and STATS grew batch/relay counters.
/// v4: POLICY carries a server-initiated per-method sampling-interval
/// table (the closed-loop adaptive-sampling push-down; see
/// policy/Policy.h).  POLICY is only ever SENT on sessions negotiated at
/// v4 — a v2/v3 peer simply never receives one, so negotiation needs no
/// new handshake fields.
/// v5: HELLO_ACK carries LastSeq — the highest sequence number the
/// server has already applied for the client's session — so a restarted
/// pusher (a relay whose process died and recovered, say) resumes its
/// numbering past what the server remembers instead of colliding with
/// its own history; and STATS grew the write-ahead-journal counters.
constexpr uint32_t WireVersion = 5;

/// Oldest client dialect the server still speaks.
constexpr uint32_t MinWireVersion = 2;

/// Cap on shards in one PUSH_BATCH (alongside the frame payload cap).
constexpr size_t MaxBatchShards = 4096;

/// Cap on per-method entries in one POLICY frame.  Far above any real
/// module's method count, far below what a hostile varint could demand.
constexpr size_t MaxPolicyEntries = 65536;

constexpr size_t FrameHeaderSize = 5;  ///< u32 length + u8 type
constexpr size_t FrameTrailerSize = 4; ///< CRC32 of header+payload

/// Default cap on one frame's payload.  Large enough for any realistic
/// merged bundle, small enough that a hostile 4 GiB length prefix is
/// rejected without being allocated.  Servers/clients can lower it.
constexpr size_t DefaultMaxFramePayload = 64u << 20;

enum class MsgType : uint8_t {
  Hello = 1,    ///< client: version + fingerprint + name
  HelloAck,     ///< server: version + adopted fingerprint (0 = none yet)
  Push,         ///< client: one encoded .arsp bundle shard
  PushAck,      ///< server: total merges + current fingerprint
  Pull,         ///< client: request the merged bundle
  PullReply,    ///< server: encoded .arsp of the merged bundle
  StatsReq,     ///< client: request server counters
  StatsReply,   ///< server: counters
  SnapshotReq,  ///< client: force a snapshot to disk now
  SnapshotAck,  ///< server: path the snapshot was written to
  Error,        ///< server: diagnostic text
  Bye,          ///< client: graceful close
  PushBatch,    ///< client (v3): M sequenced shards in one frame
  PushBatchAck, ///< server (v3): one cumulative ack for the batch
  Policy,       ///< server (v4): per-method sampling-interval decisions
};

const char *msgTypeName(MsgType T);
bool knownMsgType(uint8_t Raw);

struct Frame {
  MsgType Type = MsgType::Error;
  std::string Payload;
};

/// Frames \p Payload as \p Type: header + payload + CRC trailer.
std::string encodeFrame(MsgType Type, const std::string &Payload);

enum class FrameStatus : uint8_t {
  Ok,
  Eof,       ///< clean end of stream at a frame boundary
  Timeout,   ///< peer too slow (or vanished without closing)
  Malformed, ///< truncated mid-frame, CRC mismatch, unknown type
  Oversized, ///< declared payload length above the cap
  Transport, ///< transport-level failure; see Error
};

struct FrameResult {
  FrameStatus Status = FrameStatus::Transport;
  Frame F;
  std::string Error; ///< diagnostic for every non-Ok status
  bool ok() const { return Status == FrameStatus::Ok; }
};

/// Reads one whole frame from \p T, enforcing \p MaxPayload before the
/// payload is allocated and \p TimeoutMs across the whole frame.
/// Distinguishes a clean EOF between frames from a stream that died
/// mid-frame (Malformed, "truncated").
FrameResult readFrame(Transport &T, int TimeoutMs,
                      size_t MaxPayload = DefaultMaxFramePayload);

/// Frames and writes \p Payload; returns the transport's verdict.
IoResult writeFrame(Transport &T, MsgType Type,
                    const std::string &Payload);

/// Outcome of an incremental parse over an accumulated byte buffer (the
/// event loop's per-connection input buffer; see EventLoop.h).
struct FrameParse {
  /// Meaningful only when !NeedMore: Ok, Malformed or Oversized.
  FrameStatus Status = FrameStatus::Ok;
  /// Too few bytes buffered to decide; read more and re-parse.
  bool NeedMore = false;
  Frame F;            ///< valid when Status == Ok and !NeedMore
  size_t Consumed = 0; ///< bytes of the buffer consumed by this frame
  std::string Error;
};

/// Examines the first frame in [\p Data, \p Data + \p Size) without
/// blocking: same validation order as readFrame (length cap from the 5
/// header bytes alone, then CRC, then type), but over bytes already in
/// memory.  Never consumes bytes on NeedMore, so callers re-parse the
/// same buffer as more bytes arrive.
FrameParse parseFrameBytes(const char *Data, size_t Size,
                           size_t MaxPayload = DefaultMaxFramePayload);

//===----------------------------------------------------------------------===//
// Message payloads.  Varint/fixed encodings over support/Binary; every
// decode* rejects truncation and trailing garbage.
//===----------------------------------------------------------------------===//

struct HelloMsg {
  uint32_t Version = WireVersion;
  uint64_t Fingerprint = 0; ///< module the client will push for; 0 = any
  std::string ClientName;   ///< diagnostic label, capped at 256 bytes
  /// Client-chosen id, stable across reconnects of the same logical
  /// pusher.  Nonzero enables exactly-once PUSH retries: the server
  /// remembers (SessionId, Seq) pairs and answers a replayed PUSH with a
  /// duplicate ack instead of merging twice.  0 = legacy untracked.
  uint64_t SessionId = 0;
};
std::string encodeHello(const HelloMsg &M);
bool decodeHello(const std::string &Payload, HelloMsg *Out);

struct HelloAckMsg {
  uint32_t Version = WireVersion;
  uint64_t Fingerprint = 0; ///< server's pinned/adopted fingerprint
  /// v5: the highest sequence number already applied for the client's
  /// SessionId (0 = none, or pre-v5 server).  A reconnecting client
  /// resumes numbering at max(own, LastSeq) + 1, so a pusher that lost
  /// its in-memory counter (crash + restart with a durable session id)
  /// never reuses a sequence number the server would silently dedup.
  /// Encoded only on v5 sessions; the decoder accepts the short tail.
  uint64_t LastSeq = 0;
};
std::string encodeHelloAck(const HelloAckMsg &M);
bool decodeHelloAck(const std::string &Payload, HelloAckMsg *Out);

/// PUSH payload: a varint sequence number followed by the raw encoded
/// .arsp shard.  Seq 0 = unsequenced (legacy / sessionless) push; the
/// server merges it unconditionally.
std::string encodePush(uint64_t Seq, const std::string &ArspBytes);
bool decodePush(const std::string &Payload, uint64_t *Seq,
                std::string *ArspBytes);

struct PushAckMsg {
  uint64_t Merges = 0;      ///< bundles merged since server start
  uint64_t Fingerprint = 0; ///< fingerprint the shard was validated under
  uint64_t Seq = 0;         ///< echoed from the PUSH
  bool Duplicate = false;   ///< retried shard was already merged; skipped
};
std::string encodePushAck(const PushAckMsg &M);
bool decodePushAck(const std::string &Payload, PushAckMsg *Out);

/// One shard of a PUSH_BATCH: its per-session sequence number (0 =
/// unsequenced) and the raw encoded .arsp bytes.
struct BatchShard {
  uint64_t Seq = 0;
  std::string Arsp;
};

/// PUSH_BATCH payload: varint shard count, then per shard a varint
/// sequence number and the length-prefixed .arsp bytes.  decode rejects
/// counts above MaxBatchShards, truncation and trailing garbage.
std::string encodePushBatch(const std::vector<BatchShard> &Shards);
bool decodePushBatch(const std::string &Payload,
                     std::vector<BatchShard> *Out);

/// One cumulative ack for a whole PUSH_BATCH: every shard is accounted
/// for as merged, deduplicated or rejected (Count = sum of the three).
struct PushBatchAckMsg {
  uint64_t Merges = 0;      ///< server-lifetime merges after this batch
  uint64_t Fingerprint = 0; ///< the server's pinned/adopted fingerprint
  uint64_t Count = 0;       ///< shards in the batch as the server saw it
  uint64_t Merged = 0;      ///< newly merged from this batch
  uint64_t Duplicates = 0;  ///< (session, seq) pairs already applied
  uint64_t Rejected = 0;    ///< undecodable / fingerprint-mismatched
  std::string FirstError;   ///< diagnostic for the first rejected shard
};
std::string encodePushBatchAck(const PushBatchAckMsg &M);
bool decodePushBatchAck(const std::string &Payload, PushBatchAckMsg *Out);

/// One per-method decision inside a POLICY frame.
struct PolicyEntry {
  uint64_t Method = 0;   ///< FuncId the decision applies to
  uint64_t Interval = 0; ///< new sample interval; 0 = retire (checking-only)
};

/// POLICY payload (v4, server -> client): the watcher's current
/// per-method interval table.  PolicyVersion is monotonic per emitting
/// server; receivers apply a frame only when its version is NEWER than
/// the last one applied, so reordered or relay-duplicated frames can
/// never roll a table back.
struct PolicyMsg {
  uint64_t PolicyVersion = 0;
  std::vector<PolicyEntry> Entries;
};
/// POLICY payload: varint policy version, varint entry count, then per
/// entry a varint method id and a varint interval.  decode rejects
/// counts above MaxPolicyEntries, truncation and trailing garbage.
std::string encodePolicy(const PolicyMsg &M);
bool decodePolicy(const std::string &Payload, PolicyMsg *Out);

/// Server-side counters exposed through STATS.
struct StatsMsg {
  uint64_t Frames = 0;            ///< valid frames received
  uint64_t Bytes = 0;             ///< wire bytes received in valid frames
  uint64_t Merges = 0;            ///< shards merged into the aggregate
  uint64_t Rejects = 0;           ///< frames/bundles/handshakes rejected
  uint64_t ActiveConnections = 0; ///< accepted and not yet closed
  uint64_t Epochs = 0;            ///< rotateEpoch() count
  uint64_t Snapshots = 0;         ///< snapshots written
  uint64_t Pulls = 0;             ///< PULL requests served
  uint64_t Shed = 0;              ///< requests refused under overload
  uint64_t Duplicates = 0;        ///< retried PUSHes deduplicated
  uint64_t Recovered = 0;         ///< snapshots recovered at startup
  // v3 additions — absent from the wire when a v2 session asks (the
  // encoder omits them; the decoder defaults them to 0 on a short tail):
  uint64_t Batches = 0;       ///< PUSH_BATCH frames accepted
  uint64_t RelayFlushes = 0;  ///< upstream epoch deltas pushed (relay)
  uint64_t RelayFailures = 0; ///< upstream flushes that failed/spilled
  // v4 additions, same short-tail rule:
  uint64_t PolicyPushes = 0;    ///< POLICY broadcasts sent downstream
  uint64_t PolicyDecisions = 0; ///< watcher decisions emitted (entries)
  // v5 additions (write-ahead journal), same short-tail rule:
  uint64_t JournalRecords = 0;  ///< shard/epoch records appended
  uint64_t JournalSyncs = 0;    ///< group-commit fsyncs issued
  uint64_t JournalReplayed = 0; ///< shards replayed at startup
  uint64_t JournalFailures = 0; ///< journal appends/syncs/opens failed
};
/// \p Version selects the dialect: a v2 payload stops at Recovered so a
/// v2 client's strict no-trailing-garbage decoder still accepts it.
std::string encodeStats(const StatsMsg &M,
                        uint32_t Version = WireVersion);
bool decodeStats(const std::string &Payload, StatsMsg *Out);

/// Machine-readable class of an ERROR reply, so clients can decide
/// whether to retry without parsing diagnostic prose.
enum class ErrCode : uint8_t {
  Generic = 0,  ///< final: unclassified server-side failure
  RetryAfter,   ///< transient: server is shedding load; back off + retry
  BadFrame,     ///< stream desynchronized (CRC/truncation); reconnect
  BadShard,     ///< final: the pushed bundle itself was rejected
  BadHandshake, ///< final: version/fingerprint mismatch at HELLO
};
const char *errCodeName(ErrCode C);

struct ErrorMsg {
  ErrCode Code = ErrCode::Generic;
  std::string Text; ///< human-readable diagnostic
};
/// ERROR payload: varint code + length-prefixed text.
std::string encodeError(ErrCode Code, const std::string &Text);
bool decodeError(const std::string &Payload, ErrorMsg *Out);

/// SNAPSHOT_ACK carries one length-prefixed string (capped at 64 KiB on
/// decode — a diagnostic, not a data channel).
std::string encodeText(const std::string &Text);
bool decodeText(const std::string &Payload, std::string *Out);

} // namespace profserve
} // namespace ars

#endif // ARS_PROFSERVE_PROTOCOL_H
