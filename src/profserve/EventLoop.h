//===- profserve/EventLoop.h - Readiness-driven connection reactor -*- C++ -*-===//
///
/// \file
/// The event loop under the profile collection server: N reactor threads
/// own many non-blocking connections each, instead of one thread-pool
/// worker per connection.  Each connection is an explicit state machine
///
///   ReadHeader -> ReadBody -> (frame hook runs inline) -> Write -> ...
///                                                     \-> Closing
///
/// driven purely by readiness: TCP transports are poll(2)ed through
/// Transport::pollFd(), loopback transports fire a ready-signal
/// (Transport::watch()) that wakes the owning reactor thread through a
/// self-pipe.  Bytes are accumulated per connection and parsed
/// incrementally with parseFrameBytes, so a client may pipeline any
/// number of frames back-to-back (the wire-v3 batching path relies on
/// this) and a slow-loris client trickling one byte at a time costs a
/// buffer, never a blocked thread.
///
/// Deadlines: a whole frame must arrive within RecvTimeoutMs of the
/// previous one (slow-loris reaping, same contract as the old blocking
/// readFrame loop), and a queued reply must drain within SendTimeoutMs
/// once the peer stops reading (write-backpressure reaping).  Expired
/// connections get a best-effort farewell from the OnStreamError hook
/// and are closed — never leaked, exactly like transport errors.
///
/// Threading: every connection is owned by exactly one reactor thread;
/// hooks run on that thread, so per-connection state needs no locks.
/// Cross-thread inputs (adopt(), ready-signals, stop()) only touch a
/// tiny queue mutex and the self-pipe — never transport internals — so
/// the lock order is trivially acyclic.
///
//===----------------------------------------------------------------------===//

#ifndef ARS_PROFSERVE_EVENTLOOP_H
#define ARS_PROFSERVE_EVENTLOOP_H

#include "profserve/Protocol.h"
#include "profserve/Transport.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace ars {
namespace profserve {

class Reactor {
public:
  struct Config {
    int Threads = 2;         ///< reactor threads (clamped to >= 1)
    int RecvTimeoutMs = 2000; ///< whole-frame deadline (<= 0 = none)
    int SendTimeoutMs = 10000; ///< queued-reply drain deadline
    size_t MaxFramePayload = DefaultMaxFramePayload;
  };

  /// Where a connection's state machine currently is (introspection for
  /// tests and diagnostics; the reactor itself derives behavior from the
  /// buffers, not from this label).
  enum class Phase : uint8_t {
    ReadHeader, ///< waiting for (more of) a 5-byte frame header
    ReadBody,   ///< header buffered; waiting for payload + CRC
    Write,      ///< a reply is queued and not yet fully flushed
    Closing,    ///< farewell queued; close once it drains
  };

  class Conn {
  public:
    /// Protocol scratch owned by the hooks (the reactor never reads it).
    bool SawHello = false;
    uint64_t SessionId = 0;
    uint32_t Negotiated = 0; ///< wire version agreed at HELLO; 0 before

    Phase phase() const;
    std::string peer() const { return T->peer(); }

  private:
    friend class Reactor;
    std::unique_ptr<Transport> T;
    ReadySignal Signal;      ///< keeps the watch() registration alive
    std::string In;          ///< unparsed inbound bytes
    size_t InOff = 0;        ///< consumed prefix of In
    std::string Out;         ///< queued reply bytes
    size_t OutOff = 0;       ///< flushed prefix of Out
    bool CloseAfterFlush = false;
    bool Dead = false;
    bool HasReadDeadline = false;
    bool HasWriteDeadline = false;
    std::chrono::steady_clock::time_point ReadDeadline, WriteDeadline;
    size_t Slot = 0; ///< index in the owning shard's table

    size_t outPending() const { return Out.size() - OutOff; }
  };

  /// What the frame hook tells the reactor to do next.
  struct FrameAction {
    std::string Reply; ///< already-encoded frame bytes; empty = none
    bool Close = false; ///< flush Reply, then close the connection
  };

  struct Hooks {
    /// A complete, CRC-valid frame arrived.  Runs inline on the reactor
    /// thread — keep it bounded (merging a shard is fine; blocking on
    /// another server is not).
    std::function<FrameAction(Conn &, Frame &&)> OnFrame;
    /// The stream died: Timeout (frame deadline), Malformed/Oversized
    /// (framing violation), or Transport.  Returns the farewell bytes to
    /// attempt (an encoded ERROR frame; empty = none); the connection
    /// closes either way.  May be null.
    std::function<std::string(Conn &, FrameStatus, const std::string &)>
        OnStreamError;
    /// Exactly once per adopted connection, on its owning reactor
    /// thread, after which the Conn is destroyed.  May be null.
    std::function<void(Conn &)> OnClose;
  };

  Reactor(Config C, Hooks H);
  ~Reactor(); ///< stop()s if still running

  Reactor(const Reactor &) = delete;
  Reactor &operator=(const Reactor &) = delete;

  void start();
  /// Closes every connection (running OnClose for each) and joins the
  /// reactor threads.  Idempotent.
  void stop();

  /// Hands a fresh connection to the least-loaded-by-rotation reactor
  /// thread.  Safe from any thread; a post-stop() adopt just closes \p T.
  void adopt(std::unique_ptr<Transport> T);

  /// Appends \p Bytes (already-encoded frame bytes) to the outbound
  /// stream of every live connection for which \p Pred returns true
  /// (null = all) — the server-initiated send path under the POLICY
  /// push-down.  Like adopt(), this only touches the shard queues and
  /// wake pipes; the actual enqueue runs on each connection's owning
  /// reactor thread, so it serializes naturally against replies on the
  /// same connection and needs no transport locks.  Safe from any
  /// thread; a no-op after stop().
  ///
  /// When \p Wait is true the call blocks until every reactor thread has
  /// executed the enqueue (the bytes are handed to the transports, or
  /// dropped with the connection), and returns the number of connections
  /// written — the deterministic hand-off the chaos harness and tests
  /// rely on.  When false it returns 0 immediately.
  size_t broadcast(const std::string &Bytes,
                   std::function<bool(const Conn &)> Pred,
                   bool Wait = false);

  /// Connections adopted and not yet closed.
  size_t active() const {
    return ActiveConns.load(std::memory_order_acquire);
  }

private:
  struct Shard;

  void runShard(Shard &S);
  void serviceConn(Shard &S, Conn &C);
  void flushOut(Conn &C);
  bool parseAvailable(Conn &C);
  void streamError(Conn &C, FrameStatus St, const std::string &Why);
  void finish(Conn &C);

  Config Cfg;
  Hooks H;
  std::vector<std::unique_ptr<Shard>> Shards;
  std::atomic<size_t> NextShard{0};
  std::atomic<size_t> ActiveConns{0};
  std::atomic<bool> Stopped{false};
  bool Started = false;
};

} // namespace profserve
} // namespace ars

#endif // ARS_PROFSERVE_EVENTLOOP_H
