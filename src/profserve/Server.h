//===- profserve/Server.h - Profile collection daemon ---------*- C++ -*-===//
///
/// \file
/// The collection tier between "many deployed instrumented runs" and one
/// merged .arsp profile: a server that accepts concurrent pushers over
/// any Listener (TCP or in-memory loopback), validates every shard
/// (frame CRC, wire version, .arsp CRC, module fingerprint), feeds
/// accepted shards into a lock-striped ProfileAggregator, and serves the
/// merged bundle back over PULL.
///
/// Robustness contract: a malformed, truncated or oversized frame, a
/// wrong fingerprint, a version-mismatched client, or a client that
/// stalls mid-frame or vanishes is rejected or timed out with a
/// diagnostic — the server never crashes and never leaks a connection.
/// Frame-level corruption desynchronizes the stream, so the connection
/// is closed; a well-framed but invalid bundle only earns an ERROR reply
/// and the connection stays usable.
///
/// Epochs: rotateEpoch() drains the aggregator into an epoch base bundle
/// and decays it by EpochKeepPct — the streaming "old runs matter less"
/// weighting of the profile store, now applied on a live aggregate.  The
/// merged view is always epoch base + current aggregator contents.
///
/// Snapshots: the merged profile is written to SnapshotPath crash-safely
/// (temp file, fsync of file and directory, previous copy kept as
/// ".prev", rename) on an interval, on SNAPSHOT_REQ, and on graceful
/// stop() — so a crash of the *collector* loses at most one interval,
/// and start() recovers the newest valid snapshot (falling back to
/// ".prev" when the main file is torn or CRC-corrupt).
///
/// Overload: the accept backlog and concurrent PUSH admission are
/// bounded (MaxPendingConnections / MaxActivePushes); excess work is
/// shed with ERROR(RETRY_AFTER), which well-behaved clients treat as
/// "back off and retry", rather than queueing without bound.
///
/// Determinism: mergeBundle's commutative/associative algebra (see
/// ProfileStore.h) makes the merged bundle byte-identical to a serial
/// fold of the same shards, for any number of concurrent pushers, any
/// worker count and any stripe width.  tests/test_profserve.cpp pins
/// this for 1/4/16 pushers and runs under ThreadSanitizer.
///
//===----------------------------------------------------------------------===//

#ifndef ARS_PROFSERVE_SERVER_H
#define ARS_PROFSERVE_SERVER_H

#include "profserve/Protocol.h"
#include "profserve/Transport.h"
#include "profstore/ProfileAggregator.h"
#include "support/ThreadPool.h"

#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>

namespace ars {
namespace profserve {

struct ServerConfig {
  /// Module fingerprint every shard must carry.  0 = adopt the first
  /// pushed shard's fingerprint and pin it for the server's lifetime.
  uint64_t Fingerprint = 0;

  /// Where snapshots go; empty = no snapshots (merged state lives only
  /// in memory and over PULL).
  std::string SnapshotPath;

  /// Snapshot every N ms while running (0 = only on request/stop).
  int SnapshotIntervalMs = 0;

  /// rotateEpoch() keeps this percent of every count (100 = no decay).
  uint32_t EpochKeepPct = 100;

  /// Auto-rotate after this many merges (0 = only explicit rotation).
  uint64_t RotateEveryMerges = 0;

  /// Connection-handler threads.  A connection occupies one worker for
  /// its lifetime; excess accepted connections queue.
  int Workers = 4;

  /// Load-shedding bound on the accept backlog: connections accepted but
  /// not yet picked up by a worker.  Beyond it a fresh connection is
  /// refused immediately with ERROR(RETRY_AFTER) instead of growing the
  /// ThreadPool queue without bound.  0 = unbounded (chaos tests use this
  /// to keep shedding out of determinism checks).
  int MaxPendingConnections = 256;

  /// Admission bound on PUSHes being decoded/merged at once; one beyond
  /// it earns ERROR(RETRY_AFTER) and the connection stays open.  0 =
  /// unbounded.
  uint64_t MaxActivePushes = 0;

  /// Load the newest valid snapshot (SnapshotPath, then its ".prev"
  /// fallback) into the epoch base on start(), so a restarted collector
  /// resumes from its last durable state instead of an empty profile.
  bool RecoverOnStart = true;

  /// Per-frame read deadline; a client idle or stalled longer is timed
  /// out and its connection closed with a diagnostic.
  int RecvTimeoutMs = 2000;

  /// Frame payload cap (see Protocol.h).
  size_t MaxFramePayload = DefaultMaxFramePayload;

  /// Aggregator lock-striping width (0 = ProfileAggregator's default).
  int Stripes = 0;

  /// Log rejects and snapshot failures to stderr (the `arsc serve`
  /// daemon turns this on; library users and tests keep it quiet).
  bool LogToStderr = false;
};

/// Monotonic counters; readable at any time via stats() or STATS_REQ.
using ServerStats = StatsMsg;

class ProfileServer {
public:
  /// Takes ownership of \p L.  Call start() to begin serving.
  ProfileServer(std::unique_ptr<Listener> L, ServerConfig C);

  /// stop()s if still running.
  ~ProfileServer();

  ProfileServer(const ProfileServer &) = delete;
  ProfileServer &operator=(const ProfileServer &) = delete;

  /// Spawns the acceptor, the connection worker pool, and (when
  /// configured) the snapshot timer.
  void start();

  /// Graceful shutdown: stop accepting, close every live connection,
  /// drain the workers, write a final snapshot.  Idempotent.
  void stop();

  ServerStats stats() const;

  /// Epoch base + everything aggregated since the last rotation.
  profile::ProfileBundle merged() const;

  /// The pinned/adopted module fingerprint (0 = nothing pushed yet).
  uint64_t fingerprint() const;

  /// Folds the aggregator into the epoch base and decays the base by
  /// EpochKeepPct.  Shards pushed concurrently land in whichever side of
  /// the boundary their flush reached first; none are lost or doubled.
  void rotateEpoch();

  /// Writes the merged bundle to SnapshotPath crash-safely (temp file,
  /// fsync file + directory, keep the displaced copy as ".prev", rename;
  /// see profstore::atomicSaveFile).  False + \p *Error when unconfigured
  /// or the write fails — a failed write never damages the previous
  /// snapshot.
  bool snapshotNow(std::string *Error);

  const Listener &listener() const { return *L; }

private:
  /// Per-connection protocol state.
  struct ConnState {
    bool SawHello = false;
    uint64_t SessionId = 0; ///< from HELLO; 0 = untracked legacy client
  };

  void recoverOnStart();
  void acceptLoop();
  void snapshotLoop();
  void handleConnection(Transport *T);
  /// One request/reply step; returns false when the connection is done.
  bool handleFrame(Transport &T, const Frame &F, ConnState &Conn);
  void bumpReject(const std::string &Why, const std::string &Peer);

  std::unique_ptr<Listener> L;
  ServerConfig Config;
  profstore::ProfileAggregator Agg;

  mutable std::mutex StateMu; ///< guards Stats, Fingerprint, EpochBase,
                              ///< AppliedSeqs
  ServerStats Stats;
  uint64_t FingerprintValue = 0;
  profile::ProfileBundle EpochBase;

  /// Idempotency ledger: per session, the PUSH sequence numbers already
  /// merged.  A retried PUSH whose (session, seq) is present is answered
  /// with a duplicate ack and NOT merged again — this is what makes a
  /// client retry after a mid-wire fault exactly-once instead of
  /// at-least-once.  Registration happens before the merge, so a racing
  /// retry on a second connection can never double-merge.  Memory is
  /// bounded by real pushes (sessions are client-chosen but each seq is
  /// one shard actually pushed).
  std::map<uint64_t, std::set<uint64_t>> AppliedSeqs;

  /// Live-connection registry so stop() can close (and thereby unblock)
  /// every handler.  Handlers own their transport via shared_ptr captured
  /// in the pool job; the registry holds raw pointers only while the
  /// handler runs.
  std::mutex ConnMu;
  std::set<Transport *> Active;
  std::atomic<uint64_t> NextFlushKey{0}; ///< aggregator striping key
  std::atomic<int> Pending{0};           ///< accepted, no worker yet
  std::atomic<uint64_t> ActivePushes{0}; ///< PUSHes in decode/merge

  std::unique_ptr<support::ThreadPool> Pool;
  std::thread Acceptor;
  std::thread Snapshotter;
  std::mutex SnapMu;
  std::condition_variable SnapCv;
  bool Stopping = false; ///< guarded by SnapMu; also gates stop() reentry
  bool Started = false;
};

} // namespace profserve
} // namespace ars

#endif // ARS_PROFSERVE_SERVER_H
