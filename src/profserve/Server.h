//===- profserve/Server.h - Profile collection daemon ---------*- C++ -*-===//
///
/// \file
/// The collection tier between "many deployed instrumented runs" and one
/// merged .arsp profile: a server that accepts concurrent pushers over
/// any Listener (TCP or in-memory loopback), validates every shard
/// (frame CRC, wire version, .arsp CRC, module fingerprint), feeds
/// accepted shards into a lock-striped ProfileAggregator, and serves the
/// merged bundle back over PULL.
///
/// Concurrency model: connections are NOT one-thread-each.  A small set
/// of reactor threads (see EventLoop.h) owns every connection as a
/// nonblocking state machine, so thousands of idle or slow pushers cost
/// buffers, not threads, and a slow-loris client trickling bytes cannot
/// occupy a worker.  Frame handling (decode, validate, merge, ack) runs
/// inline on the owning reactor thread; the aggregator's lock striping
/// keeps reactor threads from serializing on one mutex.
///
/// Wire v3 batching: PUSH_BATCH carries M sequenced shards in one frame
/// and earns one cumulative PUSH_BATCH_ACK, so a high-fan-in deployment
/// amortizes round trips.  v2 clients are still served: HELLO negotiates
/// the session down to the client's dialect (see Protocol.h).
///
/// Relay mode: when Config.Relay.Dial is set, this server is an interior
/// node of an aggregation tree.  It accepts PUSHes exactly like a leaf
/// server, merges locally, and periodically drains the aggregated delta
/// upstream through a ProfileClient — reusing the client's sequenced
/// exactly-once retries, spill/replay and circuit breaker, so a faulted
/// uplink never loses or doubles a shard.  mergeBundle's commutative/
/// associative algebra makes the root of ANY relay topology
/// byte-identical to a serial fold of the leaves' shards
/// (tests/test_relay.cpp pins chain, star, balanced-tree and random
/// topologies against the serial fold).
///
/// Robustness contract: a malformed, truncated or oversized frame, a
/// wrong fingerprint, a version-mismatched client, or a client that
/// stalls mid-frame or vanishes is rejected or timed out with a
/// diagnostic — the server never crashes and never leaks a connection.
/// Frame-level corruption desynchronizes the stream, so the connection
/// is closed; a well-framed but invalid bundle only earns an ERROR reply
/// and the connection stays usable.  A peer that stops reading its own
/// replies is reaped by the event loop's write deadline.
///
/// Epochs: rotateEpoch() drains the aggregator into an epoch base bundle
/// and decays it by EpochKeepPct — the streaming "old runs matter less"
/// weighting of the profile store, now applied on a live aggregate.  The
/// merged view is always epoch base + current aggregator contents.
///
/// Snapshots: the merged profile is written to SnapshotPath crash-safely
/// (temp file, fsync of file and directory, previous copy kept as
/// ".prev", rename) on an interval, on SNAPSHOT_REQ, and on graceful
/// stop() — so a crash of the *collector* loses at most one interval,
/// and start() recovers the newest valid snapshot (falling back to
/// ".prev" when the main file is torn or CRC-corrupt).
///
/// Overload: the live-connection count is bounded (MaxConnections);
/// beyond it a fresh connection is refused with ERROR(RETRY_AFTER),
/// which well-behaved clients treat as "back off and retry", rather than
/// admitting connections without bound.
///
/// Determinism: mergeBundle's algebra makes the merged bundle
/// byte-identical to a serial fold of the same shards, for any number of
/// concurrent pushers, any reactor thread count and any stripe width.
/// tests/test_profserve.cpp pins this for 1/4/16 pushers and runs under
/// ThreadSanitizer.
///
//===----------------------------------------------------------------------===//

#ifndef ARS_PROFSERVE_SERVER_H
#define ARS_PROFSERVE_SERVER_H

#include "policy/Policy.h"
#include "profserve/Client.h"
#include "profserve/EventLoop.h"
#include "profserve/Protocol.h"
#include "profserve/Transport.h"
#include "profstore/Journal.h"
#include "profstore/ProfileAggregator.h"
#include "profstore/ProfileIO.h"

#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_set>
#include <string>
#include <thread>
#include <vector>

namespace ars {
namespace profserve {

/// Upstream half of an aggregation-tree interior node.
struct RelayConfig {
  /// Connection factory for the upstream (parent) server.  Null = this
  /// server is a leaf/root collector, not a relay.
  Dialer Dial;

  /// Backup parents, tried in order when Dial's parent is unreachable
  /// (`arsc serve --relay-to=primary,backup`).  The upstream client
  /// fails over breaker-style and re-establishes its session with
  /// sequence continuity, so a parent death never strands this subtree
  /// and the new parent's dedup keeps the hand-off exactly-once.
  std::vector<Dialer> BackupDials;

  /// Client config for the upstream session.  SessionId should be a
  /// stable nonzero id unique among the parent's children (exactly-once
  /// dedup keys on it); start() derives one from this server's identity
  /// when left 0.  SpillPath is derived from SnapshotPath when empty, so
  /// an unreachable parent spills deltas instead of dropping them.
  ClientConfig Client;

  /// Flush the aggregated delta upstream after this many local merges
  /// (0 = no merge-count trigger).
  uint64_t FlushEveryMerges = 0;

  /// Periodic upstream flush (0 = only on merge trigger, explicit
  /// flushUpstream() calls, and stop()).
  int FlushIntervalMs = 0;

  bool enabled() const { return static_cast<bool>(Dial); }
};

/// Closed-loop sampling policy (wire v4; `arsc serve --policy`).  When
/// enabled, every epoch rotation feeds the drained delta to a
/// ConvergenceWatcher, and any new decisions are broadcast as a POLICY
/// frame to every connection negotiated at v4 (v2/v3 sessions simply
/// never receive one) and forwarded down the relay tree.  A relay
/// WITHOUT its own watcher still forwards upstream POLICY frames to its
/// children, so one watcher at the root steers an entire tree; enabling
/// the watcher on an interior relay makes the relay authoritative for
/// its subtree (upstream frames are then ignored — two version
/// sequences must never interleave at one receiver).
struct PolicyPushConfig {
  bool Enabled = false;
  policy::WatcherConfig Watcher;
};

struct ServerConfig {
  /// Module fingerprint every shard must carry.  0 = adopt the first
  /// pushed shard's fingerprint and pin it for the server's lifetime.
  uint64_t Fingerprint = 0;

  /// Where snapshots go; empty = no snapshots (merged state lives only
  /// in memory and over PULL).
  std::string SnapshotPath;

  /// Snapshot every N ms while running (0 = only on request/stop).
  int SnapshotIntervalMs = 0;

  /// Wrap snapshots in the ARSZ compressed-block container
  /// (support/Compress.h).  Loading — including RecoverOnStart and the
  /// ".prev" fallback — detects the container by magic, so compressed
  /// and raw snapshots interoperate; only the on-disk bytes change.
  bool CompressSnapshots = false;

  /// rotateEpoch() keeps this percent of every count (100 = no decay).
  uint32_t EpochKeepPct = 100;

  /// Auto-rotate after this many merges (0 = only explicit rotation).
  uint64_t RotateEveryMerges = 0;

  /// Reactor (event loop) threads.  Each owns a share of the
  /// connections; none ever blocks on a peer, so this is sized for CPU
  /// (merging), not for connection count.
  int Workers = 4;

  /// Load-shedding bound on LIVE connections (adopted and not yet
  /// closed).  Beyond it a fresh connection is refused immediately with
  /// ERROR(RETRY_AFTER) instead of admitting unbounded connection state.
  /// 0 = unbounded (chaos tests use this to keep shedding out of
  /// determinism checks).
  int MaxConnections = 256;

  /// Load the newest valid snapshot (SnapshotPath, then its ".prev"
  /// fallback) into the epoch base on start(), so a restarted collector
  /// resumes from its last durable state instead of an empty profile.
  bool RecoverOnStart = true;

  /// Per-frame read deadline; a client idle or stalled longer is timed
  /// out and its connection closed with a diagnostic.  <= 0 disables.
  int RecvTimeoutMs = 2000;

  /// Queued-reply drain deadline; a peer that takes nothing for this
  /// long while a reply is pending is reaped (write backpressure).
  int SendTimeoutMs = 10000;

  /// Frame payload cap (see Protocol.h).
  size_t MaxFramePayload = DefaultMaxFramePayload;

  /// Aggregator lock-striping width (0 = ProfileAggregator's default).
  int Stripes = 0;

  /// Log rejects and snapshot failures to stderr (the `arsc serve`
  /// daemon turns this on; library users and tests keep it quiet).
  bool LogToStderr = false;

  /// Upstream aggregation-tree edge; see RelayConfig.
  RelayConfig Relay;

  /// Closed-loop sampling policy push-down; see PolicyPushConfig.
  PolicyPushConfig Policy;

  /// Write-ahead journal base path (segments at JournalPath + ".NNNNNN";
  /// `arsc serve --journal=<path>`).  Empty = no journal: the server is
  /// crash-safe only at snapshot boundaries, as before.  With a journal,
  /// every accepted PUSH is CRC-framed and group-committed to disk
  /// BEFORE it is merged or acked, start() replays the tail past the
  /// last checkpointed snapshot (restoring the dedup ledger too, so
  /// post-restart retries stay exactly-once), and every snapshot doubles
  /// as a checkpoint that truncates the replayed-into segments.
  std::string JournalPath;

  /// Journal segment rotation threshold.
  uint64_t JournalMaxSegmentBytes = 4u << 20;

  /// fsync journal group commits (off only to isolate framing cost in
  /// benches; a real deployment keeps it on).
  bool JournalFsync = true;

  /// Chaos seam forwarded to the journal (see Journal::Config::CrashHook):
  /// returning true at a named crash point simulates this server's
  /// process dying there.
  std::function<bool(const char *Point)> CrashHook;
};

/// Monotonic counters; readable at any time via stats() or STATS_REQ.
using ServerStats = StatsMsg;

class ProfileServer {
public:
  /// Takes ownership of \p L.  Call start() to begin serving.
  ProfileServer(std::unique_ptr<Listener> L, ServerConfig C);

  /// stop()s if still running.
  ~ProfileServer();

  ProfileServer(const ProfileServer &) = delete;
  ProfileServer &operator=(const ProfileServer &) = delete;

  /// Spawns the acceptor, the reactor threads, and (when configured) the
  /// snapshot timer and the relay flusher.
  void start();

  /// Graceful shutdown: stop accepting, close every live connection,
  /// join the reactors, push any remaining relay delta upstream, write a
  /// final snapshot.  Idempotent.
  void stop();

  /// Abrupt shutdown for crash tests: tears the threads down like stop()
  /// but skips the final upstream flush, the farewell, the final
  /// snapshot and the journal checkpoint — on-disk state is left exactly
  /// as the "crash" found it, so a successor server must reconstruct the
  /// aggregate from snapshot + journal alone.  Idempotent with stop().
  void kill();

  ServerStats stats() const;

  /// Epoch base + everything aggregated since the last rotation.
  profile::ProfileBundle merged() const;

  /// The pinned/adopted module fingerprint (0 = nothing pushed yet).
  uint64_t fingerprint() const;

  /// Folds the aggregator into the epoch base and decays the base by
  /// EpochKeepPct.  Shards pushed concurrently land in whichever side of
  /// the boundary their flush reached first; none are lost or doubled.
  void rotateEpoch();

  /// Writes the merged bundle to SnapshotPath crash-safely (temp file,
  /// fsync file + directory, keep the displaced copy as ".prev", rename;
  /// see profstore::atomicSaveFile).  False + \p *Error when unconfigured
  /// or the write fails — a failed write never damages the previous
  /// snapshot.
  bool snapshotNow(std::string *Error);

  /// Relay only: drains the aggregated delta and pushes it upstream as
  /// one sequenced shard (replaying any earlier spilled deltas first).
  /// Exactly-once end to end: a failed push spills with its sequence
  /// number preserved, so the retry can never double-merge upstream.
  /// No-op (true) on a non-relay server; false + \p *Error when the
  /// upstream stays unreachable (the delta is spilled, not lost).
  bool flushUpstream(std::string *Error);

  bool isRelay() const { return Config.Relay.enabled(); }

  /// The policy table as last broadcast (local watcher decisions when
  /// the watcher is enabled, else whatever the upstream pushed down).
  /// Entries empty + PolicyVersion 0 = nothing decided yet.
  PolicyMsg currentPolicy() const;

  /// (Re)broadcasts the current policy to every v4 session.  With
  /// \p Wait the call returns only after every reactor thread has
  /// handed the frame to its transports, and the return value is the
  /// number of connections written — the deterministic hand-off the
  /// chaos harness and tests use.  No-op (0) when no policy exists yet.
  size_t pushPolicy(bool Wait = false);

  const Listener &listener() const { return *L; }

private:
  void recoverOnStart();
  void acceptLoop();
  void snapshotLoop();
  void flusherLoop();
  /// The reactor's OnFrame hook: one complete validated frame in, the
  /// encoded reply (and close verdict) out.
  Reactor::FrameAction handleFrame(Reactor::Conn &Conn, Frame &&F);
  Reactor::FrameAction handlePush(Reactor::Conn &Conn, const Frame &F);
  Reactor::FrameAction handlePushBatch(Reactor::Conn &Conn,
                                       const Frame &F);
  /// Fingerprint-pin / dedup / journal / merge for one decoded shard
  /// (\p Arsp is its raw encoded form, what the journal records).
  /// Returns 0 = merged, 1 = duplicate, 2 = adoption race, 3 = journal
  /// write failed (the shard was unregistered again; the caller answers
  /// RETRY_AFTER so the client retries or spills — never a silent loss).
  /// With \p SyncJournal false the journal record is appended but not
  /// yet committed: the batch path appends M shards and pays one group
  /// commit via journalSync() before acking.
  int mergeShard(uint64_t SessionId, uint64_t Seq, const std::string &Arsp,
                 const profstore::DecodeResult &D, uint64_t *MergesOut,
                 bool SyncJournal = true);
  /// Dedup-checks and registers (session, seq) and pins the fingerprint.
  /// Same 0/1/2 returns as mergeShard; called under a shared ApplyGate.
  int registerShard(uint64_t SessionId, uint64_t Seq,
                    const profstore::DecodeResult &D, uint64_t *MergesOut);
  /// Rolls back a registration whose journal write failed.
  void unregisterShard(uint64_t SessionId, uint64_t Seq);
  /// Aggregates one registered (and journaled) shard; returns true when
  /// the merge count crossed a RotateEveryMerges boundary (the caller
  /// rotates after releasing the apply gate).
  bool applyShard(const profstore::DecodeResult &D, uint64_t *MergesOut);
  /// Group commit of everything journaled so far; true without a journal.
  bool journalSync();
  void maybeTriggerRelayFlush();
  void bumpReject(const std::string &Why, const std::string &Peer);
  /// Feeds one epoch delta to the watcher; broadcasts on new decisions.
  void observePolicyEpoch(const profile::ProfileBundle &Delta);
  /// Adopts an upstream POLICY frame (relay) and re-broadcasts it
  /// downstream.  Ignored when stale or when the local watcher is
  /// authoritative.
  void forwardPolicy(const PolicyMsg &M);
  /// Broadcasts \p M to every v4 session (see pushPolicy).
  size_t broadcastPolicy(const PolicyMsg &M, bool Wait);

  std::unique_ptr<Listener> L;
  ServerConfig Config;
  profstore::ProfileAggregator Agg;

  mutable std::mutex StateMu; ///< guards Stats, Fingerprint, EpochBase,
                              ///< AppliedSeqs
  ServerStats Stats;
  uint64_t FingerprintValue = 0;
  profile::ProfileBundle EpochBase;

  /// Idempotency ledger: per session, the PUSH sequence numbers already
  /// merged.  A retried PUSH whose (session, seq) is present is answered
  /// with a duplicate ack and NOT merged again — this is what makes a
  /// client retry after a mid-wire fault exactly-once instead of
  /// at-least-once.  Registration happens before the merge, so a racing
  /// retry on a second connection can never double-merge.  Memory is
  /// bounded by real pushes (sessions are client-chosen but each seq is
  /// one shard actually pushed).  Hashed, not ordered: the ledger is
  /// membership-only and sits on every push's ack path.
  std::map<uint64_t, std::unordered_set<uint64_t>> AppliedSeqs;

  std::atomic<uint64_t> NextFlushKey{0}; ///< aggregator striping key

  /// Write-ahead journal (null when unconfigured).  The ApplyGate keeps
  /// journal records and aggregate mutations consistent with
  /// checkpoints: every push path holds it SHARED from registration
  /// through merge, and snapshotNow's checkpoint (plus rotateEpoch's
  /// decay record) holds it EXCLUSIVE — so a checkpoint can never
  /// capture a dedup entry whose shard is journaled before the
  /// checkpoint but merged after it, which truncation would then lose.
  std::unique_ptr<profstore::Journal> Wal;
  std::shared_mutex ApplyGate;
  uint64_t RecoveredSnapHash = 0; ///< fnv1a64 of the snapshot loaded

  std::unique_ptr<Reactor> R;
  std::thread Acceptor;
  std::thread Snapshotter;
  std::mutex SnapMu;
  std::condition_variable SnapCv;
  bool Stopping = false; ///< guarded by SnapMu; also gates stop() reentry
  bool Started = false;

  /// Relay plumbing.  Upstream (the ProfileClient) is single-threaded by
  /// contract, so every use — flusher thread, explicit flushUpstream(),
  /// final flush in stop() — serializes on UpstreamMu.  Reactor threads
  /// never touch it; they only bump MergesSinceFlush and poke FlushCv.
  std::unique_ptr<ProfileClient> Upstream;
  std::mutex UpstreamMu;
  std::mutex FlushMu;
  std::condition_variable FlushCv;
  bool FlushAsked = false; ///< guarded by FlushMu
  bool FlushStop = false;  ///< guarded by FlushMu
  std::thread Flusher;
  std::atomic<uint64_t> MergesSinceFlush{0};

  /// Closed-loop policy state.  PolicyMu guards the watcher (rotations
  /// may race) and the last-broadcast table; it is never held across a
  /// broadcast or any reactor call.
  mutable std::mutex PolicyMu;
  std::unique_ptr<policy::ConvergenceWatcher> Watcher; ///< null unless enabled
  PolicyMsg LastPolicy; ///< guarded by PolicyMu
};

} // namespace profserve
} // namespace ars

#endif // ARS_PROFSERVE_SERVER_H
