//===- ir/IRPrinter.h - IR pretty printing --------------------*- C++ -*-===//
///
/// \file
/// Text rendering of IR functions for tests and the CFG-dumping examples
/// (the textual analogue of the paper's Figures 2, 5 and 6).
///
//===----------------------------------------------------------------------===//

#ifndef ARS_IR_IRPRINTER_H
#define ARS_IR_IRPRINTER_H

#include "ir/IR.h"

#include <string>

namespace ars {
namespace ir {

/// Renders a single instruction.
std::string printInst(const IRInst &I);

/// Renders \p F with block labels and successor annotations.
std::string printFunction(const IRFunction &F);

} // namespace ir
} // namespace ars

#endif // ARS_IR_IRPRINTER_H
