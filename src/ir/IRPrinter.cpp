//===- ir/IRPrinter.cpp ---------------------------------------*- C++ -*-===//

#include "ir/IRPrinter.h"

#include "support/Support.h"

using ars::support::formatString;

namespace ars {
namespace ir {

std::string printInst(const IRInst &I) {
  std::string Out = irOpName(I.Op);
  auto reg = [](int R) { return formatString("r%d", R); };

  switch (I.Op) {
  case IROp::MovImm:
    return formatString("%s = %lld", reg(I.Dst).c_str(),
                        static_cast<long long>(I.Imm));
  case IROp::MovFImm:
    return formatString("%s = %g", reg(I.Dst).c_str(), I.FImm);
  case IROp::Mov:
  case IROp::Neg:
  case IROp::FNeg:
  case IROp::F2I:
  case IROp::I2F:
  case IROp::ALen:
  case IROp::NewArray:
    return formatString("%s = %s %s", reg(I.Dst).c_str(), irOpName(I.Op),
                        reg(I.A).c_str());
  case IROp::Add:
  case IROp::Sub:
  case IROp::Mul:
  case IROp::Div:
  case IROp::Rem:
  case IROp::And:
  case IROp::Or:
  case IROp::Xor:
  case IROp::Shl:
  case IROp::Shr:
  case IROp::FAdd:
  case IROp::FSub:
  case IROp::FMul:
  case IROp::FDiv:
  case IROp::CmpEq:
  case IROp::CmpNe:
  case IROp::CmpLt:
  case IROp::CmpLe:
  case IROp::CmpGt:
  case IROp::CmpGe:
  case IROp::FCmpLt:
  case IROp::FCmpLe:
  case IROp::FCmpEq:
  case IROp::ALoad:
    return formatString("%s = %s %s, %s", reg(I.Dst).c_str(), irOpName(I.Op),
                        reg(I.A).c_str(), reg(I.B).c_str());
  case IROp::AStore:
    return formatString("astore %s[%s] = %s", reg(I.A).c_str(),
                        reg(I.B).c_str(), reg(I.C).c_str());
  case IROp::Call:
  case IROp::Spawn: {
    Out = I.Dst >= 0 ? formatString("%s = %s #%lld(", reg(I.Dst).c_str(),
                                    irOpName(I.Op),
                                    static_cast<long long>(I.Imm))
                     : formatString("%s #%lld(", irOpName(I.Op),
                                    static_cast<long long>(I.Imm));
    for (size_t A = 0; A != I.Args.size(); ++A) {
      if (A)
        Out += ", ";
      Out += reg(I.Args[A]);
    }
    Out += formatString(") site=%d", I.Aux);
    return Out;
  }
  case IROp::New:
    return formatString("%s = new #%lld", reg(I.Dst).c_str(),
                        static_cast<long long>(I.Imm));
  case IROp::GetField:
    return formatString("%s = getfield %s.[%lld]", reg(I.Dst).c_str(),
                        reg(I.A).c_str(), static_cast<long long>(I.Imm));
  case IROp::PutField:
    return formatString("putfield %s.[%lld] = %s", reg(I.A).c_str(),
                        static_cast<long long>(I.Imm), reg(I.B).c_str());
  case IROp::GetGlobal:
    return formatString("%s = getglobal [%lld]", reg(I.Dst).c_str(),
                        static_cast<long long>(I.Imm));
  case IROp::PutGlobal:
    return formatString("putglobal [%lld] = %s",
                        static_cast<long long>(I.Imm), reg(I.A).c_str());
  case IROp::IOWait:
    return formatString("iowait %lld", static_cast<long long>(I.Imm));
  case IROp::Print:
    return formatString("print %s", reg(I.A).c_str());
  case IROp::Jump:
    return formatString("jump bb%lld", static_cast<long long>(I.Imm));
  case IROp::Branch:
    return formatString("branch %s ? bb%lld : bb%d", reg(I.A).c_str(),
                        static_cast<long long>(I.Imm), I.Aux);
  case IROp::RetVal:
    return formatString("retval %s", reg(I.A).c_str());
  case IROp::SampleCheck:
    return formatString("samplecheck dup=bb%lld cont=bb%d",
                        static_cast<long long>(I.Imm), I.Aux);
  case IROp::BurstTransfer:
    return formatString("bursttransfer dup=bb%lld check=bb%d",
                        static_cast<long long>(I.Imm), I.Aux);
  case IROp::Probe:
  case IROp::GuardedProbe: {
    Out = formatString("%s #%lld",
                       I.Op == IROp::Probe ? "probe" : "guardedprobe",
                       static_cast<long long>(I.Imm));
    for (int Extra : I.Args)
      Out += formatString(" #%d", Extra);
    if (I.Aux > 1)
      Out += formatString(" w=%d", I.Aux);
    return Out;
  }
  default:
    return Out;
  }
}

std::string printFunction(const IRFunction &F) {
  std::string Out =
      formatString("irfunc %s #%d params=%d regs=%d entry=bb%d\n",
                   F.Name.c_str(), F.FuncId, F.NumParams, F.NumRegs, F.Entry);
  for (const BasicBlock &BB : F.Blocks) {
    Out += formatString("bb%d:\n", BB.Id);
    for (const IRInst &I : BB.Insts)
      Out += "  " + printInst(I) + "\n";
  }
  return Out;
}

} // namespace ir
} // namespace ars
