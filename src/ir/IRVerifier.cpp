//===- ir/IRVerifier.cpp --------------------------------------*- C++ -*-===//

#include "ir/IRVerifier.h"

#include "support/Support.h"

using ars::support::formatString;

namespace ars {
namespace ir {

namespace {

/// Collects the registers read and written by \p I.
void collectRegs(const IRInst &I, std::vector<int> &Regs) {
  if (I.Dst >= 0 || I.Dst < -1)
    Regs.push_back(I.Dst);
  for (int R : {I.A, I.B, I.C})
    if (R != -1)
      Regs.push_back(R);
  // On Probe/GuardedProbe the Args are coalesced probe ids, not registers
  // (ir/IR.h); checkProbeEncoding validates them instead.
  if (I.Op == IROp::Probe || I.Op == IROp::GuardedProbe)
    return;
  for (int R : I.Args)
    Regs.push_back(R);
}

/// Validates the check-coalescing encoding on probe instructions: weights
/// are non-negative, coalesced bodies only appear on GuardedProbe, and
/// the combined weight splits evenly over the bodies (the engine recovers
/// the per-body multiplicity as Aux / (1 + Args.size())).
std::string checkProbeEncoding(const IRFunction &F, const IRInst &Inst,
                               int Block, size_t Idx) {
  if (Inst.Imm < 0)
    return formatString("%s bb%d@%zu: negative probe id", F.Name.c_str(),
                        Block, Idx);
  if (Inst.Aux < 0)
    return formatString("%s bb%d@%zu: negative probe weight",
                        F.Name.c_str(), Block, Idx);
  if (Inst.Args.empty())
    return std::string();
  if (Inst.Op == IROp::Probe)
    return formatString("%s bb%d@%zu: coalesced bodies on an unguarded "
                        "probe",
                        F.Name.c_str(), Block, Idx);
  for (int Id : Inst.Args)
    if (Id < 0)
      return formatString("%s bb%d@%zu: negative coalesced probe id",
                          F.Name.c_str(), Block, Idx);
  int Bodies = 1 + static_cast<int>(Inst.Args.size());
  if (Inst.Aux < Bodies || Inst.Aux % Bodies != 0)
    return formatString("%s bb%d@%zu: coalesced weight %d is not a "
                        "positive multiple of %d bodies",
                        F.Name.c_str(), Block, Idx, Inst.Aux, Bodies);
  return std::string();
}

} // namespace

std::string verifyFunction(const IRFunction &F) {
  if (F.Blocks.empty())
    return formatString("%s: no blocks", F.Name.c_str());
  if (F.Entry < 0 || F.Entry >= F.numBlocks())
    return formatString("%s: entry block %d out of range", F.Name.c_str(),
                        F.Entry);
  for (int B = 0; B != F.numBlocks(); ++B) {
    const BasicBlock &BB = F.Blocks[B];
    if (BB.Id != B)
      return formatString("%s bb%d: stale block id %d", F.Name.c_str(), B,
                          BB.Id);
    if (BB.Insts.empty())
      return formatString("%s bb%d: empty block", F.Name.c_str(), B);
    for (size_t I = 0; I != BB.Insts.size(); ++I) {
      const IRInst &Inst = BB.Insts[I];
      bool Last = I + 1 == BB.Insts.size();
      if (isTerminator(Inst.Op) != Last)
        return formatString("%s bb%d@%zu: %s terminator placement",
                            F.Name.c_str(), B, I,
                            Last ? "missing" : "misplaced");
      std::vector<int> Regs;
      collectRegs(Inst, Regs);
      for (int R : Regs)
        if (R < 0 || R >= F.NumRegs)
          return formatString("%s bb%d@%zu: register r%d out of range",
                              F.Name.c_str(), B, I, R);
      if (Inst.Op == IROp::Probe || Inst.Op == IROp::GuardedProbe) {
        std::string Bad = checkProbeEncoding(F, Inst, B, I);
        if (!Bad.empty())
          return Bad;
      }
    }
    int Targets[2];
    int Count = 0;
    terminatorTargets(BB.terminator(), Targets, &Count);
    for (int T = 0; T != Count; ++T)
      if (Targets[T] < 0 || Targets[T] >= F.numBlocks())
        return formatString("%s bb%d: branch target bb%d out of range",
                            F.Name.c_str(), B, Targets[T]);
  }
  return std::string();
}

} // namespace ir
} // namespace ars
