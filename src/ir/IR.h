//===- ir/IR.h - Register-based CFG intermediate representation -*- C++ -*-===//
///
/// \file
/// The three-address CFG IR that the sampling framework transforms and the
/// execution engine interprets.  It plays the role of Jalapeno's low-level
/// IR (LIR): the paper performs code duplication "in the last phase of the
/// LIR", i.e. on exactly this kind of representation.
///
/// Besides ordinary operations, the IR has four framework pseudo-ops:
///
///  * Yieldpoint      - thread-scheduler poll (Jalapeno places these on all
///                      method entries and backedges; so do we).
///  * SampleCheck     - the counter-based check: a terminator that jumps to
///                      duplicated code when the sample condition is true.
///  * Probe           - unconditional instrumentation operation.
///  * GuardedProbe    - instrumentation operation guarded by its own check
///                      (the No-Duplication variant).
///  * BurstTransfer   - counted backedge inside duplicated code used for
///                      N-consecutive-iteration sampling (paper section 2).
///
//===----------------------------------------------------------------------===//

#ifndef ARS_IR_IR_H
#define ARS_IR_IR_H

#include <cstdint>
#include <string>
#include <vector>

namespace ars {
namespace ir {

/// IR operations.  Register operands are A/B/C, destination is Dst,
/// integer payload is Imm, float payload FImm, secondary payload Aux.
enum class IROp : uint8_t {
  Nop,
  MovImm,    ///< Dst = Imm
  MovFImm,   ///< Dst = FImm
  Mov,       ///< Dst = A

  Add,       ///< Dst = A + B (and so on for the integer group)
  Sub,
  Mul,
  Div,
  Rem,
  Neg,       ///< Dst = -A
  And,
  Or,
  Xor,
  Shl,
  Shr,

  FAdd,
  FSub,
  FMul,
  FDiv,
  FNeg,      ///< Dst = -A
  F2I,       ///< Dst = (int)A
  I2F,       ///< Dst = (float)A

  CmpEq,     ///< Dst = A == B (0/1), and so on
  CmpNe,
  CmpLt,
  CmpLe,
  CmpGt,
  CmpGe,
  FCmpLt,
  FCmpLe,
  FCmpEq,

  Call,      ///< Dst (or -1) = call function Imm with Args; Aux = site id
  Spawn,     ///< start green thread running function Imm with Args

  New,       ///< Dst = new object of class Imm
  GetField,  ///< Dst = A.fields[Imm]   (Imm = module-global field id)
  PutField,  ///< A.fields[Imm] = B
  GetGlobal, ///< Dst = globals[Imm]    (Imm = global index)
  PutGlobal, ///< globals[Imm] = A
  NewArray,  ///< Dst = new array of length A
  ALoad,     ///< Dst = A[B]
  AStore,    ///< A[B] = C
  ALen,      ///< Dst = length(A)

  IOWait,    ///< burn Imm simulated cycles
  Print,     ///< append A to the engine trace

  // Terminators.
  Jump,      ///< goto block Imm
  Branch,    ///< if A != 0 goto block Imm else goto block Aux
  Ret,       ///< return void
  RetVal,    ///< return A

  // Framework pseudo-ops.
  Yieldpoint,   ///< thread-switch poll
  SampleCheck,  ///< terminator: if sample condition, goto Imm (duplicated
                ///< code) else goto Aux; see EngineConfig for the condition
  Probe,        ///< run probe Imm unconditionally
  GuardedProbe, ///< if sample condition, run probe Imm (No-Duplication)
  BurstTransfer ///< terminator: stay in duplicated code (goto Imm) while the
                ///< frame burst counter is positive, else goto Aux
};

/// Number of IROp values (BurstTransfer is last).  Sizes the engine's
/// computed-goto jump table and any per-op cost cache; keep in sync with
/// the enum.
constexpr unsigned NumIROps = static_cast<unsigned>(IROp::BurstTransfer) + 1;

/// Mnemonic for \p Op.
const char *irOpName(IROp Op);

/// True if \p Op must end a basic block.
bool isTerminator(IROp Op);

/// One IR instruction.
struct IRInst {
  IROp Op = IROp::Nop;
  int Dst = -1; ///< destination register, -1 if none
  int A = -1;   ///< register operands
  int B = -1;
  int C = -1;
  int64_t Imm = 0;
  double FImm = 0.0;
  /// Second branch target / call-site id / probe payload.  On Probe and
  /// GuardedProbe a value > 1 is the check-coalescing pass's static check
  /// weight: a GuardedProbe decrements the sample counter by Aux instead
  /// of 1, and each of its bodies records Aux / (1 + Args.size()) events
  /// when it fires (sampling/Coalesce.h).
  int Aux = 0;
  /// Call arguments (registers) — except on Probe/GuardedProbe, where
  /// Args are the extra probe ids a coalesced check guards.
  std::vector<int> Args;

  IRInst() = default;
  explicit IRInst(IROp Op) : Op(Op) {}
};

/// A basic block: a straight-line instruction list ending in a terminator.
struct BasicBlock {
  int Id = -1;
  std::vector<IRInst> Insts;

  const IRInst &terminator() const { return Insts.back(); }
  IRInst &terminator() { return Insts.back(); }
};

/// A function in CFG form.  Registers [0, NumParams) hold the arguments on
/// entry; Entry names the entry block (transforms prepend check blocks, so
/// it is not always block 0).
struct IRFunction {
  std::string Name;
  int FuncId = -1;
  int NumParams = 0;
  int NumRegs = 0;
  int Entry = 0;
  /// Return value presence (void functions use Ret, others RetVal).
  bool ReturnsValue = false;
  std::vector<BasicBlock> Blocks;

  int numBlocks() const { return static_cast<int>(Blocks.size()); }

  /// Appends an empty block and returns its id.
  int addBlock();

  /// Total instruction count (the "space" metric for Table 2).
  int codeSize() const;
};

/// Successor block ids of \p Term (0, 1 or 2 entries, taken-target first
/// for two-way terminators).
void terminatorTargets(const IRInst &Term, int Targets[2], int *Count);

/// Retargets every successor of \p Term equal to \p From to \p To.
void retargetTerminator(IRInst &Term, int From, int To);

/// Rewrites every successor slot of \p Term through \p NewId (indexed by
/// old block id).  Unlike repeated retargetTerminator calls, this cannot
/// collide when a slot's new id equals another slot's old id — use it for
/// whole-function renumbering.
void remapTerminatorTargets(IRInst &Term, const std::vector<int> &NewId);

} // namespace ir
} // namespace ars

#endif // ARS_IR_IR_H
