//===- ir/IRVerifier.h - IR structural invariants -------------*- C++ -*-===//
///
/// \file
/// Checks the structural invariants every pass must preserve: exactly one
/// terminator per block (at the end), targets in range, register indices in
/// range, entry block present.  Run after lowering and after every sampling
/// transform in tests.
///
//===----------------------------------------------------------------------===//

#ifndef ARS_IR_IRVERIFIER_H
#define ARS_IR_IRVERIFIER_H

#include "ir/IR.h"

#include <string>

namespace ars {
namespace ir {

/// Returns an empty string when \p F is well-formed, otherwise the first
/// problem found.
std::string verifyFunction(const IRFunction &F);

} // namespace ir
} // namespace ars

#endif // ARS_IR_IRVERIFIER_H
