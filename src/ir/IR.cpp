//===- ir/IR.cpp ----------------------------------------------*- C++ -*-===//

#include "ir/IR.h"

#include <cassert>

namespace ars {
namespace ir {

const char *irOpName(IROp Op) {
  switch (Op) {
  case IROp::Nop:           return "nop";
  case IROp::MovImm:        return "movimm";
  case IROp::MovFImm:       return "movfimm";
  case IROp::Mov:           return "mov";
  case IROp::Add:           return "add";
  case IROp::Sub:           return "sub";
  case IROp::Mul:           return "mul";
  case IROp::Div:           return "div";
  case IROp::Rem:           return "rem";
  case IROp::Neg:           return "neg";
  case IROp::And:           return "and";
  case IROp::Or:            return "or";
  case IROp::Xor:           return "xor";
  case IROp::Shl:           return "shl";
  case IROp::Shr:           return "shr";
  case IROp::FAdd:          return "fadd";
  case IROp::FSub:          return "fsub";
  case IROp::FMul:          return "fmul";
  case IROp::FDiv:          return "fdiv";
  case IROp::FNeg:          return "fneg";
  case IROp::F2I:           return "f2i";
  case IROp::I2F:           return "i2f";
  case IROp::CmpEq:         return "cmpeq";
  case IROp::CmpNe:         return "cmpne";
  case IROp::CmpLt:         return "cmplt";
  case IROp::CmpLe:         return "cmple";
  case IROp::CmpGt:         return "cmpgt";
  case IROp::CmpGe:         return "cmpge";
  case IROp::FCmpLt:        return "fcmplt";
  case IROp::FCmpLe:        return "fcmple";
  case IROp::FCmpEq:        return "fcmpeq";
  case IROp::Call:          return "call";
  case IROp::Spawn:         return "spawn";
  case IROp::New:           return "new";
  case IROp::GetField:      return "getfield";
  case IROp::PutField:      return "putfield";
  case IROp::GetGlobal:     return "getglobal";
  case IROp::PutGlobal:     return "putglobal";
  case IROp::NewArray:      return "newarray";
  case IROp::ALoad:         return "aload";
  case IROp::AStore:        return "astore";
  case IROp::ALen:          return "alen";
  case IROp::IOWait:        return "iowait";
  case IROp::Print:         return "print";
  case IROp::Jump:          return "jump";
  case IROp::Branch:        return "branch";
  case IROp::Ret:           return "ret";
  case IROp::RetVal:        return "retval";
  case IROp::Yieldpoint:    return "yieldpoint";
  case IROp::SampleCheck:   return "samplecheck";
  case IROp::Probe:         return "probe";
  case IROp::GuardedProbe:  return "guardedprobe";
  case IROp::BurstTransfer: return "bursttransfer";
  }
  return "<bad irop>";
}

bool isTerminator(IROp Op) {
  return Op == IROp::Jump || Op == IROp::Branch || Op == IROp::Ret ||
         Op == IROp::RetVal || Op == IROp::SampleCheck ||
         Op == IROp::BurstTransfer;
}

int IRFunction::addBlock() {
  BasicBlock BB;
  BB.Id = numBlocks();
  Blocks.push_back(std::move(BB));
  return Blocks.back().Id;
}

int IRFunction::codeSize() const {
  int Size = 0;
  for (const BasicBlock &BB : Blocks)
    Size += static_cast<int>(BB.Insts.size());
  return Size;
}

void terminatorTargets(const IRInst &Term, int Targets[2], int *Count) {
  assert(isTerminator(Term.Op) && "not a terminator");
  switch (Term.Op) {
  case IROp::Jump:
    Targets[0] = static_cast<int>(Term.Imm);
    *Count = 1;
    return;
  case IROp::Branch:
  case IROp::SampleCheck:
  case IROp::BurstTransfer:
    Targets[0] = static_cast<int>(Term.Imm);
    Targets[1] = Term.Aux;
    *Count = 2;
    return;
  case IROp::Ret:
  case IROp::RetVal:
    *Count = 0;
    return;
  default:
    *Count = 0;
    return;
  }
}

void remapTerminatorTargets(IRInst &Term, const std::vector<int> &NewId) {
  assert(isTerminator(Term.Op) && "not a terminator");
  switch (Term.Op) {
  case IROp::Jump:
    Term.Imm = NewId[static_cast<size_t>(Term.Imm)];
    return;
  case IROp::Branch:
  case IROp::SampleCheck:
  case IROp::BurstTransfer:
    Term.Imm = NewId[static_cast<size_t>(Term.Imm)];
    Term.Aux = NewId[static_cast<size_t>(Term.Aux)];
    return;
  default:
    return;
  }
}

void retargetTerminator(IRInst &Term, int From, int To) {
  assert(isTerminator(Term.Op) && "not a terminator");
  switch (Term.Op) {
  case IROp::Jump:
    if (Term.Imm == From)
      Term.Imm = To;
    return;
  case IROp::Branch:
  case IROp::SampleCheck:
  case IROp::BurstTransfer:
    if (Term.Imm == From)
      Term.Imm = To;
    if (Term.Aux == From)
      Term.Aux = To;
    return;
  default:
    return;
  }
}

} // namespace ir
} // namespace ars
