//===- examples/custom_instrumentation.cpp - Writing a client -*- C++ -*-===//
///
/// Shows the property the paper emphasizes: "implementors of
/// instrumentation techniques ... can concentrate on developing new
/// techniques quickly and correctly, rather than focusing on minimizing
/// overhead."  We use the two extension clients that ship with the
/// library — basic-block counting and call-argument value profiling — and
/// run them simultaneously with the paper's two instrumentations under a
/// single Full-Duplication transform ("multiple types of instrumentation
/// ... while recompiling the method only once").
///
/// It also demonstrates sparse instrumentation with Partial-Duplication:
/// when only a few blocks carry probes, most duplicated code is removed.
///
//===----------------------------------------------------------------------===//

#include "harness/Experiment.h"
#include "instr/Clients.h"
#include "workloads/Workloads.h"

#include <cstdio>

using namespace ars;

int main() {
  const workloads::Workload *W = workloads::workloadByName("jess");
  harness::BuildResult Build = harness::buildProgram(W->Source);
  if (!Build.Ok) {
    std::fprintf(stderr, "build failed: %s\n", Build.Error.c_str());
    return 1;
  }
  const harness::Program &P = Build.P;
  const int64_t Scale = W->DefaultScale;

  // Four clients at once, one recompilation.
  instr::CallEdgeInstrumentation CallEdges;
  instr::FieldAccessInstrumentation FieldAccesses;
  instr::BlockCountInstrumentation BlockCounts;
  instr::ValueProfileInstrumentation Values;

  harness::ExperimentResult Baseline = harness::runBaseline(P, Scale);

  harness::RunConfig C;
  C.Transform.M = sampling::Mode::FullDuplication;
  C.Clients = {&CallEdges, &FieldAccesses, &BlockCounts, &Values};
  C.Engine.SampleInterval = 500;
  harness::ExperimentResult R = harness::runExperiment(P, Scale, C);
  if (!R.Stats.Ok) {
    std::fprintf(stderr, "run failed: %s\n", R.Stats.Error.c_str());
    return 1;
  }

  std::printf("four instrumentations at once under one transform:\n");
  std::printf("  overhead            : %.2f%% (checks are shared, so it "
              "does not grow per client)\n",
              harness::overheadPct(Baseline, R));
  std::printf("  call edges profiled : %llu\n",
              static_cast<unsigned long long>(R.Profiles.CallEdges.total()));
  std::printf("  field accesses      : %llu\n",
              static_cast<unsigned long long>(
                  R.Profiles.FieldAccesses.total()));
  std::printf("  block count events  : %llu\n",
              static_cast<unsigned long long>(
                  R.Profiles.BlockCounts.total()));
  std::printf("  value samples       : %llu across %zu sites\n",
              static_cast<unsigned long long>(R.Profiles.Values.total()),
              R.Profiles.Values.sites().size());

  // A top value table: can an optimizer specialize on the hot argument?
  for (const auto &[Site, Table] : R.Profiles.Values.sites()) {
    uint64_t Best = 0, Total = 0;
    int64_t BestValue = 0;
    for (const auto &[Value, Count] : Table) {
      Total += Count;
      if (Count > Best) {
        Best = Count;
        BestValue = Value;
      }
    }
    if (Total < 50)
      continue;
    std::printf("  site %llx: hottest arg value %lld (%.0f%% of %llu "
                "samples)\n",
                static_cast<unsigned long long>(Site),
                static_cast<long long>(BestValue),
                100.0 * static_cast<double>(Best) /
                    static_cast<double>(Total),
                static_cast<unsigned long long>(Total));
  }

  // Sparse instrumentation: value profiling only, Partial-Duplication.
  sampling::Options Sparse;
  Sparse.M = sampling::Mode::PartialDuplication;
  harness::InstrumentedProgram Partial =
      harness::instrumentProgram(P, {&Values}, Sparse);
  sampling::Options FullOpts;
  FullOpts.M = sampling::Mode::FullDuplication;
  harness::InstrumentedProgram Full =
      harness::instrumentProgram(P, {&Values}, FullOpts);

  int Kept = 0, Removed = 0;
  for (const sampling::TransformResult &T : Partial.Transforms) {
    Kept += T.Stats.DupBlocksKept;
    Removed += T.Stats.DupBlocksRemoved;
  }
  std::printf("\nsparse client under Partial-Duplication:\n");
  std::printf("  duplicated blocks kept/removed : %d/%d\n", Kept, Removed);
  std::printf("  code size: original %d, Partial %d, Full %d insts\n",
              Partial.CodeSizeBefore, Partial.CodeSizeAfter,
              Full.CodeSizeAfter);
  return 0;
}
