//===- examples/trigger_tuning.cpp - Trigger and rate tuning --*- C++ -*-===//
///
/// The framework is "tunable, allowing the tradeoff between overhead and
/// accuracy to be adjusted easily at runtime".  This example sweeps that
/// tradeoff on one workload and demonstrates the trigger options:
///
///   * counter-based sampling at several intervals (the accuracy/overhead
///     dial),
///   * the timer trigger and its misattribution problem (section 2.1),
///   * randomized interval perturbation (section 4.4's guard against
///     periodicity artifacts),
///   * per-thread counters on the multithreaded workload (section 2.2),
///   * burst sampling (N consecutive loop iterations per sample).
///
//===----------------------------------------------------------------------===//

#include "harness/Experiment.h"
#include "instr/Clients.h"
#include "profile/Overlap.h"
#include "workloads/Workloads.h"

#include <cstdio>

using namespace ars;

int main() {
  const workloads::Workload *W = workloads::workloadByName("mpegaudio");
  harness::BuildResult Build = harness::buildProgram(W->Source);
  if (!Build.Ok) {
    std::fprintf(stderr, "build failed: %s\n", Build.Error.c_str());
    return 1;
  }
  const harness::Program &P = Build.P;
  const int64_t Scale = W->DefaultScale;

  instr::FieldAccessInstrumentation FieldAccesses;
  harness::ExperimentResult Baseline = harness::runBaseline(P, Scale);

  harness::RunConfig Exhaustive;
  Exhaustive.Transform.M = sampling::Mode::Exhaustive;
  Exhaustive.Clients = {&FieldAccesses};
  harness::ExperimentResult Perfect =
      harness::runExperiment(P, Scale, Exhaustive);

  auto report = [&](const char *Label, const harness::ExperimentResult &R) {
    std::printf("%-28s overhead %6.2f%%  samples %8llu  accuracy %5.1f%%\n",
                Label, harness::overheadPct(Baseline, R),
                static_cast<unsigned long long>(R.samplesTaken()),
                profile::overlapPercent(Perfect.Profiles.FieldAccesses,
                                        R.Profiles.FieldAccesses));
  };

  std::printf("overhead/accuracy dial (counter trigger):\n");
  for (int64_t Interval : {10LL, 100LL, 1000LL, 10000LL}) {
    harness::RunConfig C;
    C.Transform.M = sampling::Mode::FullDuplication;
    C.Clients = {&FieldAccesses};
    C.Engine.SampleInterval = Interval;
    char Label[64];
    std::snprintf(Label, sizeof Label, "  interval %lld",
                  static_cast<long long>(Interval));
    report(Label, harness::runExperiment(P, Scale, C));
  }

  std::printf("\ntrigger variants:\n");
  {
    harness::RunConfig C;
    C.Transform.M = sampling::Mode::FullDuplication;
    C.Clients = {&FieldAccesses};
    C.Engine.Trigger = runtime::TriggerKind::Timer;
    C.Engine.TimerPeriodCycles = 50000;
    report("  timer (misattributes)", harness::runExperiment(P, Scale, C));
  }
  {
    harness::RunConfig C;
    C.Transform.M = sampling::Mode::FullDuplication;
    C.Clients = {&FieldAccesses};
    C.Engine.SampleInterval = 1000;
    C.Engine.RandomJitterPct = 25;
    report("  interval 1000 +-25% jitter",
           harness::runExperiment(P, Scale, C));
  }
  {
    harness::RunConfig C;
    C.Transform.M = sampling::Mode::FullDuplication;
    C.Clients = {&FieldAccesses};
    C.Engine.SampleInterval = 1000;
    C.Transform.BurstLength = 16;
    report("  interval 1000, burst 16",
           harness::runExperiment(P, Scale, C));
  }

  std::printf("\nper-thread counters on volano:\n");
  const workloads::Workload *V = workloads::workloadByName("volano");
  harness::BuildResult VB = harness::buildProgram(V->Source);
  harness::ExperimentResult VBase =
      harness::runBaseline(VB.P, V->DefaultScale);
  harness::RunConfig Global, PerThread;
  Global.Transform.M = PerThread.Transform.M =
      sampling::Mode::FullDuplication;
  Global.Clients = PerThread.Clients = {&FieldAccesses};
  Global.Engine.SampleInterval = PerThread.Engine.SampleInterval = 1000;
  PerThread.Engine.PerThreadCounters = true;
  auto GRun = harness::runExperiment(VB.P, V->DefaultScale, Global);
  auto TRun = harness::runExperiment(VB.P, V->DefaultScale, PerThread);
  std::printf("  global counter   : %llu samples, overhead %.2f%%\n",
              static_cast<unsigned long long>(GRun.samplesTaken()),
              harness::overheadPct(VBase, GRun));
  std::printf("  per-thread       : %llu samples, overhead %.2f%%\n",
              static_cast<unsigned long long>(TRun.samplesTaken()),
              harness::overheadPct(VBase, TRun));
  std::printf("  (per-thread counters avoid multiprocessor contention at "
              "the cost of per-thread interval drift)\n");
  return 0;
}
