//===- examples/adaptive_jit.cpp - Online feedback-directed use -*- C++ -*-===//
///
/// The scenario the paper's introduction motivates: an adaptive JIT wants
/// to drive feedback-directed optimization (say, profile-guided inlining)
/// from call-edge profiles collected online.  Exhaustive instrumentation
/// is too slow to leave on; the sampling framework keeps it on all the
/// time at a few percent overhead.
///
/// The example runs three phases over the opt-compiler workload:
///   1. "deployed" baseline (what users see with no profiling),
///   2. exhaustive profiling (the offline approach, large slowdown),
///   3. sampled profiling at several intervals (the online approach),
/// then shows that the sampled profile ranks the same hot call edges an
/// inliner would pick — using the paper's overlap metric plus a simple
/// top-K hot-edge comparison.
///
//===----------------------------------------------------------------------===//

#include "harness/Experiment.h"
#include "instr/Clients.h"
#include "profile/Overlap.h"
#include "adaptive/Controller.h"
#include "workloads/Workloads.h"

#include <algorithm>
#include <cstdio>
#include <vector>

using namespace ars;

namespace {

/// Top-K call edges by count.
std::vector<profile::CallEdgeKey> hotEdges(const profile::CallEdgeProfile &P,
                                           size_t K) {
  std::vector<std::pair<profile::CallEdgeKey, uint64_t>> Edges(
      P.counts().begin(), P.counts().end());
  std::stable_sort(Edges.begin(), Edges.end(), [](auto &A, auto &B) {
    return A.second > B.second;
  });
  std::vector<profile::CallEdgeKey> Hot;
  for (size_t I = 0; I != Edges.size() && I != K; ++I)
    Hot.push_back(Edges[I].first);
  return Hot;
}

size_t intersectionSize(const std::vector<profile::CallEdgeKey> &A,
                        const std::vector<profile::CallEdgeKey> &B) {
  size_t Count = 0;
  for (const profile::CallEdgeKey &K : A)
    if (std::find(B.begin(), B.end(), K) != B.end())
      ++Count;
  return Count;
}

} // namespace

int main() {
  const workloads::Workload *W = workloads::workloadByName("opt-compiler");
  harness::BuildResult Build = harness::buildProgram(W->Source);
  if (!Build.Ok) {
    std::fprintf(stderr, "build failed: %s\n", Build.Error.c_str());
    return 1;
  }
  const harness::Program &P = Build.P;
  const int64_t Scale = W->DefaultScale;

  instr::CallEdgeInstrumentation CallEdges;

  // Phase 1: deployed baseline.
  harness::ExperimentResult Baseline = harness::runBaseline(P, Scale);
  std::printf("phase 1  baseline               : %12llu cycles\n",
              static_cast<unsigned long long>(Baseline.Stats.Cycles));

  // Phase 2: offline-style exhaustive profiling.
  harness::RunConfig Exhaustive;
  Exhaustive.Transform.M = sampling::Mode::Exhaustive;
  Exhaustive.Clients = {&CallEdges};
  harness::ExperimentResult Perfect =
      harness::runExperiment(P, Scale, Exhaustive);
  std::printf("phase 2  exhaustive profiling   : %12llu cycles  "
              "(+%.1f%%)\n",
              static_cast<unsigned long long>(Perfect.Stats.Cycles),
              harness::overheadPct(Baseline, Perfect));

  // Phase 3: online sampling at a range of intervals.
  std::vector<profile::CallEdgeKey> PerfectHot =
      hotEdges(Perfect.Profiles.CallEdges, 5);
  std::printf("\nphase 3  sampled profiling (Full-Duplication):\n");
  std::printf("%10s %12s %10s %12s %14s\n", "interval", "cycles",
              "overhead", "overlap", "top-5 agreement");
  for (int64_t Interval : {10LL, 100LL, 1000LL, 10000LL}) {
    harness::RunConfig C;
    C.Transform.M = sampling::Mode::FullDuplication;
    C.Clients = {&CallEdges};
    C.Engine.SampleInterval = Interval;
    harness::ExperimentResult R = harness::runExperiment(P, Scale, C);
    if (!R.Stats.Ok) {
      std::fprintf(stderr, "run failed: %s\n", R.Stats.Error.c_str());
      return 1;
    }
    double Overlap = profile::overlapPercent(Perfect.Profiles.CallEdges,
                                             R.Profiles.CallEdges);
    size_t Agree =
        intersectionSize(PerfectHot, hotEdges(R.Profiles.CallEdges, 5));
    std::printf("%10lld %12llu %9.1f%% %11.1f%% %11zu/5\n",
                static_cast<long long>(Interval),
                static_cast<unsigned long long>(R.Stats.Cycles),
                harness::overheadPct(Baseline, R), Overlap, Agree);
  }

  std::printf("\nAn online optimizer reading the interval-1000 profile "
              "would inline the same top call edges the exhaustive "
              "profile indicates, at a fraction of the overhead — the "
              "paper's core pitch.\n");

  // Phase 4: close the loop with the adaptive controller — sampled
  // profiles pick hot methods, which get "recompiled" for the next run.
  adaptive::ControllerConfig Config;
  Config.SampleInterval = 1000;
  Config.HotThresholdPct = 5.0;
  Config.MaxOptimized = 3;
  adaptive::AdaptiveOutcome Out =
      adaptive::runAdaptiveScenario(P, Scale, Config);
  if (!Out.Ok) {
    std::fprintf(stderr, "controller failed: %s\n", Out.Error.c_str());
    return 1;
  }
  std::printf("\nphase 4  adaptive controller:\n");
  std::printf("  profiling overhead : %.2f%% (exhaustive would cost "
              "%.2f%%)\n",
              Out.profilingOverheadPct(),
              100.0 * (static_cast<double>(Out.ExhaustiveRunCycles) /
                           static_cast<double>(Out.BaselineCycles) -
                       1.0));
  std::printf("  hot methods chosen :");
  for (int F : Out.HotFunctions)
    std::printf(" %s", P.M.functionAt(F).Name.c_str());
  std::printf("\n  deployed speedup   : %.2f%% after recompilation\n",
              Out.speedupPct());
  return 0;
}
