//===- examples/quickstart.cpp - Five-minute tour -------------*- C++ -*-===//
///
/// The shortest end-to-end use of the library:
///   1. compile a MiniJ program,
///   2. attach the two instrumentations,
///   3. apply Full-Duplication,
///   4. run with counter-based sampling,
///   5. read the profiles and the overhead.
///
/// Also dumps the transformed CFG of one function — the textual analogue
/// of the paper's Figure 2 (checking code, duplicated code, checks on
/// entry and backedges, duplicated backedges returning to checking code).
///
//===----------------------------------------------------------------------===//

#include "harness/Experiment.h"
#include "instr/Clients.h"
#include "ir/IRPrinter.h"
#include "profile/Profiles.h"

#include <cstdio>

using namespace ars;

static const char *Source = R"(
  class Stats { int hits; int misses; }

  int lookup(int[] table, Stats st, int key) {
    int slot = key % len(table);
    if (table[slot] == key) { st.hits = st.hits + 1; return 1; }
    st.misses = st.misses + 1;
    table[slot] = key;
    return 0;
  }

  int main(int n) {
    int[] table = new int[64];
    Stats st = new Stats;
    int seed = 1;
    int found = 0;
    for (int i = 0; i < n; i = i + 1) {
      seed = (seed * 1103515245 + 12345) & 2147483647;
      found = found + lookup(table, st, seed & 255);
    }
    return found;
  }
)";

int main() {
  // 1. Compile MiniJ -> bytecode -> CFG IR.
  harness::BuildResult Build = harness::buildProgram(Source);
  if (!Build.Ok) {
    std::fprintf(stderr, "build failed: %s\n", Build.Error.c_str());
    return 1;
  }
  const harness::Program &P = Build.P;

  // 2.+3. Instrument with both clients and apply Full-Duplication.
  instr::CallEdgeInstrumentation CallEdges;
  instr::FieldAccessInstrumentation FieldAccesses;

  harness::RunConfig Config;
  Config.Transform.M = sampling::Mode::FullDuplication;
  Config.Clients = {&CallEdges, &FieldAccesses};
  Config.Engine.SampleInterval = 100; // one sample per 100 checks

  // 4. Run, plus a baseline for the overhead comparison.
  harness::ExperimentResult Baseline = harness::runBaseline(P, 20000);
  harness::ExperimentResult Sampled =
      harness::runExperiment(P, 20000, Config);
  if (!Sampled.Stats.Ok) {
    std::fprintf(stderr, "run failed: %s\n", Sampled.Stats.Error.c_str());
    return 1;
  }

  // 5. Results.
  std::printf("result (must match baseline): %lld vs %lld\n",
              static_cast<long long>(Sampled.Stats.MainResult),
              static_cast<long long>(Baseline.Stats.MainResult));
  std::printf("cycles: baseline %llu, sampled %llu  => overhead %.2f%%\n",
              static_cast<unsigned long long>(Baseline.Stats.Cycles),
              static_cast<unsigned long long>(Sampled.Stats.Cycles),
              harness::overheadPct(Baseline, Sampled));
  std::printf("checks executed: %llu, samples taken: %llu\n",
              static_cast<unsigned long long>(Sampled.Stats.CheckExecs),
              static_cast<unsigned long long>(Sampled.Stats.SamplesTaken));

  std::printf("\nsampled call-edge profile:\n%s",
              profile::dumpCallEdges(P.M, Sampled.Profiles.CallEdges,
                                     /*TopK=*/8)
                  .c_str());
  std::printf("\nsampled field-access profile:\n%s",
              profile::dumpFieldAccesses(P.M,
                                         Sampled.Profiles.FieldAccesses)
                  .c_str());

  // Figure-2-style CFG dump of the transformed lookup().
  sampling::Options Opts;
  Opts.M = sampling::Mode::FullDuplication;
  harness::InstrumentedProgram IP =
      harness::instrumentProgram(P, {&CallEdges, &FieldAccesses}, Opts);
  const bytecode::FunctionDef *Lookup = P.M.functionByName("lookup");
  std::printf("\ntransformed CFG of lookup() — checking code, duplicated "
              "code, checks:\n%s",
              ir::printFunction(IP.Funcs[Lookup->FuncId]).c_str());
  return 0;
}
