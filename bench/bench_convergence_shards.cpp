//===- bench/bench_convergence_shards.cpp - Merged-shard accuracy -*- C++ -*-===//
///
/// A claim section 4.4 of the paper implies but never measures: because
/// counter-based sampling is proportional, *independent* sampled runs see
/// independent slices of the event stream, so merging N of them should
/// converge toward the exhaustive profile's distribution — the overlap%
/// of merged-N-shards vs. the perfect profile rises with N.
///
/// Setup per workload: one exhaustive run (perfect profile) plus N
/// sampled shards at one interval, each shard decorrelated by the
/// DCPI-style jitter trigger with a distinct deterministic seed (without
/// jitter, identical deterministic runs would merge into a scaled copy
/// of themselves and N would buy nothing).  Shards run through the
/// ParallelRunner (--jobs fans them out); the table reports the overlap%
/// of merging N of them, averaged over every cyclic rotation of the
/// shard order (merge is commutative), for N = 1, 2, 4, 8, 16.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "profile/Overlap.h"
#include "profstore/ProfileAggregator.h"
#include "profstore/ProfileStore.h"

#include <cstdio>

using namespace ars;

int main(int Argc, char **Argv) {
  bench::Context Ctx(Argc, Argv);
  bench::printBanner("Shard-merge convergence",
                     "new experiment: overlap%% of merged-N sampled "
                     "shards vs. the exhaustive profile (section 4.4's "
                     "implied claim)");

  constexpr int NumShards = 16;
  const std::vector<std::string> Names = {"javac", "jess", "db"};
  const std::vector<int> ReportAt = {1, 2, 4, 8, 16};

  // Phase 1: exhaustive (perfect) profiles.  The shard interval is
  // derived from each workload's event volume so a shard takes a few
  // hundred samples at any --scale — a fixed interval would leave small
  // workloads with single-digit sample counts and pure noise.
  std::vector<bench::NamedCell> PerfectCells;
  for (const std::string &Name : Names) {
    harness::RunConfig Perfect;
    Perfect.Transform.M = sampling::Mode::Exhaustive;
    Perfect.Clients = bench::bothClients();
    PerfectCells.emplace_back(Name, Perfect);
  }
  std::vector<harness::ExperimentResult> Perfects = Ctx.runAll(PerfectCells);

  support::TablePrinter T({"Workload", "Interval", "N=1 (%)", "N=2 (%)",
                           "N=4 (%)", "N=8 (%)", "N=16 (%)",
                           "Merged events"});
  bool Improves = true;
  bool Monotone = true;
  for (size_t W = 0; W != Names.size(); ++W) {
    const profile::CallEdgeProfile &Exhaustive =
        Perfects[W].Profiles.CallEdges;
    int64_t Interval = static_cast<int64_t>(Exhaustive.total() / 50);
    if (Interval < 37)
      Interval = 37;

    // Phase 2: N decorrelated shards at that interval.
    std::vector<bench::NamedCell> Cells;
    for (int S = 0; S != NumShards; ++S) {
      harness::RunConfig Shard;
      Shard.Transform.M = sampling::Mode::FullDuplication;
      Shard.Clients = bench::bothClients();
      Shard.Engine.SampleInterval = Interval;
      Shard.Engine.RandomJitterPct = 40;
      Shard.Engine.RandomSeed = 0x415253 + static_cast<uint64_t>(S) * 977;
      Cells.emplace_back(Names[W], Shard);
    }
    std::vector<harness::ExperimentResult> Results = Ctx.runAll(Cells);

    T.beginRow();
    T.cell(Names[W]);
    T.cellInt(Interval);
    // One cumulative ordering is a single noisy realization (a lucky
    // first shard can start near saturation).  Merging is commutative,
    // so average each N over all cyclic rotations of the shard order —
    // that estimates the *expected* overlap of merging N shards.
    double First = -1.0, Prev = -1.0;
    uint64_t MergedEvents = 0;
    for (int N : ReportAt) {
      double Sum = 0.0;
      for (int R = 0; R != NumShards; ++R) {
        profile::ProfileBundle Merged;
        for (int S = 0; S != N; ++S)
          profstore::mergeBundle(Merged,
                                 Results[(R + S) % NumShards].Profiles);
        Sum += profile::overlapPercent(Exhaustive, Merged.CallEdges);
        if (N == NumShards) {
          MergedEvents = Merged.CallEdges.total();
          break; // all rotations merge the same 16 shards
        }
      }
      double Overlap = N == NumShards ? Sum : Sum / NumShards;
      Ctx.report().addSimMetric("overlap_pct." + Names[W] + ".n" +
                                    std::to_string(N),
                                "pct",
                                telemetry::Direction::HigherIsBetter,
                                Overlap);
      T.cellPercent(Overlap);
      if (First < 0)
        First = Overlap;
      // Residual dips are sampling noise; a real regression is bigger
      // than half a percentage point.
      if (Overlap < Prev - 0.5)
        Monotone = false;
      Prev = Overlap;
    }
    if (Prev <= First)
      Improves = false;
    T.cellInt(static_cast<int64_t>(MergedEvents));
  }
  T.print();
  std::printf("\ncall-edge overlap%% of the cumulative shard merge vs. the "
              "exhaustive profile.\nVerdict: merged-16 %s merged-1 on "
              "every workload, %s.\n",
              Improves ? "improves on" : "does NOT improve on (!)",
              Monotone ? "with no step regressing by more than noise "
                         "(0.5pp)"
                       : "but some step regressed by more than 0.5pp (!)");
  return Improves && Monotone ? 0 : 1;
}
