//===- bench/bench_dispatch.cpp - dispatch + coalescing microbench --------===//
///
/// Framework-engineering bench (no paper table): measures the two engine
/// optimizations this repo adds on top of the paper's design.
///
///  * Host half: interpreter throughput of the computed-goto threaded
///    loop vs the portable switch loop on an engine-bound workload
///    (`engine_ops_per_sec`, `engine_ops_per_sec_switch`, and their
///    ratio `dispatch_speedup`).  Host wall-clock numbers are
///    machine-dependent and therefore informational in CI.
///
///  * Sim half: what the check-coalescing / loop-hoisting transform pass
///    saves under No-Duplication with sampling off — the configuration
///    where every surviving guard is pure overhead.  These numbers come
///    from the deterministic cycle model, so `checks_coalesced`,
///    `checks_hoisted`, and `check_cycles_saved` are gated through
///    perfgate: a change that silently stops the pass from firing shows
///    up as those metrics collapsing to zero.
///
/// The bench self-checks the sim half (coalesced runs must cost strictly
/// fewer simulated cycles and match the plain runs' results) and exits
/// nonzero on violation, so the nightly full-scale run re-proves the
/// invariant even before perfgate diffs the numbers.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "harness/Pipeline.h"

#include <cstdio>

using namespace ars;

namespace {

/// Per-rep interpreter throughput: same deterministic instruction count
/// every run, divided by that rep's wall time.
std::vector<double> opsPerSec(uint64_t Instructions,
                              const std::vector<double> &Ms) {
  std::vector<double> Ops;
  Ops.reserve(Ms.size());
  for (double M : Ms)
    Ops.push_back(M > 0.0 ? static_cast<double>(Instructions) / (M / 1e3)
                          : 0.0);
  return Ops;
}

} // namespace

int main(int Argc, char **Argv) {
  bench::Context Ctx(Argc, Argv);
  bench::printBanner("Dispatch and check-coalescing microbench",
                     "framework engineering (no paper table)");
  telemetry::BenchReport &Rep = Ctx.report();

  // ---- Host half: threaded vs switch interpreter throughput. --------
  // compress is the most engine-bound workload (tight loops, few calls),
  // so dispatch overhead dominates its runtime.
  const std::string Hot = "compress";
  const workloads::Workload *HotW = nullptr;
  for (const workloads::Workload &W : Ctx.suite())
    if (Hot == W.Name)
      HotW = &W;
  if (!HotW) {
    std::fprintf(stderr, "bench_dispatch: workload %s missing from suite\n",
                 Hot.c_str());
    return 1;
  }
  const harness::Program &P = Ctx.program(Hot);
  int64_t Scale = Ctx.scaleOf(*HotW);

  harness::RunConfig HotC;
  HotC.Transform.M = sampling::Mode::FullDuplication;
  HotC.Engine.SampleInterval = 31;
  HotC.Clients = bench::bothClients();
  // Instrument once outside the timed region: the host metric is
  // interpreter throughput, not transform time.
  harness::InstrumentedProgram IP =
      harness::instrumentProgram(P, HotC.Clients, HotC.Transform);

  auto TimeMode = [&](runtime::DispatchMode D) {
    harness::RunConfig C = HotC;
    C.Engine.Dispatch = D;
    harness::ExperimentResult Warm = harness::runInstrumented(P, IP, Scale, C);
    if (!Warm.Stats.Ok) {
      std::fprintf(stderr, "bench_dispatch: %s run failed: %s\n", Hot.c_str(),
                   Warm.Stats.Error.c_str());
      std::exit(1);
    }
    std::vector<double> Ms = bench::timeRepsMs(Ctx.reps(), [&] {
      harness::runInstrumented(P, IP, Scale, C);
    });
    return std::make_pair(Warm.Stats.Instructions, Ms);
  };

  auto [Insts, ThreadedMs] = TimeMode(runtime::DispatchMode::Threaded);
  auto SwitchTimed = TimeMode(runtime::DispatchMode::Switch);
  const std::vector<double> &SwitchMs = SwitchTimed.second;

  std::vector<double> ThreadedOps = opsPerSec(Insts, ThreadedMs);
  std::vector<double> SwitchOps = opsPerSec(Insts, SwitchMs);
  // Pairwise per-rep speedups give addHostMetric a real sample vector
  // (min/median/MAD) instead of a single derived ratio.
  std::vector<double> Speedups;
  for (size_t I = 0; I != ThreadedMs.size() && I != SwitchMs.size(); ++I)
    if (ThreadedMs[I] > 0.0)
      Speedups.push_back(SwitchMs[I] / ThreadedMs[I]);

  support::TablePrinter Host({"Dispatch", "Median ms", "Mops/s"});
  Host.beginRow();
  Host.cell(runtime::threadedDispatchCompiled() ? "threaded (computed goto)"
                                                : "threaded (fallback=switch)");
  Host.cellDouble(telemetry::median(ThreadedMs));
  Host.cellDouble(telemetry::median(ThreadedOps) / 1e6);
  Host.beginRow();
  Host.cell("switch");
  Host.cellDouble(telemetry::median(SwitchMs));
  Host.cellDouble(telemetry::median(SwitchOps) / 1e6);
  Host.print();
  std::printf("Speedup (switch ms / threaded ms, median of %zu reps): "
              "%.2fx on %s (%llu instructions/run)\n\n",
              Speedups.size(), telemetry::median(Speedups), Hot.c_str(),
              static_cast<unsigned long long>(Insts));

  Rep.addHostMetric("engine_ops_per_sec", "ops/s",
                    telemetry::Direction::HigherIsBetter, ThreadedOps);
  Rep.addHostMetric("engine_ops_per_sec_switch", "ops/s",
                    telemetry::Direction::HigherIsBetter, SwitchOps);
  Rep.addHostMetric("dispatch_speedup", "x", telemetry::Direction::Info,
                    Speedups);

  // ---- Sim half: coalescing savings under No-Duplication. ------------
  // Sampling off (interval 0) makes every surviving guard pure cost;
  // coalescing + hoisting must cut simulated cycles without changing any
  // result.
  harness::RunConfig Plain;
  Plain.Transform.M = sampling::Mode::NoDuplication;
  Plain.Engine.SampleInterval = 0;
  Plain.Clients = bench::bothClients();
  harness::RunConfig Coal = Plain;
  Coal.Transform.CoalesceChecks = true;
  Coal.Transform.HoistLoopProbes = true;

  std::vector<bench::NamedCell> Cells;
  for (const workloads::Workload &W : Ctx.suite()) {
    Cells.emplace_back(W.Name, Plain);
    Cells.emplace_back(W.Name, Coal);
  }
  std::vector<harness::ExperimentResult> Runs = Ctx.runAll(Cells);

  int64_t Coalesced = 0, Hoisted = 0, ProbesHoisted = 0, ProbesDropped = 0;
  uint64_t PlainCycles = 0, CoalCycles = 0;
  uint64_t PlainGuards = 0, CoalGuards = 0;
  support::TablePrinter Sim({"Benchmark", "Coalesced", "Hoisted",
                             "Guard execs (plain/coal)", "Cycles saved (%)"});
  for (size_t WI = 0; WI != Ctx.suite().size(); ++WI) {
    const workloads::Workload &W = Ctx.suite()[WI];
    const harness::ExperimentResult &RP = Runs[2 * WI];
    const harness::ExperimentResult &RC = Runs[2 * WI + 1];
    if (RP.Stats.MainResult != RC.Stats.MainResult ||
        RC.Stats.Cycles > RP.Stats.Cycles) {
      std::fprintf(stderr,
                   "bench_dispatch: coalescing broke %s (result %lld vs "
                   "%lld, cycles %llu vs %llu)\n",
                   W.Name, static_cast<long long>(RP.Stats.MainResult),
                   static_cast<long long>(RC.Stats.MainResult),
                   static_cast<unsigned long long>(RP.Stats.Cycles),
                   static_cast<unsigned long long>(RC.Stats.Cycles));
      return 1;
    }

    harness::InstrumentedProgram CIP = harness::instrumentProgram(
        Ctx.program(W.Name), Coal.Clients, Coal.Transform);
    int64_t WCoalesced = 0, WHoisted = 0;
    for (const sampling::TransformResult &T : CIP.Transforms) {
      WCoalesced += T.Stats.ChecksCoalesced;
      WHoisted += T.Stats.ChecksHoisted;
      ProbesHoisted += T.Stats.ProbesHoisted;
      ProbesDropped += T.Stats.ProbesDropped;
    }
    Coalesced += WCoalesced;
    Hoisted += WHoisted;
    PlainCycles += RP.Stats.Cycles;
    CoalCycles += RC.Stats.Cycles;
    PlainGuards += RP.Stats.GuardedProbeExecs;
    CoalGuards += RC.Stats.GuardedProbeExecs;

    Sim.beginRow();
    Sim.cell(W.Name);
    Sim.cellInt(WCoalesced);
    Sim.cellInt(WHoisted);
    Sim.cell(support::formatString(
        "%llu/%llu",
        static_cast<unsigned long long>(RP.Stats.GuardedProbeExecs),
        static_cast<unsigned long long>(RC.Stats.GuardedProbeExecs)));
    Sim.cellPercent(RP.Stats.Cycles
                        ? 100.0 *
                              static_cast<double>(RP.Stats.Cycles -
                                                  RC.Stats.Cycles) /
                              static_cast<double>(RP.Stats.Cycles)
                        : 0.0);
  }
  Sim.print();

  if (CoalCycles >= PlainCycles || Coalesced <= 0 || Hoisted <= 0) {
    std::fprintf(stderr,
                 "bench_dispatch: coalescing must save cycles on the suite "
                 "and fire on loop-heavy workloads (coalesced=%lld "
                 "hoisted=%lld cycles %llu -> %llu)\n",
                 static_cast<long long>(Coalesced),
                 static_cast<long long>(Hoisted),
                 static_cast<unsigned long long>(PlainCycles),
                 static_cast<unsigned long long>(CoalCycles));
    return 1;
  }
  std::printf("\nSuite totals: %lld checks coalesced, %lld checks hoisted "
              "(%lld probes moved, %lld dead probes dropped); guard execs "
              "%llu -> %llu; %llu simulated cycles saved (%.1f%%).\n",
              static_cast<long long>(Coalesced),
              static_cast<long long>(Hoisted),
              static_cast<long long>(ProbesHoisted),
              static_cast<long long>(ProbesDropped),
              static_cast<unsigned long long>(PlainGuards),
              static_cast<unsigned long long>(CoalGuards),
              static_cast<unsigned long long>(PlainCycles - CoalCycles),
              100.0 * static_cast<double>(PlainCycles - CoalCycles) /
                  static_cast<double>(PlainCycles));

  Rep.addSimMetric("checks_coalesced", "checks",
                   telemetry::Direction::HigherIsBetter,
                   static_cast<double>(Coalesced));
  Rep.addSimMetric("checks_hoisted", "checks",
                   telemetry::Direction::HigherIsBetter,
                   static_cast<double>(Hoisted));
  Rep.addSimMetric("check_cycles_saved", "cycles",
                   telemetry::Direction::HigherIsBetter,
                   static_cast<double>(PlainCycles - CoalCycles));
  Rep.addSimMetric("guard_execs_saved", "execs",
                   telemetry::Direction::HigherIsBetter,
                   static_cast<double>(PlainGuards - CoalGuards));
  Rep.addSimMetric("probes_hoisted", "probes", telemetry::Direction::Info,
                   static_cast<double>(ProbesHoisted));
  return 0;
}
