//===- bench/bench_ablation_variants.cpp ----------------------*- C++ -*-===//
///
/// Ablation across the framework variants (section 3, not evaluated as a
/// table in the paper): for dense (both clients) and sparse (call-edge
/// only) instrumentation, compare Full-, Partial- and No-Duplication on
/// space (code-size increase), dynamic checks executed, framework
/// overhead, and accuracy at interval 1000.  Validates the paper's 3.1/3.2
/// claims: Partial never exceeds Full in space or dynamic checks;
/// No-Duplication wins exactly when instrumentation is sparse relative to
/// entries+backedges.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "profile/Overlap.h"

#include <cstdio>

using namespace ars;

namespace {

void runSet(bench::Context &Ctx, const char *Label,
            const std::vector<const instr::Instrumentation *> &Clients) {
  std::printf("\n--- %s instrumentation ---\n", Label);
  support::TablePrinter T({"Variant", "Space Increase (%)",
                           "Dynamic Checks (M)", "Framework Overhead (%)",
                           "Accuracy@1000 (%)"});

  for (sampling::Mode Mode : {sampling::Mode::FullDuplication,
                              sampling::Mode::PartialDuplication,
                              sampling::Mode::Combined,
                              sampling::Mode::NoDuplication}) {
    double SpaceSum = 0, ChecksSum = 0, OverheadSum = 0, AccSum = 0;
    for (const workloads::Workload &W : Ctx.suite()) {
      harness::RunConfig Perfect;
      Perfect.Transform.M = sampling::Mode::Exhaustive;
      Perfect.Clients = Clients;
      auto PerfectRun = Ctx.runConfig(W.Name, Perfect);

      harness::RunConfig Framework;
      Framework.Transform.M = Mode;
      Framework.Clients = Clients;
      Framework.Engine.SampleInterval = 0;
      auto FrameworkRun = Ctx.runConfig(W.Name, Framework);

      harness::RunConfig Sampled = Framework;
      Sampled.Engine.SampleInterval = 1000;
      auto SampledRun = Ctx.runConfig(W.Name, Sampled);

      SpaceSum += support::percentOver(
          static_cast<double>(FrameworkRun.CodeSizeBefore),
          static_cast<double>(FrameworkRun.CodeSizeAfter));
      ChecksSum +=
          static_cast<double>(FrameworkRun.checksExecuted()) / 1.0e6;
      OverheadSum += Ctx.overheadPct(W.Name, FrameworkRun);
      AccSum += profile::overlapPercent(PerfectRun.Profiles.CallEdges,
                                        SampledRun.Profiles.CallEdges);
    }
    double N = static_cast<double>(Ctx.suite().size());
    T.beginRow();
    T.cell(sampling::modeName(Mode));
    T.cellPercent(SpaceSum / N);
    T.cellDouble(ChecksSum / N, 3);
    T.cellPercent(OverheadSum / N);
    T.cellPercent(AccSum / N);
  }
  T.print();
}

} // namespace

int main(int Argc, char **Argv) {
  bench::Context Ctx(Argc, Argv);
  bench::printBanner("Ablation: Full vs Partial vs No duplication",
                     "Section 3 design discussion (3.1, 3.2)");

  runSet(Ctx, "dense (call-edge + field-access)", bench::bothClients());
  runSet(Ctx, "sparse (call-edge only)", {&bench::callEdgeClient()});

  std::printf("\nExpected shape: Partial matches Full's accuracy with less "
              "space, and strictly less space for sparse instrumentation; "
              "No-Duplication has no space cost but its checking overhead "
              "explodes for dense instrumentation.\n");
  return 0;
}
