//===- bench/bench_ablation_variants.cpp ----------------------*- C++ -*-===//
///
/// Ablation across the framework variants (section 3, not evaluated as a
/// table in the paper): for dense (both clients) and sparse (call-edge
/// only) instrumentation, compare Full-, Partial- and No-Duplication on
/// space (code-size increase), dynamic checks executed, framework
/// overhead, and accuracy at interval 1000.  Validates the paper's 3.1/3.2
/// claims: Partial never exceeds Full in space or dynamic checks;
/// No-Duplication wins exactly when instrumentation is sparse relative to
/// entries+backedges.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "profile/Overlap.h"

#include <cstdio>

using namespace ars;

namespace {

void runSet(bench::Context &Ctx, const char *Label, const char *Key,
            const std::vector<const instr::Instrumentation *> &Clients) {
  std::printf("\n--- %s instrumentation ---\n", Label);
  support::TablePrinter T({"Variant", "Space Increase (%)",
                           "Dynamic Checks (M)", "Framework Overhead (%)",
                           "Accuracy@1000 (%)"});

  const std::vector<sampling::Mode> Modes = {
      sampling::Mode::FullDuplication, sampling::Mode::PartialDuplication,
      sampling::Mode::Combined, sampling::Mode::NoDuplication};
  const size_t NW = Ctx.suite().size();

  // One matrix per set: a shared perfect-profile cell per workload, then
  // (framework, sampled@1000) per mode x workload.  Fanned out over
  // --jobs workers; results come back in cell order.
  std::vector<bench::NamedCell> Cells;
  for (const workloads::Workload &W : Ctx.suite()) {
    harness::RunConfig Perfect;
    Perfect.Transform.M = sampling::Mode::Exhaustive;
    Perfect.Clients = Clients;
    Cells.emplace_back(W.Name, Perfect);
  }
  for (sampling::Mode Mode : Modes) {
    for (const workloads::Workload &W : Ctx.suite()) {
      harness::RunConfig Framework;
      Framework.Transform.M = Mode;
      Framework.Clients = Clients;
      Framework.Engine.SampleInterval = 0;
      Cells.emplace_back(W.Name, Framework);

      harness::RunConfig Sampled = Framework;
      Sampled.Engine.SampleInterval = 1000;
      Cells.emplace_back(W.Name, Sampled);
    }
  }
  auto Results = Ctx.runAll(Cells);

  for (size_t M = 0; M != Modes.size(); ++M) {
    double SpaceSum = 0, ChecksSum = 0, OverheadSum = 0, AccSum = 0;
    for (size_t WI = 0; WI != NW; ++WI) {
      const workloads::Workload &W = Ctx.suite()[WI];
      const auto &PerfectRun = Results[WI];
      const auto &FrameworkRun = Results[NW + (M * NW + WI) * 2];
      const auto &SampledRun = Results[NW + (M * NW + WI) * 2 + 1];

      SpaceSum += support::percentOver(
          static_cast<double>(FrameworkRun.CodeSizeBefore),
          static_cast<double>(FrameworkRun.CodeSizeAfter));
      ChecksSum +=
          static_cast<double>(FrameworkRun.checksExecuted()) / 1.0e6;
      OverheadSum += Ctx.overheadPct(W.Name, FrameworkRun);
      AccSum += profile::overlapPercent(PerfectRun.Profiles.CallEdges,
                                        SampledRun.Profiles.CallEdges);
    }
    double N = static_cast<double>(NW);
    T.beginRow();
    T.cell(sampling::modeName(Modes[M]));
    T.cellPercent(SpaceSum / N);
    T.cellDouble(ChecksSum / N, 3);
    T.cellPercent(OverheadSum / N);
    T.cellPercent(AccSum / N);

    telemetry::BenchReport &Rep = Ctx.report();
    const std::string Suffix =
        std::string(Key) + "." + sampling::modeName(Modes[M]);
    Rep.addSimMetric("space_pct." + Suffix, "pct",
                     telemetry::Direction::LowerIsBetter, SpaceSum / N);
    Rep.addSimMetric("dynamic_checks_m." + Suffix, "Mchecks",
                     telemetry::Direction::LowerIsBetter, ChecksSum / N);
    Rep.addSimMetric("framework_pct." + Suffix, "pct",
                     telemetry::Direction::LowerIsBetter, OverheadSum / N);
    Rep.addSimMetric("acc_pct_i1000." + Suffix, "pct",
                     telemetry::Direction::HigherIsBetter, AccSum / N);
  }
  T.print();
}

} // namespace

int main(int Argc, char **Argv) {
  bench::Context Ctx(Argc, Argv);
  bench::printBanner("Ablation: Full vs Partial vs No duplication",
                     "Section 3 design discussion (3.1, 3.2)");

  Ctx.prefetchBaselines();
  runSet(Ctx, "dense (call-edge + field-access)", "dense",
         bench::bothClients());
  runSet(Ctx, "sparse (call-edge only)", "sparse",
         {&bench::callEdgeClient()});

  std::printf("\nExpected shape: Partial matches Full's accuracy with less "
              "space, and strictly less space for sparse instrumentation; "
              "No-Duplication has no space cost but its checking overhead "
              "explodes for dense instrumentation.\n");
  return 0;
}
