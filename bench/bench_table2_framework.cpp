//===- bench/bench_table2_framework.cpp -----------------------*- C++ -*-===//
///
/// Table 2: overhead of the Full-Duplication framework itself — no
/// samples are taken (infinite interval) and no instrumentation is
/// inserted.  Columns: total framework overhead, the backedge-only and
/// entry-only check breakdown (checks inserted without duplicating any
/// code, the paper's footnote-2 configuration), maximum space increase,
/// and compile-time increase.  Paper averages: 4.9% total (backedges 3.5%,
/// entries 1.3%), space roughly doubles, compile time +34%.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "support/Support.h"

#include <algorithm>
#include <cstdio>

using namespace ars;

int main(int Argc, char **Argv) {
  bench::Context Ctx(Argc, Argv);
  bench::printBanner("Table 2: Full-Duplication framework overhead",
                     "Table 2 (section 4.3)");

  support::TablePrinter T({"Benchmark", "Total Framework Overhead (%)",
                           "Backedges (%)", "Method Entry (%)",
                           "Space Increase (insts)",
                           "Compile Time Increase (%)"});
  std::vector<double> Totals, Backs, Entries, CompileIncreases;
  int64_t TotalSpace = 0;

  // Three simulated cells per workload (full framework, backedge-only
  // checks, entry-only checks) fanned out over --jobs workers.  The
  // compile-time column measures host wall-clock, so those transform
  // batches stay serial below — timing inside a loaded pool would skew it.
  Ctx.prefetchBaselines();
  std::vector<bench::NamedCell> Cells;
  for (const workloads::Workload &W : Ctx.suite()) {
    // Full framework, never sampling.
    harness::RunConfig Full;
    Full.Transform.M = sampling::Mode::FullDuplication;
    Cells.emplace_back(W.Name, Full);

    // Breakdown: checks inserted independently, no duplication (this
    // configuration cannot sample; it isolates the direct check cost).
    harness::RunConfig BackOnly;
    BackOnly.Transform.M = sampling::Mode::FullDuplication;
    BackOnly.Transform.DuplicateCode = false;
    BackOnly.Transform.EntryChecks = false;
    Cells.emplace_back(W.Name, BackOnly);

    harness::RunConfig EntryOnly;
    EntryOnly.Transform.M = sampling::Mode::FullDuplication;
    EntryOnly.Transform.DuplicateCode = false;
    EntryOnly.Transform.BackedgeChecks = false;
    Cells.emplace_back(W.Name, EntryOnly);
  }
  auto Results = Ctx.runAll(Cells);

  for (size_t WI = 0; WI != Ctx.suite().size(); ++WI) {
    const workloads::Workload &W = Ctx.suite()[WI];
    const auto &FullRun = Results[WI * 3];
    double TotalPct = Ctx.overheadPct(W.Name, FullRun);
    double BackPct = Ctx.overheadPct(W.Name, Results[WI * 3 + 1]);
    double EntryPct = Ctx.overheadPct(W.Name, Results[WI * 3 + 2]);

    // Space: instruction-count increase of the transformed code.
    int SpaceIncrease = FullRun.CodeSizeAfter - FullRun.CodeSizeBefore;
    TotalSpace += SpaceIncrease;

    // Compile time: host milliseconds for the transform phase with
    // duplication vs. the baseline transform.  Both are microseconds per
    // function, so measure --reps batches of each; the table keeps the
    // fastest batch (minimum-of-N rejects scheduler noise) while the
    // telemetry report gets every batch so the perf gate can scale its
    // threshold to the measured jitter.
    const harness::Program &P = Ctx.program(W.Name);
    auto timeTransforms = [&P, &Ctx](sampling::Mode M) {
      sampling::Options Opts;
      Opts.M = M;
      harness::instrumentProgram(P, {}, Opts); // warm-up
      return bench::timeRepsMs(Ctx.reps(), [&] {
        for (int I = 0; I != 60; ++I)
          harness::instrumentProgram(P, {}, Opts);
      });
    };
    std::vector<double> BaseMs = timeTransforms(sampling::Mode::Baseline);
    std::vector<double> FullMs =
        timeTransforms(sampling::Mode::FullDuplication);
    double CompilePct = support::percentOver(
        *std::min_element(BaseMs.begin(), BaseMs.end()),
        *std::min_element(FullMs.begin(), FullMs.end()));
    std::vector<double> CompilePctSamples;
    for (size_t B = 0; B != BaseMs.size() && B != FullMs.size(); ++B)
      CompilePctSamples.push_back(support::percentOver(BaseMs[B],
                                                       FullMs[B]));
    Ctx.report().addHostMetric("compile_time_pct." + std::string(W.Name),
                               "pct", telemetry::Direction::LowerIsBetter,
                               CompilePctSamples);

    telemetry::BenchReport &Rep = Ctx.report();
    const std::string Name = W.Name;
    Rep.addSimMetric("framework_total_pct." + Name, "pct",
                     telemetry::Direction::LowerIsBetter, TotalPct);
    Rep.addSimMetric("backedge_pct." + Name, "pct",
                     telemetry::Direction::LowerIsBetter, BackPct);
    Rep.addSimMetric("entry_pct." + Name, "pct",
                     telemetry::Direction::LowerIsBetter, EntryPct);
    Rep.addSimMetric("space_increase_insts." + Name, "insts",
                     telemetry::Direction::LowerIsBetter, SpaceIncrease);

    T.beginRow();
    T.cell(W.Name);
    T.cellPercent(TotalPct);
    T.cellPercent(BackPct);
    T.cellPercent(EntryPct);
    T.cellInt(SpaceIncrease);
    T.cellPercent(CompilePct);
    Totals.push_back(TotalPct);
    Backs.push_back(BackPct);
    Entries.push_back(EntryPct);
    CompileIncreases.push_back(CompilePct);
  }

  T.beginRow();
  T.cell("Average");
  T.cellPercent(bench::meanOf(Totals));
  T.cellPercent(bench::meanOf(Backs));
  T.cellPercent(bench::meanOf(Entries));
  T.cellInt(TotalSpace / static_cast<int64_t>(Ctx.suite().size()));
  T.cellPercent(bench::meanOf(CompileIncreases));
  T.print();

  telemetry::BenchReport &Rep = Ctx.report();
  Rep.addSimMetric("framework_total_pct.avg", "pct",
                   telemetry::Direction::LowerIsBetter,
                   bench::meanOf(Totals));
  Rep.addSimMetric("backedge_pct.avg", "pct",
                   telemetry::Direction::LowerIsBetter,
                   bench::meanOf(Backs));
  Rep.addSimMetric("entry_pct.avg", "pct",
                   telemetry::Direction::LowerIsBetter,
                   bench::meanOf(Entries));
  Rep.addSimMetric("space_increase_insts.avg", "insts",
                   telemetry::Direction::LowerIsBetter,
                   static_cast<double>(TotalSpace) /
                       static_cast<double>(Ctx.suite().size()));
  std::printf("\nPaper shape: 4.9%% avg total; backedge checks dominate in "
              "compress/mpegaudio (tight loops); entry checks dominate in "
              "call-heavy opt-compiler/mtrt; code size roughly doubles.\n");
  return 0;
}
