//===- bench/bench_shmem.cpp - Shared-memory transport bench --*- C++ -*-===//
///
/// Same-host transport shootout for the profile collection service: the
/// shared-memory ring (shm), kernel TCP over 127.0.0.1 (what a same-host
/// pusher uses without --shm), and the in-memory loopback pipe (the
/// protocol-cost floor).  Every variant pushes identical shards through
/// identical servers, so the spread between rows is transport cost alone.
///
/// Correctness is checked every rep, not sampled: the server's merge
/// counter must equal the acked pushes, and the merged bundle pulled back
/// over the same transport must be byte-identical to a serial fold of the
/// shards — a transport that tears or reorders frames fails the bench
/// rather than flattering it.
///
/// A second table prints the bounded-summary cost/accuracy tradeoff
/// (profstore/Summary.h) on the merged bundle: encoded size and worst
/// observed call-edge over-count vs. the retained-entry budget K.
///
/// Host wall-clock measurements — meaningful relative to each other, not
/// vs. the paper.  EXPERIMENTS.md records a reference run.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "profserve/Client.h"
#include "profserve/Server.h"
#include "profstore/ProfileIO.h"
#include "profstore/ProfileStore.h"
#include "profstore/Summary.h"
#include "shmem/ShmRing.h"
#include "support/Support.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace ars;

namespace {

/// One full server lifecycle: \p Pushers threads each push \p Warmup
/// untimed then \p PushesPerPusher timed copies of \p Shard, then a
/// clean client pulls the merged bundle back.  Connect latency and
/// cold-start (first pushes take the bell + poll slow path before the
/// exchange settles into its syscall-free steady state) stay outside
/// the timer; every push, warm or timed, is merged and counted by the
/// byte-identity oracle.  Returns the timed-phase wall ms; any
/// correctness failure exits the process.
double runOnce(std::unique_ptr<profserve::Listener> L,
               const profserve::Dialer &Dial, const std::string &Shard,
               uint64_t Fingerprint, int Pushers, int Warmup,
               int PushesPerPusher,
               const std::string &SerialFoldEncoded) {
  profserve::ServerConfig Config;
  Config.Workers = Pushers;
  Config.Fingerprint = Fingerprint;
  profserve::ProfileServer Server(std::move(L), Config);
  Server.start();

  std::atomic<uint64_t> Acked{0};
  std::atomic<bool> Failed{false};
  std::atomic<int> Ready{0};
  std::atomic<bool> Go{false};
  std::vector<std::thread> Threads;
  for (int P = 0; P != Pushers; ++P)
    Threads.emplace_back([&] {
      profserve::ProfileClient Client(Dial, profserve::ClientConfig());
      for (int I = 0; I != Warmup; ++I) {
        profserve::ClientResult PR = Client.pushEncoded(Shard);
        if (!PR.Ok) {
          std::fprintf(stderr, "warmup push failed: %s\n",
                       PR.Error.c_str());
          Failed = true;
          break;
        }
        ++Acked;
      }
      ++Ready;
      while (!Go.load(std::memory_order_acquire))
        std::this_thread::yield();
      if (Failed)
        return;
      for (int I = 0; I != PushesPerPusher; ++I) {
        profserve::ClientResult PR = Client.pushEncoded(Shard);
        if (!PR.Ok) {
          std::fprintf(stderr, "push failed: %s\n", PR.Error.c_str());
          Failed = true;
          return;
        }
        ++Acked;
      }
    });
  while (Ready.load(std::memory_order_acquire) != Pushers)
    std::this_thread::yield();
  support::HostTimer Timer;
  Go.store(true, std::memory_order_release);
  for (std::thread &Th : Threads)
    Th.join();
  double WallMs = Timer.elapsedMs();
  if (Failed)
    std::exit(1);

  profserve::ProfileClient Clean(Dial, profserve::ClientConfig());
  profserve::ProfileClient::PullResult Pull = Clean.pull();
  uint64_t Merges = Server.stats().Merges;
  Server.stop();
  if (!Pull.Ok) {
    std::fprintf(stderr, "pull failed: %s\n", Pull.Error.c_str());
    std::exit(1);
  }
  if (Merges != Acked) {
    std::fprintf(stderr, "merge counter (%llu) != acked pushes (%llu)\n",
                 static_cast<unsigned long long>(Merges),
                 static_cast<unsigned long long>(Acked.load()));
    std::exit(1);
  }
  if (Pull.RawBytes != SerialFoldEncoded) {
    std::fprintf(stderr,
                 "merged bundle diverges from the serial fold\n");
    std::exit(1);
  }
  return WallMs;
}

} // namespace

int main(int Argc, char **Argv) {
  bench::Context Ctx(Argc, Argv);
  bench::printBanner("Shared-memory transport bench",
                     "new experiment: same-host push throughput, shm "
                     "ring vs. TCP vs. loopback");

  // One real bundle (all six kinds) as the shard every pusher uploads.
  static instr::BlockCountInstrumentation BlockCounts;
  static instr::ValueProfileInstrumentation Values;
  static instr::EdgeCountInstrumentation EdgeCounts;
  static instr::PathProfileInstrumentation Paths;
  harness::RunConfig C;
  C.Transform.M = sampling::Mode::Exhaustive;
  C.Clients = bench::bothClients();
  C.Clients.push_back(&BlockCounts);
  C.Clients.push_back(&Values);
  C.Clients.push_back(&EdgeCounts);
  C.Clients.push_back(&Paths);
  harness::ExperimentResult R = Ctx.runConfig("javac", C);
  const uint64_t Fingerprint = 0x73686DULL; // constant: shards must match

  // The pushed shard models the subsystem's target workload: a sidecar
  // flushing its hottest call-edge deltas at high frequency.  Take the
  // eight hottest edges of the real javac profile; a shard this small
  // keeps the transport (not the server-side merge, which is identical
  // for every row) as the measured quantity.
  std::vector<std::pair<uint64_t, profile::CallEdgeKey>> Hot;
  for (const auto &[Key, Count] : R.Profiles.CallEdges.counts())
    Hot.push_back({Count, Key});
  std::sort(Hot.begin(), Hot.end(),
            [](const auto &A, const auto &B) { return A.first > B.first; });
  if (Hot.size() > 8)
    Hot.resize(8);
  profile::ProfileBundle Delta;
  for (const auto &[Count, Key] : Hot)
    Delta.CallEdges.record(Key, Count);
  const std::string Shard = profstore::encodeBundle(Delta, Fingerprint);
  std::printf("shard: %zu hottest javac call edges, %zu bytes encoded\n\n",
              Hot.size(), Shard.size());

  const bool Quick = Ctx.scaleOf(Ctx.suite().front()) <
                     Ctx.suite().front().DefaultScale;
  const int Pushers = 2;
  const int Warmup = 200;
  const int PushesPerPusher = Quick ? 6000 : 16000;
  const int TotalPushes = Pushers * (Warmup + PushesPerPusher);
  const int TimedPushes = Pushers * PushesPerPusher;

  // The byte-identity oracle: fold the shard serially TotalPushes times.
  profile::ProfileBundle Fold;
  for (int I = 0; I != TotalPushes; ++I)
    profstore::mergeBundle(Fold, Delta);
  const std::string FoldEncoded =
      profstore::encodeBundle(Fold, Fingerprint);

  const std::string ShmRoot = "/tmp/bench_shmem_" +
                              std::to_string(static_cast<long>(getpid()));

  support::TablePrinter T({"Transport", "Pushes", "Wall ms", "Bundles/s",
                           "MB/s", "us/push"});
  bool TcpAvailable = true;
  const std::vector<std::string> Names = {"shm", "tcp", "loopback"};
  std::map<std::string, std::vector<double>> Samples;
  // Interleave transports within each rep so slow drift on a shared host
  // lands on every row instead of biasing whichever ran last.
  for (int Rep = 0; Rep != Ctx.reps(); ++Rep) {
    for (const std::string &Name : Names) {
      std::unique_ptr<profserve::Listener> L;
      profserve::Dialer Dial;
      std::string ShmDir;
      std::string Err;
      if (Name == "shm") {
        ShmDir = ShmRoot + "-r" + std::to_string(Rep);
        L = shmem::listenShm(ShmDir, &Err);
        if (!L) {
          std::fprintf(stderr, "listenShm: %s\n", Err.c_str());
          return 1;
        }
        Dial = shmem::shmDialer(ShmDir);
      } else if (Name == "tcp") {
        if (!TcpAvailable)
          continue;
        std::unique_ptr<profserve::TcpListener> Tcp =
            profserve::listenTcp(0, &Err);
        if (!Tcp) {
          // Sandboxes that forbid sockets: skip the row, keep the bench.
          std::printf("tcp unavailable (%s); skipping row\n",
                      Err.c_str());
          TcpAvailable = false;
          continue;
        }
        Dial = profserve::tcpDialer("127.0.0.1", Tcp->port(), 5000);
        L = std::move(Tcp);
      } else {
        profserve::LoopbackListener *Loop =
            new profserve::LoopbackListener();
        L.reset(Loop);
        Dial = profserve::loopbackDialer(*Loop);
      }
      Samples[Name].push_back(runOnce(std::move(L), Dial, Shard,
                                      Fingerprint, Pushers, Warmup,
                                      PushesPerPusher, FoldEncoded));
      if (!ShmDir.empty())
        ::rmdir(ShmDir.c_str()); // segments are unlinked on adoption
    }
  }
  for (const std::string &Name : Names) {
    std::vector<double> &WallSamples = Samples[Name];
    if (WallSamples.empty())
      continue;

    double Pushes = static_cast<double>(TimedPushes);
    double WallMs = telemetry::median(WallSamples);
    double Rate = WallMs > 0 ? Pushes / (WallMs / 1e3) : 0.0;
    T.beginRow();
    T.cell(Name.c_str());
    T.cellInt(TimedPushes);
    T.cellDouble(WallMs);
    T.cellDouble(Rate);
    T.cellDouble(WallMs > 0 ? Pushes * static_cast<double>(Shard.size()) /
                                  1e6 / (WallMs / 1e3)
                            : 0.0);
    T.cellDouble(Pushes > 0 ? WallMs * 1e3 / Pushes : 0.0);

    std::vector<double> Rates;
    for (double Ms : WallSamples)
      Rates.push_back(Ms > 0 ? Pushes / (Ms / 1e3) : 0.0);
    Ctx.report().addHostMetric(std::string("bundles_per_s_") + Name,
                               "bundles/s",
                               telemetry::Direction::HigherIsBetter,
                               Rates);
  }
  T.print();
  std::printf("\nEvery rep verifies merges == acks and pulls the merged "
              "bundle back byte-identical to a serial fold of %d "
              "shards.\n",
              TotalPushes);
  if (TcpAvailable && !Samples["tcp"].empty() && !Samples["shm"].empty()) {
    // Scheduler interference on a shared host is strictly additive: a
    // burst can only inflate a phase's wall time, never shrink it.  The
    // minimum across interleaved reps therefore estimates the
    // uncontended cost of each transport, and its quotient is far more
    // stable than any per-rep pairing, where one burst landing inside a
    // 60 ms shm phase whipsaws that rep's ratio.
    double BestShm =
        *std::min_element(Samples["shm"].begin(), Samples["shm"].end());
    double BestTcp =
        *std::min_element(Samples["tcp"].begin(), Samples["tcp"].end());
    if (BestShm > 0) {
      double Speedup = BestTcp / BestShm;
      std::printf("shm vs tcp: %.2fx bundles/s (best of %zu interleaved "
                  "reps per transport)\n",
                  Speedup, Samples["shm"].size());
      Ctx.report().addHostMetric("shm_vs_tcp_speedup", "x",
                                 telemetry::Direction::HigherIsBetter,
                                 {Speedup});
    }
  }

  // Bounded-summary cost/accuracy on a fold of the full javac bundle
  // (all six profile kinds): what the root aggregator would retain
  // instead of the exact fold.
  profile::ProfileBundle FullFold;
  for (int I = 0; I != 64; ++I)
    profstore::mergeBundle(FullFold, R.Profiles);
  const std::string FullEncoded =
      profstore::encodeBundle(FullFold, Fingerprint);
  std::printf("\nbounded summaries of a 64-shard javac fold (%zu exact "
              "encoded bytes, %zu call edges)\n",
              FullEncoded.size(), FullFold.CallEdges.counts().size());
  support::TablePrinter ST({"K", "Summary bytes", "% of exact",
                            "Edge floor", "Floor bound", "Max edge err"});
  for (uint32_t K : {4u, 64u, 1024u}) {
    profstore::ProfileSummary S = profstore::summarizeBundle(FullFold, K);
    std::string Enc = profstore::encodeSummary(S, Fingerprint);
    uint64_t MaxErr = 0;
    for (const auto &[Key, Count] : FullFold.CallEdges.counts())
      MaxErr = std::max(MaxErr, S.CallEdges.estimate(Key) - Count);
    ST.beginRow();
    ST.cellInt(static_cast<int64_t>(K));
    ST.cellInt(static_cast<int64_t>(Enc.size()));
    ST.cellDouble(100.0 * static_cast<double>(Enc.size()) /
                  static_cast<double>(FullEncoded.size()));
    ST.cellInt(static_cast<int64_t>(S.CallEdges.TopK.Floor));
    ST.cellInt(static_cast<int64_t>(S.CallEdges.Total / (K + 1)));
    ST.cellInt(static_cast<int64_t>(MaxErr));
  }
  ST.print();
  std::printf("\nEvery estimate is a one-sided upper bound; the floor "
              "obeys total / (K + 1) for any merge order.\n");
  return 0;
}
