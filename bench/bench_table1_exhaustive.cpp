//===- bench/bench_table1_exhaustive.cpp ----------------------*- C++ -*-===//
///
/// Table 1: time overhead of exhaustive instrumentation without the
/// framework, for call-edge and field-access instrumentation applied to
/// all methods.  Paper averages: call-edge 88.3%, field-access 60.4% —
/// "clearly ... too expensive to execute unnoticed at runtime".
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <cstdio>

using namespace ars;

int main(int Argc, char **Argv) {
  bench::Context Ctx(Argc, Argv);
  bench::printBanner("Table 1: exhaustive instrumentation overhead",
                     "Table 1 (section 4.2)");

  support::TablePrinter T({"Benchmark", "Call-edge (%)", "Field-access (%)"});
  std::vector<double> CallOverheads, FieldOverheads;

  // Two cells per workload (call-edge, field-access), fanned out over
  // --jobs workers; results come back in cell order.
  Ctx.prefetchBaselines();
  std::vector<bench::NamedCell> Cells;
  for (const workloads::Workload &W : Ctx.suite()) {
    harness::RunConfig Call;
    Call.Transform.M = sampling::Mode::Exhaustive;
    Call.Clients = {&bench::callEdgeClient()};
    Cells.emplace_back(W.Name, Call);

    harness::RunConfig Field;
    Field.Transform.M = sampling::Mode::Exhaustive;
    Field.Clients = {&bench::fieldAccessClient()};
    Cells.emplace_back(W.Name, Field);
  }
  auto Results = Ctx.runAll(Cells);

  for (size_t WI = 0; WI != Ctx.suite().size(); ++WI) {
    const workloads::Workload &W = Ctx.suite()[WI];
    double CallPct = Ctx.overheadPct(W.Name, Results[WI * 2]);
    double FieldPct = Ctx.overheadPct(W.Name, Results[WI * 2 + 1]);

    T.beginRow();
    T.cell(W.Name);
    T.cellPercent(CallPct);
    T.cellPercent(FieldPct);
    CallOverheads.push_back(CallPct);
    FieldOverheads.push_back(FieldPct);
  }

  T.beginRow();
  T.cell("Average");
  T.cellPercent(bench::meanOf(CallOverheads));
  T.cellPercent(bench::meanOf(FieldOverheads));
  T.print();

  telemetry::BenchReport &Rep = Ctx.report();
  for (size_t WI = 0; WI != Ctx.suite().size(); ++WI) {
    const std::string Name = Ctx.suite()[WI].Name;
    Rep.addSimMetric("call_edge_pct." + Name, "pct",
                     telemetry::Direction::LowerIsBetter,
                     CallOverheads[WI]);
    Rep.addSimMetric("field_access_pct." + Name, "pct",
                     telemetry::Direction::LowerIsBetter,
                     FieldOverheads[WI]);
  }
  Rep.addSimMetric("call_edge_pct.avg", "pct",
                   telemetry::Direction::LowerIsBetter,
                   bench::meanOf(CallOverheads));
  Rep.addSimMetric("field_access_pct.avg", "pct",
                   telemetry::Direction::LowerIsBetter,
                   bench::meanOf(FieldOverheads));
  std::printf("\nPaper shape: call-edge avg 88.3%%, field-access avg "
              "60.4%%; db is the cheap outlier in both columns.\n");
  return 0;
}
