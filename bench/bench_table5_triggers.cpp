//===- bench/bench_table5_triggers.cpp ------------------------*- C++ -*-===//
///
/// Table 5: accuracy of field-access profiles when samples are driven by
/// a time-based trigger (the simulated threadswitch bit) vs. the
/// counter-based trigger, using Full-Duplication.  The counter interval is
/// chosen to match the timer's sample count, as the paper matched interval
/// 30000 to its 10ms timer.  Paper averages: time-based 63%, counter-based
/// 84% — timer samples are misattributed to whatever check follows a
/// long-latency region.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "profile/Overlap.h"

#include <cstdio>

using namespace ars;

int main(int Argc, char **Argv) {
  bench::Context Ctx(Argc, Argv);
  bench::printBanner("Table 5: time-based vs counter-based trigger accuracy",
                     "Table 5 (section 4.6)");

  support::TablePrinter T({"Benchmark", "Time-based (%)",
                           "Counter-based (%)", "Samples (timer/counter)"});
  std::vector<double> TimeAcc, CounterAcc;

  for (const workloads::Workload &W : Ctx.suite()) {
    harness::RunConfig Perfect;
    Perfect.Transform.M = sampling::Mode::Exhaustive;
    Perfect.Clients = {&bench::fieldAccessClient()};
    auto PerfectRun = Ctx.runConfig(W.Name, Perfect);

    harness::RunConfig Timer;
    Timer.Transform.M = sampling::Mode::FullDuplication;
    Timer.Clients = {&bench::fieldAccessClient()};
    Timer.Engine.Trigger = runtime::TriggerKind::Timer;
    Timer.Engine.TimerPeriodCycles = 40000;
    auto TimerRun = Ctx.runConfig(W.Name, Timer);
    double TimerOverlap = profile::overlapPercent(
        PerfectRun.Profiles.FieldAccesses, TimerRun.Profiles.FieldAccesses);

    // Match the counter interval to the timer's sample count, as the
    // paper did ("approximately the same number of samples").
    uint64_t Samples = TimerRun.Stats.SamplesTaken;
    int64_t MatchedInterval =
        Samples > 0 ? static_cast<int64_t>(TimerRun.Stats.CheckExecs /
                                           Samples)
                    : 30000;
    if (MatchedInterval < 1)
      MatchedInterval = 1;
    harness::RunConfig Counter;
    Counter.Transform.M = sampling::Mode::FullDuplication;
    Counter.Clients = {&bench::fieldAccessClient()};
    Counter.Engine.SampleInterval = MatchedInterval;
    auto CounterRun = Ctx.runConfig(W.Name, Counter);
    double CounterOverlap = profile::overlapPercent(
        PerfectRun.Profiles.FieldAccesses,
        CounterRun.Profiles.FieldAccesses);

    T.beginRow();
    T.cell(W.Name);
    T.cellPercent(TimerOverlap);
    T.cellPercent(CounterOverlap);
    T.cell(support::formatString(
        "%llu/%llu", static_cast<unsigned long long>(Samples),
        static_cast<unsigned long long>(CounterRun.Stats.SamplesTaken)));
    TimeAcc.push_back(TimerOverlap);
    CounterAcc.push_back(CounterOverlap);
  }

  T.beginRow();
  T.cell("Average");
  T.cellPercent(bench::meanOf(TimeAcc));
  T.cellPercent(bench::meanOf(CounterAcc));
  T.cell("");
  T.print();

  telemetry::BenchReport &Rep = Ctx.report();
  for (size_t WI = 0; WI != Ctx.suite().size(); ++WI) {
    const std::string Name = Ctx.suite()[WI].Name;
    Rep.addSimMetric("timer_acc_pct." + Name, "pct",
                     telemetry::Direction::HigherIsBetter, TimeAcc[WI]);
    Rep.addSimMetric("counter_acc_pct." + Name, "pct",
                     telemetry::Direction::HigherIsBetter, CounterAcc[WI]);
  }
  Rep.addSimMetric("timer_acc_pct.avg", "pct",
                   telemetry::Direction::HigherIsBetter,
                   bench::meanOf(TimeAcc));
  Rep.addSimMetric("counter_acc_pct.avg", "pct",
                   telemetry::Direction::HigherIsBetter,
                   bench::meanOf(CounterAcc));
  std::printf("\nPaper shape: counter-based (84%% avg) beats time-based "
              "(63%% avg); the gap is widest on workloads with "
              "long-latency regions (volano).\n");
  return 0;
}
