//===- bench/bench_fig8_yieldpoint.cpp ------------------------*- C++ -*-===//
///
/// Figure 8: the Jalapeno-specific yieldpoint optimization (section 4.5).
/// Yieldpoints are removed from the checking code — the counter check
/// subsumes the yield test — and kept in the duplicated code.
///
/// Table (A): framework-only overhead per benchmark (paper avg 1.4%,
/// vs 4.9% without the optimization).
/// Table (B): total sampling overhead (both instrumentations) averaged
/// over all benchmarks per interval (paper converges to ~1.5%).
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <cstdio>

using namespace ars;

int main(int Argc, char **Argv) {
  bench::Context Ctx(Argc, Argv);
  bench::printBanner("Figure 8: yieldpoint-optimized framework",
                     "Figure 8, tables (A) and (B) (section 4.5)");

  // Table (A): framework-only overhead with the optimization.
  support::TablePrinter A({"Benchmark", "Framework Overhead (%)",
                           "Without Opt (%)"});
  std::vector<double> OptOverheads, PlainOverheads;
  for (const workloads::Workload &W : Ctx.suite()) {
    harness::RunConfig Opt;
    Opt.Transform.M = sampling::Mode::FullDuplication;
    Opt.Transform.YieldpointOpt = true;
    double OptPct = Ctx.overheadPct(W.Name, Ctx.runConfig(W.Name, Opt));

    harness::RunConfig Plain;
    Plain.Transform.M = sampling::Mode::FullDuplication;
    double PlainPct = Ctx.overheadPct(W.Name, Ctx.runConfig(W.Name, Plain));

    A.beginRow();
    A.cell(W.Name);
    A.cellPercent(OptPct);
    A.cellPercent(PlainPct);
    OptOverheads.push_back(OptPct);
    PlainOverheads.push_back(PlainPct);
  }
  A.beginRow();
  A.cell("Average");
  A.cellPercent(bench::meanOf(OptOverheads));
  A.cellPercent(bench::meanOf(PlainOverheads));
  std::printf("\nTable (A): framework only, no samples taken\n");
  A.print();

  telemetry::BenchReport &Rep = Ctx.report();
  Rep.addSimMetric("framework_opt_pct.avg", "pct",
                   telemetry::Direction::LowerIsBetter,
                   bench::meanOf(OptOverheads));
  Rep.addSimMetric("framework_plain_pct.avg", "pct",
                   telemetry::Direction::LowerIsBetter,
                   bench::meanOf(PlainOverheads));

  // Table (B): total sampling overhead per interval, averaged.
  std::printf("\nTable (B): total sampled-instrumentation overhead\n");
  support::TablePrinter B({"Sample Interval", "Total Overhead (%)"});
  for (int64_t Interval : {int64_t(1), int64_t(10), int64_t(100),
                           int64_t(1000), int64_t(10000), int64_t(100000)}) {
    double Sum = 0.0;
    for (const workloads::Workload &W : Ctx.suite()) {
      harness::RunConfig C;
      C.Transform.M = sampling::Mode::FullDuplication;
      C.Transform.YieldpointOpt = true;
      C.Clients = bench::bothClients();
      C.Engine.SampleInterval = Interval;
      Sum += Ctx.overheadPct(W.Name, Ctx.runConfig(W.Name, C));
    }
    double AvgPct = Sum / static_cast<double>(Ctx.suite().size());
    Rep.addSimMetric("total_opt_pct.i" + std::to_string(Interval), "pct",
                     telemetry::Direction::LowerIsBetter, AvgPct);
    B.beginRow();
    B.cellInt(Interval);
    B.cellPercent(AvgPct);
  }
  B.print();

  std::printf("\nPaper shape: framework overhead drops from ~4.9%% to "
              "~1.4%%; total overhead converges to ~1.5%% at large "
              "intervals (vs ~5%% unoptimized), enabling 'overhead so "
              "small it is hardly visible above the noise'.\n");
  return 0;
}
