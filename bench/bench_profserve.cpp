//===- bench/bench_profserve.cpp - Collection service bench ---*- C++ -*-===//
///
/// Measures the profile collection server's sustained PUSH throughput
/// (bundles/s and MB/s) as the number of concurrent pushers grows, over
/// the in-memory loopback transport — so the numbers isolate protocol +
/// server cost (framing, CRC, decode, striped merge) from the kernel's
/// TCP stack.
///
/// Each pusher opens one connection and pushes the same real workload
/// bundle in a loop; the server merges every shard.  After each run the
/// merge counter is cross-checked against the number of acked pushes, so
/// a silently dropped shard fails the bench rather than flattering it.
///
/// Host wall-clock measurements — meaningful relative to each other, not
/// vs. the paper.  EXPERIMENTS.md records a reference run.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "profserve/Client.h"
#include "profserve/Server.h"
#include "profstore/Journal.h"
#include "profstore/ProfileIO.h"
#include "support/Support.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

using namespace ars;

int main(int Argc, char **Argv) {
  bench::Context Ctx(Argc, Argv);
  bench::printBanner("Profile collection service bench",
                     "new experiment: sustained push throughput vs. "
                     "concurrent pusher count (loopback)");

  // One real bundle (all six kinds) as the shard every pusher uploads.
  static instr::BlockCountInstrumentation BlockCounts;
  static instr::ValueProfileInstrumentation Values;
  static instr::EdgeCountInstrumentation EdgeCounts;
  static instr::PathProfileInstrumentation Paths;
  harness::RunConfig C;
  C.Transform.M = sampling::Mode::Exhaustive;
  C.Clients = bench::bothClients();
  C.Clients.push_back(&BlockCounts);
  C.Clients.push_back(&Values);
  C.Clients.push_back(&EdgeCounts);
  C.Clients.push_back(&Paths);
  harness::ExperimentResult R = Ctx.runConfig("javac", C);
  const uint64_t Fingerprint = 0x70667365ULL; // constant: shards must match
  const std::string Shard =
      profstore::encodeBundle(R.Profiles, Fingerprint);
  std::printf("shard: javac exhaustive, %zu bytes encoded\n\n",
              Shard.size());

  // --quick (scale < 100) trims the per-cell push count, like the other
  // benches trim their workload scales.
  const bool Quick = Ctx.scaleOf(Ctx.suite().front()) <
                     Ctx.suite().front().DefaultScale;
  const int PushesPerPusher = Quick ? 50 : 200;

  support::TablePrinter T({"Pushers", "Pushes", "Wall ms", "Bundles/s",
                           "MB/s", "us/push"});
  for (int Pushers : {1, 2, 4, 8}) {
    // One full server lifecycle per rep; the merge counter is verified
    // every rep, and the table row reports the median wall time.
    std::vector<double> WallSamples;
    uint64_t LastAcked = 0;
    for (int Rep = 0; Rep != Ctx.reps(); ++Rep) {
      profserve::ServerConfig Config;
      Config.Workers = Pushers; // one reactor per pusher: no mux stalls
      Config.Fingerprint = Fingerprint;
      profserve::LoopbackListener *L = new profserve::LoopbackListener();
      profserve::ProfileServer Server(
          std::unique_ptr<profserve::Listener>(L), Config);
      Server.start();

      std::atomic<uint64_t> Acked{0};
      std::atomic<bool> Failed{false};
      support::HostTimer Timer;
      std::vector<std::thread> Threads;
      for (int P = 0; P != Pushers; ++P)
        Threads.emplace_back([&] {
          profserve::ProfileClient Client(profserve::loopbackDialer(*L),
                                          profserve::ClientConfig());
          for (int I = 0; I != PushesPerPusher; ++I) {
            profserve::ClientResult PR = Client.pushEncoded(Shard);
            if (!PR.Ok) {
              std::fprintf(stderr, "push failed: %s\n", PR.Error.c_str());
              Failed = true;
              return;
            }
            ++Acked;
          }
        });
      for (std::thread &Th : Threads)
        Th.join();
      WallSamples.push_back(Timer.elapsedMs());
      if (Failed)
        return 1;

      uint64_t Merges = Server.stats().Merges;
      Server.stop();
      if (Merges != Acked) {
        std::fprintf(stderr,
                     "merge counter (%llu) != acked pushes (%llu)\n",
                     static_cast<unsigned long long>(Merges),
                     static_cast<unsigned long long>(Acked.load()));
        return 1;
      }
      LastAcked = Acked.load();
    }

    double Pushes = static_cast<double>(LastAcked);
    double WallMs = telemetry::median(WallSamples);
    T.beginRow();
    T.cellInt(Pushers);
    T.cellInt(static_cast<int64_t>(LastAcked));
    T.cellDouble(WallMs);
    T.cellDouble(WallMs > 0 ? Pushes / (WallMs / 1e3) : 0.0);
    T.cellDouble(WallMs > 0 ? Pushes * static_cast<double>(Shard.size()) /
                                  1e6 / (WallMs / 1e3)
                            : 0.0);
    T.cellDouble(Pushes > 0 ? WallMs * 1e3 / Pushes : 0.0);

    std::vector<double> BundleRates, UsPerPush;
    for (double Ms : WallSamples) {
      BundleRates.push_back(Ms > 0 ? Pushes / (Ms / 1e3) : 0.0);
      UsPerPush.push_back(Pushes > 0 ? Ms * 1e3 / Pushes : 0.0);
    }
    const std::string Suffix = ".p" + std::to_string(Pushers);
    Ctx.report().addHostMetric("bundles_per_s" + Suffix, "bundles/s",
                               telemetry::Direction::HigherIsBetter,
                               BundleRates);
    Ctx.report().addHostMetric("us_per_push" + Suffix, "us",
                               telemetry::Direction::LowerIsBetter,
                               UsPerPush);
  }
  T.print();
  std::printf("\nEvery push is CRC-framed, CRC-checked, decoded and "
              "merged; the merge counter is verified against acks.\n");

  // Scenario 2: high fan-in through one relay level.  1024 clients (8
  // driver threads x 128 clients) each connect, upload their shards as
  // wire-v3 PUSH_BATCH frames at a relay, and disconnect; the relay
  // merges locally and drains epoch deltas upstream to a root server.
  // This is the topology the event loop exists for: a handful of
  // reactor threads multiplexing a connection count that would need a
  // thousand threads under thread-per-connection.
  const int FanClients = 1024;
  const int FanDrivers = 8;
  const int ShardsPerBatch = 4;
  const int BatchesPerClient = Quick ? 1 : 2;
  auto percentile = [](std::vector<double> V, double P) {
    if (V.empty())
      return 0.0;
    std::sort(V.begin(), V.end());
    size_t I = static_cast<size_t>(P * static_cast<double>(V.size() - 1));
    return V[I];
  };

  std::printf("\nhigh fan-in: %d clients -> 1 relay -> 1 root, "
              "%d batches x %d shards per client\n",
              FanClients, BatchesPerClient, ShardsPerBatch);
  support::TablePrinter FT({"Clients", "Shards", "Wall ms", "Bundles/s",
                            "p50 us/batch", "p99 us/batch"});
  std::vector<double> FanRates, FanP50, FanP99, FanWall;
  uint64_t FanShards = 0;
  for (int Rep = 0; Rep != Ctx.reps(); ++Rep) {
    profserve::ServerConfig RootC;
    RootC.Workers = 2;
    RootC.Fingerprint = Fingerprint;
    RootC.MaxConnections = 0;
    profserve::LoopbackListener *RootL = new profserve::LoopbackListener();
    profserve::ProfileServer Root(
        std::unique_ptr<profserve::Listener>(RootL), RootC);
    Root.start();

    profserve::ServerConfig RelayC;
    RelayC.Workers = 4;
    RelayC.Fingerprint = Fingerprint;
    RelayC.MaxConnections = 0; // the whole point: unbounded fan-in
    RelayC.Relay.Dial = profserve::loopbackDialer(*RootL);
    RelayC.Relay.Client.Fingerprint = Fingerprint;
    RelayC.Relay.Client.SessionId = 0xBE7C4EDULL;
    RelayC.Relay.FlushIntervalMs = 25; // drain concurrently with pushes
    profserve::LoopbackListener *RelayL = new profserve::LoopbackListener();
    profserve::ProfileServer Relay(
        std::unique_ptr<profserve::Listener>(RelayL), RelayC);
    Relay.start();

    std::atomic<uint64_t> Acked{0};
    std::atomic<bool> Failed{false};
    std::vector<std::vector<double>> BatchMs(FanDrivers);
    support::HostTimer Timer;
    std::vector<std::thread> Drivers;
    for (int D = 0; D != FanDrivers; ++D)
      Drivers.emplace_back([&, D] {
        std::vector<std::string> Batch(ShardsPerBatch, Shard);
        for (int K = 0; K != FanClients / FanDrivers; ++K) {
          profserve::ClientConfig CC;
          CC.Fingerprint = Fingerprint;
          CC.SessionId = 0xFA0000ULL + static_cast<uint64_t>(D) * 1000 +
                         static_cast<uint64_t>(K);
          profserve::ProfileClient Client(
              profserve::loopbackDialer(*RelayL), CC);
          for (int B = 0; B != BatchesPerClient; ++B) {
            support::HostTimer BT;
            profserve::ClientResult PR = Client.pushBatch(Batch);
            if (!PR.Ok) {
              std::fprintf(stderr, "batch push failed: %s\n",
                           PR.Error.c_str());
              Failed = true;
              return;
            }
            BatchMs[D].push_back(BT.elapsedMs());
            Acked += ShardsPerBatch;
          }
        }
      });
    for (std::thread &Th : Drivers)
      Th.join();
    double WallMs = Timer.elapsedMs();
    if (Failed)
      return 1;

    profserve::StatsMsg RelayStats = Relay.stats();
    Relay.stop(); // final upstream flush happens here
    profserve::StatsMsg RootStats = Root.stats();
    Root.stop();
    if (RelayStats.Merges != Acked) {
      std::fprintf(stderr,
                   "relay merge counter (%llu) != acked shards (%llu)\n",
                   static_cast<unsigned long long>(RelayStats.Merges),
                   static_cast<unsigned long long>(Acked.load()));
      return 1;
    }
    if (Relay.stats().RelayFailures != 0 || RootStats.Merges == 0) {
      std::fprintf(stderr, "relay drain failed: %llu failures, "
                           "%llu root merges\n",
                   static_cast<unsigned long long>(
                       Relay.stats().RelayFailures),
                   static_cast<unsigned long long>(RootStats.Merges));
      return 1;
    }

    std::vector<double> AllBatch;
    for (const std::vector<double> &V : BatchMs)
      AllBatch.insert(AllBatch.end(), V.begin(), V.end());
    FanShards = Acked.load();
    double Shards = static_cast<double>(FanShards);
    FanWall.push_back(WallMs);
    FanRates.push_back(WallMs > 0 ? Shards / (WallMs / 1e3) : 0.0);
    FanP50.push_back(percentile(AllBatch, 0.50) * 1e3);
    FanP99.push_back(percentile(AllBatch, 0.99) * 1e3);
  }

  FT.beginRow();
  FT.cellInt(FanClients);
  FT.cellInt(static_cast<int64_t>(FanShards));
  FT.cellDouble(telemetry::median(FanWall));
  FT.cellDouble(telemetry::median(FanRates));
  FT.cellDouble(telemetry::median(FanP50));
  FT.cellDouble(telemetry::median(FanP99));
  FT.print();
  Ctx.report().addHostMetric("fan_in_bundles_per_s", "bundles/s",
                             telemetry::Direction::HigherIsBetter,
                             FanRates);
  Ctx.report().addHostMetric("fan_in_p50_batch_us", "us",
                             telemetry::Direction::LowerIsBetter, FanP50);
  Ctx.report().addHostMetric("fan_in_p99_batch_us", "us",
                             telemetry::Direction::LowerIsBetter, FanP99);
  std::printf("\n%d connections multiplexed over %d relay reactors; the "
              "relay's merge counter is verified against acked shards and "
              "every epoch delta drained upstream.\n",
              FanClients, 4);

  // Scenario 3: the durability tax.  One serial sequenced session
  // uploads PUSH_BATCH frames against a journal-off and a journal-on
  // server; the wall-clock delta is the write-ahead journal's whole
  // cost.  Group commit is what keeps that cost one fsync per BATCH
  // rather than one per shard, and the fsyncs/batch ratio is exact for
  // a serial pusher — so it gates deterministically at 1.0 while the
  // wall-clock columns stay host-only.
  const int JournalBatches = Quick ? 8 : 32;
  const int JournalShardsPerBatch = 8;
  std::printf("\ndurability: %d batches x %d shards, serial session, "
              "journal off vs on (group commit)\n",
              JournalBatches, JournalShardsPerBatch);
  support::TablePrinter JT({"Journal", "Shards", "Wall ms", "us/push",
                            "fsyncs/batch"});
  double FsyncsPerBatch = 0.0;
  for (int On = 0; On != 2; ++On) {
    const std::string JournalBase = support::formatString(
        "/tmp/ars-bench-profserve-%ld.arsj", (long)::getpid());
    std::vector<double> Wall, UsPer;
    for (int Rep = 0; Rep != Ctx.reps(); ++Rep) {
      profserve::ServerConfig Config;
      Config.Workers = 1;
      Config.Fingerprint = Fingerprint;
      if (On) {
        profstore::Journal::wipe(JournalBase);
        Config.JournalPath = JournalBase;
      }
      profserve::LoopbackListener *L = new profserve::LoopbackListener();
      profserve::ProfileServer Server(
          std::unique_ptr<profserve::Listener>(L), Config);
      Server.start();
      if (On && Server.stats().JournalFailures != 0) {
        std::fprintf(stderr, "journal failed to open at %s\n",
                     JournalBase.c_str());
        return 1;
      }
      // open() settles the fresh segment header with its own fsync;
      // only the per-batch group commits count against the ratio.
      const uint64_t SyncsAtStart = On ? Server.stats().JournalSyncs : 0;

      profserve::ClientConfig CC;
      CC.Fingerprint = Fingerprint;
      CC.SessionId = 0x3A11ULL;
      profserve::ProfileClient Client(profserve::loopbackDialer(*L), CC);
      std::vector<std::string> Batch(JournalShardsPerBatch, Shard);
      support::HostTimer Timer;
      for (int B = 0; B != JournalBatches; ++B) {
        profserve::ClientResult PR = Client.pushBatch(Batch);
        if (!PR.Ok) {
          std::fprintf(stderr, "journaled push failed: %s\n",
                       PR.Error.c_str());
          return 1;
        }
      }
      double Ms = Timer.elapsedMs();
      profserve::StatsMsg St = Server.stats();
      Server.stop();
      const uint64_t Expect =
          static_cast<uint64_t>(JournalBatches) * JournalShardsPerBatch;
      if (St.Merges != Expect) {
        std::fprintf(stderr, "merge counter (%llu) != pushed (%llu)\n",
                     static_cast<unsigned long long>(St.Merges),
                     static_cast<unsigned long long>(Expect));
        return 1;
      }
      if (On) {
        FsyncsPerBatch = static_cast<double>(St.JournalSyncs -
                                             SyncsAtStart) /
                         static_cast<double>(JournalBatches);
        if (St.JournalRecords != Expect) {
          std::fprintf(stderr, "journal records (%llu) != pushed (%llu)\n",
                       static_cast<unsigned long long>(St.JournalRecords),
                       static_cast<unsigned long long>(Expect));
          return 1;
        }
        profstore::Journal::wipe(JournalBase);
      }
      Wall.push_back(Ms);
      UsPer.push_back(Expect > 0 ? Ms * 1e3 / static_cast<double>(Expect)
                                 : 0.0);
    }
    JT.beginRow();
    JT.cell(On ? "on" : "off");
    JT.cellInt(JournalBatches * JournalShardsPerBatch);
    JT.cellDouble(telemetry::median(Wall));
    JT.cellDouble(telemetry::median(UsPer));
    JT.cellDouble(On ? FsyncsPerBatch : 0.0);
    const std::string Suffix = On ? ".wal" : ".nowal";
    Ctx.report().addHostMetric("durable_us_per_push" + Suffix, "us",
                               telemetry::Direction::LowerIsBetter, UsPer);
  }
  JT.print();
  // Exact for a serial pusher: one group commit per PUSH_BATCH frame.
  Ctx.report().addSimMetric("journal_fsyncs_per_batch", "fsyncs",
                            telemetry::Direction::LowerIsBetter,
                            FsyncsPerBatch);
  std::printf("\njournal on: every shard is CRC-framed into the WAL and "
              "group-committed (one fsync per batch) before its ack.\n");
  return 0;
}
