//===- bench/bench_profserve.cpp - Collection service bench ---*- C++ -*-===//
///
/// Measures the profile collection server's sustained PUSH throughput
/// (bundles/s and MB/s) as the number of concurrent pushers grows, over
/// the in-memory loopback transport — so the numbers isolate protocol +
/// server cost (framing, CRC, decode, striped merge) from the kernel's
/// TCP stack.
///
/// Each pusher opens one connection and pushes the same real workload
/// bundle in a loop; the server merges every shard.  After each run the
/// merge counter is cross-checked against the number of acked pushes, so
/// a silently dropped shard fails the bench rather than flattering it.
///
/// Host wall-clock measurements — meaningful relative to each other, not
/// vs. the paper.  EXPERIMENTS.md records a reference run.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "profserve/Client.h"
#include "profserve/Server.h"
#include "profstore/ProfileIO.h"
#include "support/Support.h"

#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

using namespace ars;

int main(int Argc, char **Argv) {
  bench::Context Ctx(Argc, Argv);
  bench::printBanner("Profile collection service bench",
                     "new experiment: sustained push throughput vs. "
                     "concurrent pusher count (loopback)");

  // One real bundle (all six kinds) as the shard every pusher uploads.
  static instr::BlockCountInstrumentation BlockCounts;
  static instr::ValueProfileInstrumentation Values;
  static instr::EdgeCountInstrumentation EdgeCounts;
  static instr::PathProfileInstrumentation Paths;
  harness::RunConfig C;
  C.Transform.M = sampling::Mode::Exhaustive;
  C.Clients = bench::bothClients();
  C.Clients.push_back(&BlockCounts);
  C.Clients.push_back(&Values);
  C.Clients.push_back(&EdgeCounts);
  C.Clients.push_back(&Paths);
  harness::ExperimentResult R = Ctx.runConfig("javac", C);
  const uint64_t Fingerprint = 0x70667365ULL; // constant: shards must match
  const std::string Shard =
      profstore::encodeBundle(R.Profiles, Fingerprint);
  std::printf("shard: javac exhaustive, %zu bytes encoded\n\n",
              Shard.size());

  // --quick (scale < 100) trims the per-cell push count, like the other
  // benches trim their workload scales.
  const int PushesPerPusher = Ctx.scaleOf(Ctx.suite().front()) <
                                      Ctx.suite().front().DefaultScale
                                  ? 50
                                  : 200;

  support::TablePrinter T({"Pushers", "Pushes", "Wall ms", "Bundles/s",
                           "MB/s", "us/push"});
  for (int Pushers : {1, 2, 4, 8}) {
    // One full server lifecycle per rep; the merge counter is verified
    // every rep, and the table row reports the median wall time.
    std::vector<double> WallSamples;
    uint64_t LastAcked = 0;
    for (int Rep = 0; Rep != Ctx.reps(); ++Rep) {
      profserve::ServerConfig Config;
      Config.Workers = Pushers; // a connection occupies a worker for life
      Config.Fingerprint = Fingerprint;
      profserve::LoopbackListener *L = new profserve::LoopbackListener();
      profserve::ProfileServer Server(
          std::unique_ptr<profserve::Listener>(L), Config);
      Server.start();

      std::atomic<uint64_t> Acked{0};
      std::atomic<bool> Failed{false};
      support::HostTimer Timer;
      std::vector<std::thread> Threads;
      for (int P = 0; P != Pushers; ++P)
        Threads.emplace_back([&] {
          profserve::ProfileClient Client(profserve::loopbackDialer(*L),
                                          profserve::ClientConfig());
          for (int I = 0; I != PushesPerPusher; ++I) {
            profserve::ClientResult PR = Client.pushEncoded(Shard);
            if (!PR.Ok) {
              std::fprintf(stderr, "push failed: %s\n", PR.Error.c_str());
              Failed = true;
              return;
            }
            ++Acked;
          }
        });
      for (std::thread &Th : Threads)
        Th.join();
      WallSamples.push_back(Timer.elapsedMs());
      if (Failed)
        return 1;

      uint64_t Merges = Server.stats().Merges;
      Server.stop();
      if (Merges != Acked) {
        std::fprintf(stderr,
                     "merge counter (%llu) != acked pushes (%llu)\n",
                     static_cast<unsigned long long>(Merges),
                     static_cast<unsigned long long>(Acked.load()));
        return 1;
      }
      LastAcked = Acked.load();
    }

    double Pushes = static_cast<double>(LastAcked);
    double WallMs = telemetry::median(WallSamples);
    T.beginRow();
    T.cellInt(Pushers);
    T.cellInt(static_cast<int64_t>(LastAcked));
    T.cellDouble(WallMs);
    T.cellDouble(WallMs > 0 ? Pushes / (WallMs / 1e3) : 0.0);
    T.cellDouble(WallMs > 0 ? Pushes * static_cast<double>(Shard.size()) /
                                  1e6 / (WallMs / 1e3)
                            : 0.0);
    T.cellDouble(Pushes > 0 ? WallMs * 1e3 / Pushes : 0.0);

    std::vector<double> BundleRates, UsPerPush;
    for (double Ms : WallSamples) {
      BundleRates.push_back(Ms > 0 ? Pushes / (Ms / 1e3) : 0.0);
      UsPerPush.push_back(Pushes > 0 ? Ms * 1e3 / Pushes : 0.0);
    }
    const std::string Suffix = ".p" + std::to_string(Pushers);
    Ctx.report().addHostMetric("bundles_per_s" + Suffix, "bundles/s",
                               telemetry::Direction::HigherIsBetter,
                               BundleRates);
    Ctx.report().addHostMetric("us_per_push" + Suffix, "us",
                               telemetry::Direction::LowerIsBetter,
                               UsPerPush);
  }
  T.print();
  std::printf("\nEvery push is CRC-framed, CRC-checked, decoded and "
              "merged; the merge counter is verified against acks.\n");
  return 0;
}
