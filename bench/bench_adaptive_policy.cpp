//===- bench/bench_adaptive_policy.cpp - Accuracy per cycle ---*- C++ -*-===//
///
/// The closed adaptive loop's headline claim: a convergence watcher that
/// widens the sampling interval of methods whose profile has stopped
/// changing buys the SAME per-method accuracy for a fraction of the
/// instrumentation cycles.  Static intervals keep paying full price for
/// methods whose profiles saturated rounds ago; the policy loop reclaims
/// exactly that spend.
///
/// Setup per workload: one exhaustive run (the perfect profile) plus
/// jitter-decorrelated profiling rounds under two arms.
///
///  * static arm: 10 rounds at the base interval, merged.
///  * adaptive arm: 11 rounds through the full push-down machinery —
///    leaf client -> relay -> root server, the root's ConvergenceWatcher
///    deciding after every epoch rotation, POLICY frames flowing back
///    down the tree into a live PolicyTable the engine reads between
///    rounds.  The measured aggregate is the ROOT's merged bundle, i.e.
///    what the collection tier actually owns.
///
/// The cost metric is *instrumentation* cycles: instrumented minus
/// baseline simulated cycles, minus the fixed per-check framework cost
/// (CostModel::Check x CheckExecs).  That is the paper's section 4.3
/// decomposition — checks are the framework's fixed price and execute
/// identically under every policy (Property 1); the duplicated-code
/// entries and probe bodies are the part sampling policy can actually
/// reclaim.  Accuracy is per-method overlap vs. the exhaustive profile,
/// the watcher's own decision metric.
///
/// The pinned claim: the adaptive arm — despite running MORE rounds —
/// spends <= 60% of the static arm's instrumentation cycles and ends at
/// an overlap >= the static arm's.  Converged (hot) methods get widened
/// or retired, so the extra rounds are nearly free and go entirely to
/// the methods that still need samples.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "policy/Policy.h"
#include "profserve/Client.h"
#include "profserve/Protocol.h"
#include "profserve/Server.h"
#include "profserve/Transport.h"
#include "profstore/ProfileStore.h"
#include "runtime/CostModel.h"

#include <cstdio>
#include <memory>

using namespace ars;
using namespace ars::profserve;

namespace {

constexpr int StaticRounds = 10;
constexpr int AdaptiveRounds = 11;
constexpr uint64_t Fp = 0xada9e7f011c4ULL;

/// Instrumentation cycles of one run: total overhead over the baseline
/// minus the fixed check (framework) component.
uint64_t instrCycles(const harness::ExperimentResult &R,
                     uint64_t BaseCycles) {
  uint64_t Delta = R.Stats.Cycles - BaseCycles;
  uint64_t CheckCost = R.Stats.CheckExecs * runtime::CostModel().Check;
  return Delta > CheckCost ? Delta - CheckCost : 0;
}

harness::RunConfig shardConfig(int64_t Interval, int Round) {
  harness::RunConfig C;
  C.Transform.M = sampling::Mode::FullDuplication;
  C.Clients = bench::bothClients();
  C.Engine.SampleInterval = Interval;
  C.Engine.RandomJitterPct = 40;
  C.Engine.RandomSeed = 0x415253 + static_cast<uint64_t>(Round) * 977;
  return C;
}

ServerConfig rootConfig(int64_t BaseInterval) {
  ServerConfig C;
  C.Workers = 2;
  C.RecvTimeoutMs = 0; // harness-paced; no idle reaping
  C.Policy.Enabled = true;
  // Widen only methods whose epoch-over-epoch overlap is genuinely
  // stable; retire only near-identical deltas (or the cap).  BaseInterval
  // anchors the first widening at 2x the static interval.
  C.Policy.Watcher.WidenThresholdPct = 90.0;
  C.Policy.Watcher.RetireThresholdPct = 99.9;
  C.Policy.Watcher.StableEpochs = 1;
  C.Policy.Watcher.WidenFactor = 2;
  C.Policy.Watcher.BaseInterval = BaseInterval;
  C.Policy.Watcher.MaxInterval = BaseInterval * 16;
  return C;
}

} // namespace

int main(int Argc, char **Argv) {
  bench::Context Ctx(Argc, Argv);
  bench::printBanner("Adaptive policy accuracy per cycle",
                     "new experiment: closed-loop server-driven interval "
                     "widening (src/policy) vs. static intervals — "
                     "profile accuracy per simulated instrumentation "
                     "cycle");

  const std::vector<std::string> Names = {"javac", "jess", "db"};

  // Phase 1: perfect profiles (interval derivation + overlap reference).
  std::vector<bench::NamedCell> PerfectCells;
  for (const std::string &Name : Names) {
    harness::RunConfig Perfect;
    Perfect.Transform.M = sampling::Mode::Exhaustive;
    Perfect.Clients = bench::bothClients();
    PerfectCells.emplace_back(Name, Perfect);
  }
  std::vector<harness::ExperimentResult> Perfects = Ctx.runAll(PerfectCells);
  Ctx.prefetchBaselines();

  support::TablePrinter T({"Workload", "Interval", "Static ov (%)",
                           "Adaptive ov (%)", "Static Kcyc", "Adaptive Kcyc",
                           "Cycle ratio (%)", "Widened", "Retired"});
  bool AccuracyHolds = true;
  bool BudgetHolds = true;
  for (size_t W = 0; W != Names.size(); ++W) {
    const std::string &Name = Names[W];
    uint64_t BaseCycles = Ctx.baseline(Name).Stats.Cycles;
    int64_t Interval =
        static_cast<int64_t>(Perfects[W].Profiles.CallEdges.total() / 1000);
    if (Interval < 19)
      Interval = 19;

    // Static arm: independent rounds at the base interval.
    std::vector<bench::NamedCell> Cells;
    for (int R = 0; R != StaticRounds; ++R)
      Cells.emplace_back(Name, shardConfig(Interval, R));
    std::vector<harness::ExperimentResult> Static = Ctx.runAll(Cells);
    profile::ProfileBundle StaticBundle;
    uint64_t StaticCycles = 0;
    for (const harness::ExperimentResult &R : Static) {
      profstore::mergeBundle(StaticBundle, R.Profiles);
      StaticCycles += instrCycles(R, BaseCycles);
    }
    double StaticOverlap =
        policy::perMethodOverlapPct(Perfects[W].Profiles, StaticBundle);

    // Adaptive arm: the same rounds, wired through root <- relay <- leaf
    // with the watcher at the root.
    auto *RootL = new LoopbackListener();
    ProfileServer Root(std::unique_ptr<Listener>(RootL),
                       rootConfig(Interval));
    Root.start();
    ServerConfig RC;
    RC.Workers = 2;
    RC.RecvTimeoutMs = 0;
    RC.Relay.Dial = loopbackDialer(*RootL);
    RC.Relay.Client.Fingerprint = Fp;
    RC.Relay.Client.SessionId = 0x5E1A;
    RC.Relay.FlushIntervalMs = 0; // harness-paced flushes only
    RC.Relay.FlushEveryMerges = 0;
    auto *RelayL = new LoopbackListener();
    ProfileServer Relay(std::unique_ptr<Listener>(RelayL), RC);
    Relay.start();

    auto Table = std::make_shared<policy::PolicyTable>(
        Ctx.program(Name).Funcs.size());
    ClientConfig CC;
    CC.Fingerprint = Fp;
    CC.SessionId = 7;
    ProfileClient Leaf(loopbackDialer(*RelayL), CC);
    Leaf.onPolicy([&Table](const PolicyMsg &M) {
      std::vector<policy::Decision> Ds;
      Ds.reserve(M.Entries.size());
      for (const PolicyEntry &E : M.Entries)
        Ds.push_back({static_cast<int>(E.Method),
                      static_cast<int64_t>(E.Interval)});
      Table->applyVersioned(M.PolicyVersion, Ds);
    });

    uint64_t AdaptiveCycles = 0;
    std::string FlushErr;
    for (int R = 0; R != AdaptiveRounds; ++R) {
      harness::RunConfig Shard = shardConfig(Interval, R);
      Shard.Engine.Policy = Table; // live table: widened rounds sample less
      harness::ExperimentResult Res = Ctx.runConfig(Name, Shard);
      if (!Res.Stats.Ok) {
        std::fprintf(stderr, "adaptive round %d failed on %s: %s\n", R,
                     Name.c_str(), Res.Stats.Error.c_str());
        return 1;
      }
      AdaptiveCycles += instrCycles(Res, BaseCycles);
      if (!Leaf.push(Res.Profiles, Fp).Ok ||
          !Relay.flushUpstream(&FlushErr)) {
        std::fprintf(stderr, "push-down failed on %s round %d: %s\n",
                     Name.c_str(), R, FlushErr.c_str());
        return 1;
      }
      Root.rotateEpoch();           // watcher observes this round's delta
      Root.pushPolicy(/*Wait=*/true);  // table reaches the relay...
      Relay.pushPolicy(/*Wait=*/true); // ...and the forwarded copy the leaf
      Leaf.pollPolicy(/*TimeoutMs=*/200);
    }
    profile::ProfileBundle AdaptiveBundle = Root.merged();
    double AdaptiveOverlap =
        policy::perMethodOverlapPct(Perfects[W].Profiles, AdaptiveBundle);
    PolicyMsg Final = Root.currentPolicy();
    int Widened = 0, Retired = 0;
    for (const PolicyEntry &E : Final.Entries)
      (E.Interval == 0 ? Retired : Widened) += 1;
    Leaf.close();
    Relay.stop();
    Root.stop();

    double Ratio = StaticCycles == 0
                       ? 100.0
                       : 100.0 * static_cast<double>(AdaptiveCycles) /
                             static_cast<double>(StaticCycles);
    // The pinned claim (EXPERIMENTS.md) is the quick matrix, where
    // adaptive must match or beat static outright.  At larger scales
    // static's extra full-rate rounds keep polishing already-converged
    // hot methods and the strict inequality can flip by under a point;
    // allow exactly that documented slack there — perfgate still pins
    // the absolute overlap values per scale via the committed baselines.
    double Slack = Ctx.scalePct() <= 15 ? 0.0 : 1.0;
    if (AdaptiveOverlap + Slack + 1e-9 < StaticOverlap)
      AccuracyHolds = false;
    if (Ratio > 60.0)
      BudgetHolds = false;

    Ctx.report().addSimMetric("per_method_overlap_pct.static." + Name,
                              "pct", telemetry::Direction::HigherIsBetter,
                              StaticOverlap);
    Ctx.report().addSimMetric("per_method_overlap_pct.adaptive." + Name,
                              "pct", telemetry::Direction::HigherIsBetter,
                              AdaptiveOverlap);
    Ctx.report().addSimMetric("instr_cycle_ratio_pct." + Name, "pct",
                              telemetry::Direction::LowerIsBetter, Ratio);

    T.beginRow();
    T.cell(Name);
    T.cellInt(Interval);
    T.cellPercent(StaticOverlap);
    T.cellPercent(AdaptiveOverlap);
    T.cellInt(static_cast<int64_t>(StaticCycles / 1000));
    T.cellInt(static_cast<int64_t>(AdaptiveCycles / 1000));
    T.cellPercent(Ratio);
    T.cellInt(Widened);
    T.cellInt(Retired);
  }
  T.print();
  std::printf(
      "\nper-method overlap%% vs. the exhaustive profile (static arm: %d "
      "rounds, adaptive arm: %d rounds);\ninstrumentation cycles = "
      "instrumented minus baseline simulated cycles minus the fixed\n"
      "per-check framework cost (section 4.3's decomposition), summed "
      "over rounds.\nVerdict: adaptive accuracy %s the static arm's on "
      "every workload, at %s 60%% of its instrumentation cycles.\n",
      StaticRounds, AdaptiveRounds,
      AccuracyHolds ? "matches or beats" : "FALLS BELOW (!)",
      BudgetHolds ? "<=" : "MORE THAN (!)");
  return AccuracyHolds && BudgetHolds ? 0 : 1;
}
