//===- bench/bench_profile_store.cpp - Profile store microbench -*- C++ -*-===//
///
/// Measures the profile store's serialization and merge machinery on real
/// bundles (all six profile kinds populated by an exhaustive run):
///
///   * encode/decode throughput of the binary .arsp format,
///   * bytes/entry of the binary format vs. the naive serializeBundle
///     text rendering (the determinism comparator),
///   * mergeBundle throughput (entries merged per second).
///
/// Host wall-clock measurements — like the other microbenches these stay
/// meaningful only relative to each other, not vs. the paper.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "profstore/ProfileIO.h"
#include "profstore/ProfileStore.h"
#include "support/Support.h"

#include <cstdio>

using namespace ars;

namespace {

size_t bundleEntries(const profile::ProfileBundle &B) {
  size_t N = B.CallEdges.counts().size() + B.FieldAccesses.counts().size() +
             B.BlockCounts.counts().size() + B.Edges.counts().size() +
             B.Paths.counts().size();
  for (const auto &[Site, Table] : B.Values.sites())
    N += 1 + Table.size();
  return N;
}

} // namespace

int main(int Argc, char **Argv) {
  bench::Context Ctx(Argc, Argv);
  bench::printBanner("Profile store microbench",
                     "new experiment: .arsp serialize/merge throughput "
                     "and bytes/entry vs. text");

  // Exhaustive runs with every client populate all six sections.
  static instr::BlockCountInstrumentation BlockCounts;
  static instr::ValueProfileInstrumentation Values;
  static instr::EdgeCountInstrumentation EdgeCounts;
  static instr::PathProfileInstrumentation Paths;
  std::vector<bench::NamedCell> Cells;
  const std::vector<std::string> Names = {"javac", "db", "jess"};
  for (const std::string &Name : Names) {
    harness::RunConfig C;
    C.Transform.M = sampling::Mode::Exhaustive;
    C.Clients = bench::bothClients();
    C.Clients.push_back(&BlockCounts);
    C.Clients.push_back(&Values);
    C.Clients.push_back(&EdgeCounts);
    C.Clients.push_back(&Paths);
    Cells.emplace_back(Name, C);
  }
  std::vector<harness::ExperimentResult> Results = Ctx.runAll(Cells);

  support::TablePrinter T({"Workload", "Entries", "Binary B", "Text B",
                           "B/entry", "Text ratio", "Enc MB/s", "Dec MB/s",
                           "Merge Mentry/s"});
  for (size_t I = 0; I != Names.size(); ++I) {
    const profile::ProfileBundle &B = Results[I].Profiles;
    size_t Entries = bundleEntries(B);
    std::string Binary = profstore::encodeBundle(B, 0x1234);
    std::string Text = profile::serializeBundle(B);

    // Loop counts sized so each timed region runs a few hundred ms at
    // default scale without dominating check.sh.  Each region repeats
    // --reps times so the telemetry report carries median + MAD.
    constexpr int EncodeIters = 200;
    constexpr int DecodeIters = 100;
    constexpr int MergeIters = 100;

    size_t Sink = 0;
    std::vector<double> EncSamples =
        bench::timeRepsMs(Ctx.reps(), [&] {
          for (int K = 0; K != EncodeIters; ++K)
            Sink += profstore::encodeBundle(B, 0x1234).size();
        });

    bool DecodeOk = true;
    std::vector<double> DecSamples =
        bench::timeRepsMs(Ctx.reps(), [&] {
          for (int K = 0; K != DecodeIters; ++K) {
            profstore::DecodeResult R = profstore::decodeBundle(Binary);
            if (!R.Ok) {
              std::fprintf(stderr, "decode failed: %s\n", R.Error.c_str());
              DecodeOk = false;
              return;
            }
            Sink += R.Bundle.CallEdges.counts().size();
          }
        });
    if (!DecodeOk)
      return 1;

    std::vector<double> MergeSamples =
        bench::timeRepsMs(Ctx.reps(), [&] {
          profile::ProfileBundle Acc;
          for (int K = 0; K != MergeIters; ++K)
            profstore::mergeBundle(Acc, B);
          Sink += Acc.CallEdges.counts().size();
        });

    double EncMs = telemetry::median(EncSamples);
    double DecMs = telemetry::median(DecSamples);
    double MergeMs = telemetry::median(MergeSamples);

    auto MBps = [](double Bytes, double Ms) {
      return Ms > 0 ? Bytes / 1e6 / (Ms / 1e3) : 0.0;
    };
    auto Throughputs = [](const std::vector<double> &Ms,
                          double PerRunUnits) {
      std::vector<double> Out;
      Out.reserve(Ms.size());
      for (double M : Ms)
        Out.push_back(M > 0 ? PerRunUnits / (M / 1e3) : 0.0);
      return Out;
    };

    telemetry::BenchReport &Rep = Ctx.report();
    Rep.addSimMetric("bytes_per_entry." + Names[I], "B",
                     telemetry::Direction::LowerIsBetter,
                     Entries ? static_cast<double>(Binary.size()) /
                                   static_cast<double>(Entries)
                             : 0.0);
    Rep.addSimMetric("text_ratio." + Names[I], "x",
                     telemetry::Direction::HigherIsBetter,
                     Binary.empty() ? 0.0
                                    : static_cast<double>(Text.size()) /
                                          static_cast<double>(Binary.size()));
    Rep.addHostMetric(
        "enc_mb_s." + Names[I], "MB/s",
        telemetry::Direction::HigherIsBetter,
        Throughputs(EncSamples,
                    static_cast<double>(Binary.size()) * EncodeIters / 1e6));
    Rep.addHostMetric(
        "dec_mb_s." + Names[I], "MB/s",
        telemetry::Direction::HigherIsBetter,
        Throughputs(DecSamples,
                    static_cast<double>(Binary.size()) * DecodeIters / 1e6));
    Rep.addHostMetric(
        "merge_mentry_s." + Names[I], "Mentry/s",
        telemetry::Direction::HigherIsBetter,
        Throughputs(MergeSamples,
                    static_cast<double>(Entries) * MergeIters / 1e6));
    T.beginRow();
    T.cell(Names[I]);
    T.cellInt(static_cast<int64_t>(Entries));
    T.cellInt(static_cast<int64_t>(Binary.size()));
    T.cellInt(static_cast<int64_t>(Text.size()));
    T.cellDouble(Entries ? static_cast<double>(Binary.size()) /
                               static_cast<double>(Entries)
                         : 0.0);
    T.cellDouble(Binary.empty()
                     ? 0.0
                     : static_cast<double>(Text.size()) /
                           static_cast<double>(Binary.size()));
    T.cellDouble(MBps(static_cast<double>(Binary.size()) * EncodeIters,
                      EncMs));
    T.cellDouble(MBps(static_cast<double>(Binary.size()) * DecodeIters,
                      DecMs));
    T.cellDouble(MergeMs > 0 ? static_cast<double>(Entries) * MergeIters /
                                   1e6 / (MergeMs / 1e3)
                             : 0.0);
    if (Sink == 0) // keep the loops from being optimized out
      std::fprintf(stderr, "unexpected empty bundles\n");
  }
  T.print();
  std::printf("\nRound-trip checked on every decode; \"Text ratio\" is the "
              "size win over the naive text serializer.\n");
  return 0;
}
