//===- bench/BenchCommon.cpp ----------------------------------*- C++ -*-===//

#include "BenchCommon.h"

#include "support/Support.h"
#include "telemetry/BenchMatrix.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace ars {
namespace bench {

Context::Context(int Argc, char **Argv) {
  Suite = workloads::allWorkloads();
  auto badUsage = [Argv](const char *Arg) {
    std::fprintf(stderr, "unknown argument: %s\n", Arg);
    std::fprintf(stderr,
                 "usage: %s [--scale=<pct>] [--quick] [--jobs <n>] "
                 "[--json=<path>] [--reps=<n>]\n",
                 Argv[0]);
    std::exit(2);
  };
  for (int A = 1; A < Argc; ++A) {
    const char *Arg = Argv[A];
    if (std::strncmp(Arg, "--scale=", 8) == 0) {
      ScalePct = std::atoi(Arg + 8);
      if (ScalePct < 1)
        ScalePct = 1;
    } else if (std::strcmp(Arg, "--quick") == 0) {
      ScalePct = 15;
    } else if (std::strncmp(Arg, "--jobs=", 7) == 0) {
      Jobs = std::atoi(Arg + 7);
    } else if (std::strcmp(Arg, "--jobs") == 0 && A + 1 < Argc) {
      Jobs = std::atoi(Argv[++A]);
    } else if (std::strncmp(Arg, "--json=", 7) == 0) {
      JsonPath = Arg + 7;
    } else if (std::strncmp(Arg, "--reps=", 7) == 0) {
      Reps = std::atoi(Arg + 7);
      if (Reps < 2)
        Reps = 2;
    } else {
      badUsage(Arg);
    }
  }
  if (Jobs < 1)
    Jobs = 1;
  Runner = std::make_unique<harness::ParallelRunner>(Jobs);
  Report.setBenchName(telemetry::benchNameFromPath(
      Argc > 0 && Argv[0] ? Argv[0] : "bench_unknown"));
  Report.setEnv(telemetry::captureEnv(ScalePct, Jobs));
}

Context::~Context() {
  if (JsonPath.empty())
    return;
  // One whole-bench wall-time sample: a single rep (the matrix already
  // ran), so the gate's MAD term is zero and only the host floor
  // applies — it documents trends rather than gating them.
  Report.addHostMetric("bench_wall_ms", "ms",
                       telemetry::Direction::LowerIsBetter,
                       {WallTimer.elapsedMs()});
  std::string Error;
  if (!Report.writeFile(JsonPath, &Error)) {
    std::fprintf(stderr, "cannot write bench report: %s\n", Error.c_str());
    // Destructors cannot return an exit code; exiting here keeps a
    // missing report from reading as a clean run in `arsc bench`.
    std::_Exit(1);
  }
}

const harness::Program &Context::program(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(CacheMu);
  auto It = Programs.find(Name);
  if (It != Programs.end())
    return It->second;
  const workloads::Workload *W = workloads::workloadByName(Name);
  if (!W) {
    std::fprintf(stderr, "unknown workload %s\n", Name.c_str());
    std::exit(1);
  }
  harness::BuildResult R = harness::buildProgram(W->Source);
  if (!R.Ok) {
    std::fprintf(stderr, "build failed for %s: %s\n", Name.c_str(),
                 R.Error.c_str());
    std::exit(1);
  }
  return Programs.emplace(Name, std::move(R.P)).first->second;
}

int64_t Context::scaleOf(const workloads::Workload &W) const {
  int64_t Scaled = W.DefaultScale * ScalePct / 100;
  return Scaled < 1 ? 1 : Scaled;
}

const harness::ExperimentResult &Context::baseline(const std::string &Name) {
  {
    std::lock_guard<std::mutex> Lock(CacheMu);
    auto It = Baselines.find(Name);
    if (It != Baselines.end())
      return It->second;
  }
  const workloads::Workload *W = workloads::workloadByName(Name);
  harness::ExperimentResult R =
      harness::runBaseline(program(Name), scaleOf(*W));
  if (!R.Stats.Ok) {
    std::fprintf(stderr, "baseline run failed for %s: %s\n", Name.c_str(),
                 R.Stats.Error.c_str());
    std::exit(1);
  }
  std::lock_guard<std::mutex> Lock(CacheMu);
  return Baselines.emplace(Name, std::move(R)).first->second;
}

void Context::prefetchBaselines() {
  std::vector<NamedCell> Cells;
  for (const workloads::Workload &W : Suite) {
    std::lock_guard<std::mutex> Lock(CacheMu);
    if (!Baselines.count(W.Name)) {
      harness::RunConfig C;
      C.Transform.M = sampling::Mode::Baseline;
      Cells.emplace_back(W.Name, C);
    }
  }
  std::vector<harness::ExperimentResult> Results = runAll(Cells);
  std::lock_guard<std::mutex> Lock(CacheMu);
  for (size_t I = 0; I != Cells.size(); ++I)
    Baselines.emplace(Cells[I].first, std::move(Results[I]));
}

harness::ExperimentResult
Context::runConfig(const std::string &Name,
                   const harness::RunConfig &Config) {
  const workloads::Workload *W = workloads::workloadByName(Name);
  harness::ExperimentResult R =
      harness::runExperiment(program(Name), scaleOf(*W), Config);
  if (!R.Stats.Ok) {
    std::fprintf(stderr, "run failed for %s: %s\n", Name.c_str(),
                 R.Stats.Error.c_str());
    std::exit(1);
  }
  return R;
}

std::vector<harness::ExperimentResult>
Context::runAll(const std::vector<NamedCell> &Cells) {
  harness::RunMatrix M;
  M.Cells.reserve(Cells.size());
  for (const NamedCell &Cell : Cells) {
    const workloads::Workload *W = workloads::workloadByName(Cell.first);
    if (!W) {
      std::fprintf(stderr, "unknown workload %s\n", Cell.first.c_str());
      std::exit(1);
    }
    harness::MatrixCell MC;
    MC.Prog = &program(Cell.first); // built serially, here
    MC.ScaleArg = scaleOf(*W);
    MC.Config = Cell.second;
    M.Cells.push_back(std::move(MC));
  }
  std::vector<harness::ExperimentResult> Results = Runner->run(M);
  for (size_t I = 0; I != Results.size(); ++I) {
    if (!Results[I].Stats.Ok) {
      std::fprintf(stderr, "run failed for %s: %s\n",
                   Cells[I].first.c_str(),
                   Results[I].Stats.Error.c_str());
      std::exit(1);
    }
  }
  return Results;
}

double Context::overheadPct(const std::string &Name,
                            const harness::ExperimentResult &R) {
  return harness::overheadPct(baseline(Name), R);
}

const instr::Instrumentation &callEdgeClient() {
  static instr::CallEdgeInstrumentation Client;
  return Client;
}

const instr::Instrumentation &fieldAccessClient() {
  static instr::FieldAccessInstrumentation Client;
  return Client;
}

std::vector<const instr::Instrumentation *> bothClients() {
  return {&callEdgeClient(), &fieldAccessClient()};
}

void printBanner(const char *Title, const char *PaperRef) {
  std::printf("==========================================================\n");
  std::printf("%s\n", Title);
  std::printf("Reproduces: %s\n", PaperRef);
  std::printf("Arnold & Ryder, \"A Framework for Reducing the Cost of\n"
              "Instrumented Code\", PLDI 2001.\n");
  std::printf("Overheads are simulated-cycle ratios vs. the yieldpoint-\n"
              "only baseline; shapes, not absolute values, are compared.\n");
  std::printf("==========================================================\n");
}

double meanOf(const std::vector<double> &Values) {
  return support::mean(Values);
}

} // namespace bench
} // namespace ars
