//===- bench/bench_micro_framework.cpp ------------------------*- C++ -*-===//
///
/// Host-level google-benchmark microbenchmarks for the framework
/// primitives: MiniJ compilation, lowering, each transform variant's
/// throughput, and interpreter dispatch.  These measure the cost of the
/// *toolchain*, complementing the simulated-cycle experiment benches.
///
//===----------------------------------------------------------------------===//

#include "harness/Experiment.h"
#include "instr/Clients.h"
#include "telemetry/BenchMatrix.h"
#include "telemetry/BenchReport.h"
#include "workloads/Workloads.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

namespace {

using namespace ars;

const workloads::Workload &compressWorkload() {
  return *workloads::workloadByName("compress");
}

const harness::Program &compiledCompress() {
  static harness::Program P = [] {
    harness::BuildResult R =
        harness::buildProgram(compressWorkload().Source);
    if (!R.Ok)
      std::abort();
    return std::move(R.P);
  }();
  return P;
}

instr::CallEdgeInstrumentation CallEdges;
instr::FieldAccessInstrumentation FieldAccesses;

void BM_CompileMiniJ(benchmark::State &State) {
  for (auto _ : State) {
    harness::BuildResult R =
        harness::buildProgram(compressWorkload().Source);
    benchmark::DoNotOptimize(R.P.Funcs.data());
  }
}
BENCHMARK(BM_CompileMiniJ);

void transformBench(benchmark::State &State, sampling::Mode M) {
  const harness::Program &P = compiledCompress();
  sampling::Options Opts;
  Opts.M = M;
  for (auto _ : State) {
    harness::InstrumentedProgram IP =
        harness::instrumentProgram(P, {&CallEdges, &FieldAccesses}, Opts);
    benchmark::DoNotOptimize(IP.Funcs.data());
  }
}

void BM_TransformBaseline(benchmark::State &State) {
  transformBench(State, sampling::Mode::Baseline);
}
BENCHMARK(BM_TransformBaseline);

void BM_TransformExhaustive(benchmark::State &State) {
  transformBench(State, sampling::Mode::Exhaustive);
}
BENCHMARK(BM_TransformExhaustive);

void BM_TransformFullDuplication(benchmark::State &State) {
  transformBench(State, sampling::Mode::FullDuplication);
}
BENCHMARK(BM_TransformFullDuplication);

void BM_TransformPartialDuplication(benchmark::State &State) {
  transformBench(State, sampling::Mode::PartialDuplication);
}
BENCHMARK(BM_TransformPartialDuplication);

void BM_TransformNoDuplication(benchmark::State &State) {
  transformBench(State, sampling::Mode::NoDuplication);
}
BENCHMARK(BM_TransformNoDuplication);

void BM_InterpretBaseline(benchmark::State &State) {
  const harness::Program &P = compiledCompress();
  uint64_t Instructions = 0;
  for (auto _ : State) {
    harness::ExperimentResult R = harness::runBaseline(P, 1);
    benchmark::DoNotOptimize(R.Stats.Cycles);
    Instructions += R.Stats.Instructions;
  }
  State.counters["ir_insts_per_sec"] = benchmark::Counter(
      static_cast<double>(Instructions), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_InterpretBaseline);

void BM_InterpretFullDuplicationSampling(benchmark::State &State) {
  const harness::Program &P = compiledCompress();
  harness::RunConfig C;
  C.Transform.M = sampling::Mode::FullDuplication;
  C.Clients = {&CallEdges, &FieldAccesses};
  C.Engine.SampleInterval = 1000;
  for (auto _ : State) {
    harness::ExperimentResult R = harness::runExperiment(P, 1, C);
    benchmark::DoNotOptimize(R.Stats.Cycles);
  }
}
BENCHMARK(BM_InterpretFullDuplicationSampling);

/// Captures per-repetition real times while still printing the usual
/// console table, so the telemetry report carries median + MAD per
/// benchmark without a second pass.
class TelemetryReporter : public benchmark::ConsoleReporter {
public:
  std::map<std::string, std::vector<double>> RealMsByBench;

  void ReportRuns(const std::vector<Run> &Reports) override {
    for (const Run &R : Reports) {
      if (R.error_occurred || R.run_type != Run::RT_Iteration)
        continue;
      // GetAdjustedRealTime() is in the run's time unit (ns by default);
      // the multiplier is units-per-second.
      double Ms = R.GetAdjustedRealTime() /
                  benchmark::GetTimeUnitMultiplier(R.time_unit) * 1e3;
      RealMsByBench[R.benchmark_name()].push_back(Ms);
    }
    ConsoleReporter::ReportRuns(Reports);
  }
};

} // namespace

int main(int Argc, char **Argv) {
  // Accept the shared bench-harness flags (so `arsc bench` can drive this
  // binary like the simulated-cycle benches) and forward the rest to
  // google-benchmark.
  std::string JsonPath;
  int ScalePct = 100;
  int Jobs = 1;
  int Reps = 5;
  std::vector<std::string> Forward;
  Forward.push_back(Argv[0] ? Argv[0] : "bench_micro_framework");
  for (int I = 1; I < Argc; ++I) {
    const char *Arg = Argv[I];
    if (std::strncmp(Arg, "--json=", 7) == 0) {
      JsonPath = Arg + 7;
    } else if (std::strcmp(Arg, "--quick") == 0) {
      ScalePct = 15;
      Forward.push_back("--benchmark_min_time=0.05");
    } else if (std::strncmp(Arg, "--scale=", 8) == 0) {
      ScalePct = std::atoi(Arg + 8);
      if (ScalePct < 1)
        ScalePct = 1;
    } else if (std::strncmp(Arg, "--reps=", 7) == 0) {
      Reps = std::atoi(Arg + 7);
      if (Reps < 2)
        Reps = 2;
    } else if (std::strcmp(Arg, "--jobs") == 0 && I + 1 < Argc) {
      Jobs = std::atoi(Argv[++I]); // accepted for interface parity; the
      if (Jobs < 1)                // micro benches are single-threaded
        Jobs = 1;
    } else if (std::strncmp(Arg, "--jobs=", 7) == 0) {
      Jobs = std::atoi(Arg + 7);
      if (Jobs < 1)
        Jobs = 1;
    } else {
      Forward.push_back(Arg);
    }
  }
  Forward.push_back("--benchmark_repetitions=" + std::to_string(Reps));

  std::vector<char *> BenchArgv;
  BenchArgv.reserve(Forward.size());
  for (std::string &S : Forward)
    BenchArgv.push_back(S.data());
  int BenchArgc = static_cast<int>(BenchArgv.size());
  benchmark::Initialize(&BenchArgc, BenchArgv.data());
  if (benchmark::ReportUnrecognizedArguments(BenchArgc, BenchArgv.data()))
    return 1;

  TelemetryReporter Reporter;
  benchmark::RunSpecifiedBenchmarks(&Reporter);
  benchmark::Shutdown();

  if (JsonPath.empty())
    return 0;
  telemetry::BenchReport Report;
  Report.setBenchName(telemetry::benchNameFromPath(
      Argv[0] ? Argv[0] : "bench_micro_framework"));
  Report.setEnv(telemetry::captureEnv(ScalePct, Jobs));
  for (const auto &[Name, Samples] : Reporter.RealMsByBench)
    Report.addHostMetric("real_ms." + Name, "ms",
                         telemetry::Direction::LowerIsBetter, Samples);
  std::string Error;
  if (!Report.writeFile(JsonPath, &Error)) {
    std::fprintf(stderr, "cannot write bench report: %s\n", Error.c_str());
    return 1;
  }
  return 0;
}
