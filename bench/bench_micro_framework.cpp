//===- bench/bench_micro_framework.cpp ------------------------*- C++ -*-===//
///
/// Host-level google-benchmark microbenchmarks for the framework
/// primitives: MiniJ compilation, lowering, each transform variant's
/// throughput, and interpreter dispatch.  These measure the cost of the
/// *toolchain*, complementing the simulated-cycle experiment benches.
///
//===----------------------------------------------------------------------===//

#include "harness/Experiment.h"
#include "instr/Clients.h"
#include "workloads/Workloads.h"

#include <benchmark/benchmark.h>

namespace {

using namespace ars;

const workloads::Workload &compressWorkload() {
  return *workloads::workloadByName("compress");
}

const harness::Program &compiledCompress() {
  static harness::Program P = [] {
    harness::BuildResult R =
        harness::buildProgram(compressWorkload().Source);
    if (!R.Ok)
      std::abort();
    return std::move(R.P);
  }();
  return P;
}

instr::CallEdgeInstrumentation CallEdges;
instr::FieldAccessInstrumentation FieldAccesses;

void BM_CompileMiniJ(benchmark::State &State) {
  for (auto _ : State) {
    harness::BuildResult R =
        harness::buildProgram(compressWorkload().Source);
    benchmark::DoNotOptimize(R.P.Funcs.data());
  }
}
BENCHMARK(BM_CompileMiniJ);

void transformBench(benchmark::State &State, sampling::Mode M) {
  const harness::Program &P = compiledCompress();
  sampling::Options Opts;
  Opts.M = M;
  for (auto _ : State) {
    harness::InstrumentedProgram IP =
        harness::instrumentProgram(P, {&CallEdges, &FieldAccesses}, Opts);
    benchmark::DoNotOptimize(IP.Funcs.data());
  }
}

void BM_TransformBaseline(benchmark::State &State) {
  transformBench(State, sampling::Mode::Baseline);
}
BENCHMARK(BM_TransformBaseline);

void BM_TransformExhaustive(benchmark::State &State) {
  transformBench(State, sampling::Mode::Exhaustive);
}
BENCHMARK(BM_TransformExhaustive);

void BM_TransformFullDuplication(benchmark::State &State) {
  transformBench(State, sampling::Mode::FullDuplication);
}
BENCHMARK(BM_TransformFullDuplication);

void BM_TransformPartialDuplication(benchmark::State &State) {
  transformBench(State, sampling::Mode::PartialDuplication);
}
BENCHMARK(BM_TransformPartialDuplication);

void BM_TransformNoDuplication(benchmark::State &State) {
  transformBench(State, sampling::Mode::NoDuplication);
}
BENCHMARK(BM_TransformNoDuplication);

void BM_InterpretBaseline(benchmark::State &State) {
  const harness::Program &P = compiledCompress();
  uint64_t Instructions = 0;
  for (auto _ : State) {
    harness::ExperimentResult R = harness::runBaseline(P, 1);
    benchmark::DoNotOptimize(R.Stats.Cycles);
    Instructions += R.Stats.Instructions;
  }
  State.counters["ir_insts_per_sec"] = benchmark::Counter(
      static_cast<double>(Instructions), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_InterpretBaseline);

void BM_InterpretFullDuplicationSampling(benchmark::State &State) {
  const harness::Program &P = compiledCompress();
  harness::RunConfig C;
  C.Transform.M = sampling::Mode::FullDuplication;
  C.Clients = {&CallEdges, &FieldAccesses};
  C.Engine.SampleInterval = 1000;
  for (auto _ : State) {
    harness::ExperimentResult R = harness::runExperiment(P, 1, C);
    benchmark::DoNotOptimize(R.Stats.Cycles);
  }
}
BENCHMARK(BM_InterpretFullDuplicationSampling);

} // namespace

BENCHMARK_MAIN();
