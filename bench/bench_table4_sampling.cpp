//===- bench/bench_table4_sampling.cpp ------------------------*- C++ -*-===//
///
/// Table 4: overhead and accuracy of sampled instrumentation (call-edge +
/// field-access applied together) across sample intervals
/// {1, 10, 100, 1000, 10000, 100000}, for Full-Duplication and
/// No-Duplication.  "Sampled Instrum." excludes the framework overhead
/// (it is measured against the never-sampling framework run); "Total"
/// includes everything.  Accuracy is overlap vs. the exhaustive profile.
///
/// Paper shape: at interval 1000 accuracy stays 93-98% while total
/// overhead is 6.3% (Full) vs 57.2%-dominated-by-checking (No-Dup);
/// accuracy degrades at 100000 for lack of samples.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "profile/Overlap.h"

#include <cstdio>

using namespace ars;

namespace {

struct Row {
  int64_t Interval;
  double NumSamples;
  double SampledInstrumPct;
  double TotalPct;
  double CallAcc;
  double FieldAcc;
};

void printRows(const char *Mode, const std::vector<Row> &Rows) {
  std::printf("\n--- %s ---\n", Mode);
  support::TablePrinter T({"Sample Interval", "Num Samples",
                           "Sampled Instrum. (%)", "Total (%)",
                           "Call-Edge Acc (%)", "Field-Access Acc (%)"});
  for (const Row &R : Rows) {
    T.beginRow();
    T.cellInt(R.Interval);
    T.cellCount(R.NumSamples);
    T.cellPercent(R.SampledInstrumPct);
    T.cellPercent(R.TotalPct);
    T.cellPercent(R.CallAcc);
    T.cellPercent(R.FieldAcc);
  }
  T.print();
}

} // namespace

int main(int Argc, char **Argv) {
  bench::Context Ctx(Argc, Argv);
  bench::printBanner(
      "Table 4: sampled instrumentation overhead and accuracy",
      "Table 4 (section 4.4)");

  const std::vector<int64_t> Intervals = {1, 10, 100, 1000, 10000, 100000};
  const std::vector<sampling::Mode> Modes = {sampling::Mode::FullDuplication,
                                             sampling::Mode::NoDuplication};

  // The whole table is one declarative matrix fanned out over --jobs
  // workers: per workload one exhaustive (perfect-profile) run, then per
  // mode a framework-only run plus one run per interval.  Cell order is
  // result order, so the printed table is identical for every --jobs.
  Ctx.prefetchBaselines();
  std::vector<bench::NamedCell> Cells;
  const size_t PerMode = 1 + Intervals.size();
  const size_t PerWorkload = 1 + Modes.size() * PerMode;
  for (const workloads::Workload &W : Ctx.suite()) {
    harness::RunConfig Perfect;
    Perfect.Transform.M = sampling::Mode::Exhaustive;
    Perfect.Clients = bench::bothClients();
    Cells.emplace_back(W.Name, Perfect);

    for (sampling::Mode Mode : Modes) {
      // Framework-only run: sampled-instrumentation overhead excludes it.
      harness::RunConfig FrameworkOnly;
      FrameworkOnly.Transform.M = Mode;
      FrameworkOnly.Clients = bench::bothClients();
      FrameworkOnly.Engine.SampleInterval = 0;
      Cells.emplace_back(W.Name, FrameworkOnly);

      for (int64_t Interval : Intervals) {
        harness::RunConfig C = FrameworkOnly;
        C.Engine.SampleInterval = Interval;
        Cells.emplace_back(W.Name, C);
      }
    }
  }
  auto Results = Ctx.runAll(Cells);

  for (size_t M = 0; M != Modes.size(); ++M) {
    std::vector<Row> Rows(Intervals.size());
    for (size_t I = 0; I != Intervals.size(); ++I)
      Rows[I].Interval = Intervals[I];

    for (size_t WI = 0; WI != Ctx.suite().size(); ++WI) {
      const workloads::Workload &W = Ctx.suite()[WI];
      const auto &PerfectRun = Results[WI * PerWorkload];
      const auto &FrameworkRun =
          Results[WI * PerWorkload + 1 + M * PerMode];

      for (size_t I = 0; I != Intervals.size(); ++I) {
        const auto &R =
            Results[WI * PerWorkload + 1 + M * PerMode + 1 + I];

        Rows[I].NumSamples +=
            static_cast<double>(R.samplesTaken()) /
            static_cast<double>(Ctx.suite().size());
        Rows[I].SampledInstrumPct +=
            harness::overheadPct(FrameworkRun, R) /
            static_cast<double>(Ctx.suite().size());
        Rows[I].TotalPct += Ctx.overheadPct(W.Name, R) /
                            static_cast<double>(Ctx.suite().size());
        Rows[I].CallAcc +=
            profile::overlapPercent(PerfectRun.Profiles.CallEdges,
                                    R.Profiles.CallEdges) /
            static_cast<double>(Ctx.suite().size());
        Rows[I].FieldAcc +=
            profile::overlapPercent(PerfectRun.Profiles.FieldAccesses,
                                    R.Profiles.FieldAccesses) /
            static_cast<double>(Ctx.suite().size());
      }
    }
    printRows(sampling::modeName(Modes[M]), Rows);

    telemetry::BenchReport &Rep = Ctx.report();
    const std::string Mode = sampling::modeName(Modes[M]);
    for (const Row &R : Rows) {
      const std::string Suffix =
          Mode + ".i" + std::to_string(R.Interval);
      Rep.addSimMetric("total_pct." + Suffix, "pct",
                       telemetry::Direction::LowerIsBetter, R.TotalPct);
      Rep.addSimMetric("sampled_instrum_pct." + Suffix, "pct",
                       telemetry::Direction::LowerIsBetter,
                       R.SampledInstrumPct);
      Rep.addSimMetric("call_acc_pct." + Suffix, "pct",
                       telemetry::Direction::HigherIsBetter, R.CallAcc);
      Rep.addSimMetric("field_acc_pct." + Suffix, "pct",
                       telemetry::Direction::HigherIsBetter, R.FieldAcc);
      Rep.addSimMetric("num_samples." + Suffix, "count",
                       telemetry::Direction::Info, R.NumSamples);
    }
  }

  std::printf("\nPaper shape: interval 1 approaches the exhaustive cost; "
              "intervals 100-10000 give high accuracy at low added "
              "overhead; No-Duplication's total stays high (its checking "
              "cost dominates); accuracy decays at 100000.\n");
  return 0;
}
