//===- bench/bench_table3_noduplication.cpp -------------------*- C++ -*-===//
///
/// Table 3: framework (checking) overhead of No-Duplication — every
/// instrumentation operation guarded by its own check, no samples taken.
/// Paper averages: call-edge 1.3% (checks only at method entries, a big
/// win), field-access 51.1% (the check costs as much as the probe body,
/// "making the insertion of checks completely ineffective").
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <cstdio>

using namespace ars;

int main(int Argc, char **Argv) {
  bench::Context Ctx(Argc, Argv);
  bench::printBanner("Table 3: No-Duplication checking overhead",
                     "Table 3 (section 4.3)");

  support::TablePrinter T({"Benchmark", "Call-edge (%)", "Field-access (%)"});
  std::vector<double> CallOverheads, FieldOverheads;

  // Two cells per workload (call-edge, field-access), fanned out over
  // --jobs workers; results come back in cell order.
  Ctx.prefetchBaselines();
  std::vector<bench::NamedCell> Cells;
  for (const workloads::Workload &W : Ctx.suite()) {
    harness::RunConfig Call;
    Call.Transform.M = sampling::Mode::NoDuplication;
    Call.Clients = {&bench::callEdgeClient()};
    Call.Engine.SampleInterval = 0; // guards never fire: checking cost only
    Cells.emplace_back(W.Name, Call);

    harness::RunConfig Field;
    Field.Transform.M = sampling::Mode::NoDuplication;
    Field.Clients = {&bench::fieldAccessClient()};
    Field.Engine.SampleInterval = 0;
    Cells.emplace_back(W.Name, Field);
  }
  auto Results = Ctx.runAll(Cells);

  for (size_t WI = 0; WI != Ctx.suite().size(); ++WI) {
    const workloads::Workload &W = Ctx.suite()[WI];
    double CallPct = Ctx.overheadPct(W.Name, Results[WI * 2]);
    double FieldPct = Ctx.overheadPct(W.Name, Results[WI * 2 + 1]);

    T.beginRow();
    T.cell(W.Name);
    T.cellPercent(CallPct);
    T.cellPercent(FieldPct);
    CallOverheads.push_back(CallPct);
    FieldOverheads.push_back(FieldPct);
  }

  T.beginRow();
  T.cell("Average");
  T.cellPercent(bench::meanOf(CallOverheads));
  T.cellPercent(bench::meanOf(FieldOverheads));
  T.print();

  telemetry::BenchReport &Rep = Ctx.report();
  for (size_t WI = 0; WI != Ctx.suite().size(); ++WI) {
    const std::string Name = Ctx.suite()[WI].Name;
    Rep.addSimMetric("nodup_call_edge_pct." + Name, "pct",
                     telemetry::Direction::LowerIsBetter,
                     CallOverheads[WI]);
    Rep.addSimMetric("nodup_field_access_pct." + Name, "pct",
                     telemetry::Direction::LowerIsBetter,
                     FieldOverheads[WI]);
  }
  Rep.addSimMetric("nodup_call_edge_pct.avg", "pct",
                   telemetry::Direction::LowerIsBetter,
                   bench::meanOf(CallOverheads));
  Rep.addSimMetric("nodup_field_access_pct.avg", "pct",
                   telemetry::Direction::LowerIsBetter,
                   bench::meanOf(FieldOverheads));
  std::printf("\nPaper shape: call-edge avg 1.3%% (matches Table 2's "
              "method-entry column); field-access avg 51.1%%, close to "
              "Table 1's exhaustive cost because a guard costs about as "
              "much as the probe it guards.\n");
  return 0;
}
