//===- bench/BenchCommon.h - Shared experiment-bench plumbing -*- C++ -*-===//
///
/// \file
/// Helpers shared by the per-table bench binaries: command-line scale
/// handling, cached compiled workloads, cached baseline runs, the standard
/// client set, and the paper-style banner.
///
/// Every bench prints the rows of one table or figure from the paper's
/// evaluation.  Absolute numbers come from the deterministic cycle model,
/// so they differ from the paper's wall-clock measurements; the *shape*
/// (which rows are expensive, who wins, where accuracy degrades) is the
/// reproduction target.  EXPERIMENTS.md records both side by side.
///
//===----------------------------------------------------------------------===//

#ifndef ARS_BENCH_BENCHCOMMON_H
#define ARS_BENCH_BENCHCOMMON_H

#include "harness/Experiment.h"
#include "harness/ParallelRunner.h"
#include "instr/Clients.h"
#include "support/Support.h"
#include "support/TablePrinter.h"
#include "telemetry/BenchReport.h"
#include "workloads/Workloads.h"

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace ars {
namespace bench {

/// One named cell of a bench matrix: which workload, which configuration.
using NamedCell = std::pair<std::string, harness::RunConfig>;

/// Compiled workloads plus cached baseline runs and the parallel runner
/// the matrix-shaped benches fan out on.
class Context {
public:
  /// Parses --scale=<pct> (percent of each workload's default scale,
  /// default 100), --quick (= --scale=15), --jobs=<n> / --jobs <n>
  /// (worker threads for matrix runs; default 1), --json=<path> (emit
  /// the machine-readable telemetry report there on exit), and
  /// --reps=<n> (repetitions for host wall-clock metrics, default 5,
  /// clamped to >= 2).  Results are bit-identical for every --jobs
  /// value; only wall-clock time changes.
  Context(int Argc, char **Argv);

  /// Writes the telemetry report (when --json was given) stamped with a
  /// whole-bench wall-time metric.  A write failure exits the process
  /// nonzero: a perf job must never mistake a vanished report for a
  /// clean run.
  ~Context();

  const std::vector<workloads::Workload> &suite() const { return Suite; }

  int jobs() const { return Jobs; }
  int scalePct() const { return ScalePct; }

  /// Repetition count for host wall-clock measurements (--reps).
  int reps() const { return Reps; }

  /// The telemetry report every bench records its headline metrics
  /// into (named after the binary: bench_table1_exhaustive ->
  /// "table1_exhaustive").  Written on destruction when --json is set.
  telemetry::BenchReport &report() { return Report; }

  /// Compiled program for \p Name (built on first use; thread-safe).
  const harness::Program &program(const std::string &Name);

  /// Effective scale argument for \p W.
  int64_t scaleOf(const workloads::Workload &W) const;

  /// Cached baseline (yieldpoints-only) run (thread-safe).
  const harness::ExperimentResult &baseline(const std::string &Name);

  /// Runs and caches the baselines of the whole suite through the
  /// parallel runner.  Benches that print overheads call this once before
  /// fanning out so baselines don't serialize behind the lazy cache.
  void prefetchBaselines();

  /// Runs one configuration of workload \p Name.
  harness::ExperimentResult runConfig(const std::string &Name,
                                      const harness::RunConfig &Config);

  /// Runs every cell on the shared parallel runner (instrumented modules
  /// are shared through its transform cache) and returns results in cell
  /// order.  Exits with a diagnostic if any run fails.
  std::vector<harness::ExperimentResult>
  runAll(const std::vector<NamedCell> &Cells);

  /// Overhead of \p R over the cached baseline of \p Name, in percent.
  double overheadPct(const std::string &Name,
                     const harness::ExperimentResult &R);

private:
  std::vector<workloads::Workload> Suite;
  int ScalePct = 100;
  int Jobs = 1;
  int Reps = 5;
  std::string JsonPath; ///< empty = no report emission
  telemetry::BenchReport Report;
  support::HostTimer WallTimer; ///< whole-bench wall clock
  std::unique_ptr<harness::ParallelRunner> Runner; ///< built after parsing
  /// program()/baseline() caches are shared mutable state once runAll
  /// fans out; the mutex makes the lazy fills reentrant.  (Node-stable
  /// std::map keeps references valid across later insertions.)
  std::mutex CacheMu;
  std::map<std::string, harness::Program> Programs;
  std::map<std::string, harness::ExperimentResult> Baselines;
};

/// The paper's two instrumentations with default costs (call-edge 250
/// cycles — stack examination + hashtable update, keeping the paper's
/// ~50x probe-to-check ratio; field-access 6 cycles — two loads,
/// increment, store).
const instr::Instrumentation &callEdgeClient();
const instr::Instrumentation &fieldAccessClient();
std::vector<const instr::Instrumentation *> bothClients();

/// Prints the standard banner naming the experiment and the paper
/// reference.
void printBanner(const char *Title, const char *PaperRef);

/// Runs \p Body \p Reps times and returns each repetition's wall-clock
/// milliseconds — the sample vector BenchReport::addHostMetric() wants
/// for its min/median/MAD statistics.
template <typename Fn>
std::vector<double> timeRepsMs(int Reps, Fn &&Body) {
  std::vector<double> Samples;
  Samples.reserve(static_cast<size_t>(Reps < 1 ? 1 : Reps));
  for (int R = 0; R < Reps || R == 0; ++R) {
    support::HostTimer T;
    Body();
    Samples.push_back(T.elapsedMs());
  }
  return Samples;
}

/// Arithmetic mean helper for the "Average" row.
double meanOf(const std::vector<double> &Values);

} // namespace bench
} // namespace ars

#endif // ARS_BENCH_BENCHCOMMON_H
