//===- bench/BenchCommon.h - Shared experiment-bench plumbing -*- C++ -*-===//
///
/// \file
/// Helpers shared by the per-table bench binaries: command-line scale
/// handling, cached compiled workloads, cached baseline runs, the standard
/// client set, and the paper-style banner.
///
/// Every bench prints the rows of one table or figure from the paper's
/// evaluation.  Absolute numbers come from the deterministic cycle model,
/// so they differ from the paper's wall-clock measurements; the *shape*
/// (which rows are expensive, who wins, where accuracy degrades) is the
/// reproduction target.  EXPERIMENTS.md records both side by side.
///
//===----------------------------------------------------------------------===//

#ifndef ARS_BENCH_BENCHCOMMON_H
#define ARS_BENCH_BENCHCOMMON_H

#include "harness/Experiment.h"
#include "instr/Clients.h"
#include "support/TablePrinter.h"
#include "workloads/Workloads.h"

#include <map>
#include <string>
#include <vector>

namespace ars {
namespace bench {

/// Compiled workloads plus cached baseline runs.
class Context {
public:
  /// Parses --scale=<pct> (percent of each workload's default scale,
  /// default 100) and --quick (= --scale=15).
  Context(int Argc, char **Argv);

  const std::vector<workloads::Workload> &suite() const { return Suite; }

  /// Compiled program for \p Name (built on first use).
  const harness::Program &program(const std::string &Name);

  /// Effective scale argument for \p W.
  int64_t scaleOf(const workloads::Workload &W) const;

  /// Cached baseline (yieldpoints-only) run.
  const harness::ExperimentResult &baseline(const std::string &Name);

  /// Runs one configuration of workload \p Name.
  harness::ExperimentResult runConfig(const std::string &Name,
                                      const harness::RunConfig &Config);

  /// Overhead of \p R over the cached baseline of \p Name, in percent.
  double overheadPct(const std::string &Name,
                     const harness::ExperimentResult &R);

private:
  std::vector<workloads::Workload> Suite;
  int ScalePct = 100;
  std::map<std::string, harness::Program> Programs;
  std::map<std::string, harness::ExperimentResult> Baselines;
};

/// The paper's two instrumentations with default costs (call-edge 250
/// cycles — stack examination + hashtable update, keeping the paper's
/// ~50x probe-to-check ratio; field-access 6 cycles — two loads,
/// increment, store).
const instr::Instrumentation &callEdgeClient();
const instr::Instrumentation &fieldAccessClient();
std::vector<const instr::Instrumentation *> bothClients();

/// Prints the standard banner naming the experiment and the paper
/// reference.
void printBanner(const char *Title, const char *PaperRef);

/// Arithmetic mean helper for the "Average" row.
double meanOf(const std::vector<double> &Values);

} // namespace bench
} // namespace ars

#endif // ARS_BENCH_BENCHCOMMON_H
