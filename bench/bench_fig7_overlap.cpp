//===- bench/bench_fig7_overlap.cpp ---------------------------*- C++ -*-===//
///
/// Figure 7: the javac call-edge profile, sampled at interval 1000,
/// rendered as per-edge sample-percentage bars against the perfect
/// profile, plus the resulting overlap percentage (the paper's instance
/// shows 93.8%, "a very accurate profile").
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "profile/Overlap.h"

#include <algorithm>
#include <cstdio>

using namespace ars;

int main(int Argc, char **Argv) {
  bench::Context Ctx(Argc, Argv);
  bench::printBanner("Figure 7: javac call-edge profile overlap",
                     "Figure 7 (section 4.4)");

  const char *Name = "javac";
  harness::RunConfig Perfect;
  Perfect.Transform.M = sampling::Mode::Exhaustive;
  Perfect.Clients = {&bench::callEdgeClient()};
  auto PerfectRun = Ctx.runConfig(Name, Perfect);

  harness::RunConfig Sampled;
  Sampled.Transform.M = sampling::Mode::FullDuplication;
  Sampled.Clients = {&bench::callEdgeClient()};
  Sampled.Engine.SampleInterval = 1000;
  auto SampledRun = Ctx.runConfig(Name, Sampled);

  double Overlap = profile::overlapPercent(PerfectRun.Profiles.CallEdges,
                                           SampledRun.Profiles.CallEdges);
  auto Bars = profile::overlapBars(PerfectRun.Profiles.CallEdges,
                                   SampledRun.Profiles.CallEdges,
                                   /*TopK=*/40);

  const harness::Program &P = Ctx.program(Name);
  std::printf("\nTop call edges (perfect %% | sampled %%):\n");
  for (const profile::OverlapBar &Bar : Bars) {
    const char *Caller = Bar.Edge.Caller >= 0
                             ? P.M.functionAt(Bar.Edge.Caller).Name.c_str()
                             : "<entry>";
    const char *Callee = P.M.functionAt(Bar.Edge.Callee).Name.c_str();
    int PerfectBar =
        static_cast<int>(std::min(Bar.PerfectPct, 50.0) * 1.2);
    int SampledBar =
        static_cast<int>(std::min(Bar.SampledPct, 50.0) * 1.2);
    std::printf("%-22s->%-14s %6.2f |%-*s\n", Caller, Callee,
                Bar.PerfectPct, PerfectBar + 1,
                std::string(static_cast<size_t>(PerfectBar), '#').c_str());
    std::printf("%-22s  %-14s %6.2f |%-*s\n", "", "(sampled)",
                Bar.SampledPct, SampledBar + 1,
                std::string(static_cast<size_t>(SampledBar), 'o').c_str());
  }

  telemetry::BenchReport &Rep = Ctx.report();
  Rep.addSimMetric("javac_overlap_pct.i1000", "pct",
                   telemetry::Direction::HigherIsBetter, Overlap);
  Rep.addSimMetric("javac_samples.i1000", "count",
                   telemetry::Direction::Info,
                   static_cast<double>(SampledRun.samplesTaken()));
  Rep.addSimMetric("javac_perfect_events", "count",
                   telemetry::Direction::Info,
                   static_cast<double>(
                       PerfectRun.Profiles.CallEdges.total()));

  std::printf("\nOverlap percentage (interval 1000): %.1f%%\n", Overlap);
  std::printf("Samples taken: %llu; perfect events: %llu\n",
              static_cast<unsigned long long>(SampledRun.samplesTaken()),
              static_cast<unsigned long long>(
                  PerfectRun.Profiles.CallEdges.total()));
  std::printf("\nPaper shape: the paper's javac instance overlaps 93.8%%; "
              "sampled bars hug the perfect bars on the hot edges.\n");
  return 0;
}
